"""ExES facade tests against the trained session stack."""

import pytest

from repro import ExES
from repro.explain import BeamConfig, FactualConfig


@pytest.fixture(scope="module")
def exes(small_dataset, small_gcn_ranker, small_embedding, small_gae, small_former):
    return ExES(
        network=small_dataset.network,
        ranker=small_gcn_ranker,
        embedding=small_embedding,
        link_predictor=small_gae,
        former=small_former,
        k=10,
        factual_config=FactualConfig(n_samples=96, max_samples=128, exact_limit=8),
        beam_config=BeamConfig(beam_size=8, n_candidates=5, n_explanations=3),
    )


class TestSystemPassthroughs:
    def test_top_k_size(self, exes, small_query):
        assert len(exes.top_k(small_query)) == 10

    def test_rank_consistency(self, exes, small_query):
        top = exes.top_k(small_query)
        assert exes.rank_of(top[0], small_query) == 1
        assert exes.is_expert(top[0], small_query)

    def test_form_team_includes_seed(self, exes, small_query):
        seed = exes.top_k(small_query)[0]
        team = exes.form_team(small_query, seed_member=seed)
        assert seed in team.members

    def test_set_full_rebuild_flips_stack_and_drops_engines(
        self, exes, small_query
    ):
        """The escape-hatch toggle must reach ranker AND former, and must
        drop cached probe engines — an engine-off run may not be answered
        from a delta-path memo."""
        from repro.graph.perturbations import RemoveSkill, apply_perturbations

        engine = exes.probe_engine()
        skill = sorted(exes.network.skills(0))[0]
        overlay, q = apply_perturbations(
            exes.network, small_query, [RemoveSkill(0, skill)]
        )
        engine.probe(0, q, overlay)  # populates the delta-path memo
        try:
            exes.set_full_rebuild(True)
            assert exes.ranker.full_rebuild and exes.former.full_rebuild
            fresh = exes.probe_engine()
            assert fresh is not engine  # caches dropped with the toggle
            fresh.probe(0, q, overlay)
            assert fresh.hits == 0  # evaluated, not answered from memory
        finally:
            exes.set_full_rebuild(False)
        assert not exes.ranker.full_rebuild and not exes.former.full_rebuild


class TestFactualFacade:
    def test_explain_skills(self, exes, small_query):
        expert = exes.top_k(small_query)[0]
        fx = exes.explain_skills(expert, small_query)
        assert fx.kind == "skills"
        assert fx.person == expert
        assert fx.attributions

    def test_explain_query(self, exes, small_query):
        expert = exes.top_k(small_query)[0]
        fx = exes.explain_query(expert, small_query)
        assert {a.feature.term for a in fx.attributions} == set(small_query)

    def test_team_membership_explanation(self, exes, small_query):
        seed = exes.top_k(small_query)[0]
        team = exes.form_team(small_query, seed_member=seed)
        others = sorted(team.members - {seed})
        if not others:
            pytest.skip("seed alone covers this query")
        fx = exes.explain_skills(others[0], small_query, team=True, seed_member=seed)
        assert fx.full_value == 1.0  # member status is true

    def test_team_without_former_rejected(self, small_dataset, small_gcn_ranker,
                                          small_embedding, small_gae):
        bare = ExES(
            network=small_dataset.network,
            ranker=small_gcn_ranker,
            embedding=small_embedding,
            link_predictor=small_gae,
            former=None,
        )
        with pytest.raises(ValueError, match="team formation"):
            bare.target(team=True)


class TestCounterfactualFacade:
    def test_skills_auto_direction_expert(self, exes, small_query):
        """An expert gets removal counterfactuals..."""
        expert = exes.top_k(small_query)[0]
        cf = exes.counterfactual_skills(expert, small_query)
        assert cf.kind == "skill_removal"

    def test_skills_auto_direction_nonexpert(self, exes, small_query):
        """...and a non-expert gets addition counterfactuals."""
        results = exes.ranker.evaluate(small_query, exes.network)
        non_expert = int(results.order[14])
        cf = exes.counterfactual_skills(non_expert, small_query)
        assert cf.kind == "skill_addition"

    def test_collaborations_auto_direction(self, exes, small_query):
        results = exes.ranker.evaluate(small_query, exes.network)
        expert = int(results.order[0])
        non_expert = int(results.order[14])
        assert exes.counterfactual_collaborations(
            expert, small_query
        ).kind == "link_removal"
        assert exes.counterfactual_collaborations(
            non_expert, small_query
        ).kind == "link_addition"

    def test_query_counterfactual(self, exes, small_query):
        expert = exes.top_k(small_query)[0]
        cf = exes.counterfactual_query(expert, small_query)
        assert cf.kind == "query_augmentation"
        assert cf.initial_decision is True
