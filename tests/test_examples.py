"""Keep the examples from rotting: the quickstart must run and reproduce
the paper's Figure 1 narrative (the other examples share its code paths
but need ~40 s each, so they are exercised by the case-study bench)."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).parent.parent / "examples"


class TestQuickstart:
    def test_runs_and_reproduces_figure1(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        out = proc.stdout
        # The paper's Figure 1 outcome and all three counterfactual kinds.
        assert "Gerhard Weikum" in out
        assert "factual[skills]" in out
        assert "counterfactual[skill_removal]" in out
        assert "counterfactual[query_augmentation]" in out
        assert "counterfactual[link_removal]" in out


class TestExampleSources:
    def test_all_examples_have_docstrings_and_main(self):
        scripts = sorted(EXAMPLES.glob("*.py"))
        assert len(scripts) >= 5
        for script in scripts:
            source = script.read_text(encoding="utf-8")
            assert source.lstrip().startswith('"""'), f"{script.name} lacks a docstring"
            assert '__name__ == "__main__"' in source, f"{script.name} lacks a main guard"

    def test_examples_compile(self):
        import py_compile

        for script in EXAMPLES.glob("*.py"):
            py_compile.compile(str(script), doraise=True)
