"""Embedding trainers and the similarity oracle.

Both trainers are checked on a synthetic two-topic corpus where ground
truth is unambiguous: words of the same topic co-occur, words of different
topics never do, so same-topic similarity must dominate.
"""

import numpy as np
import pytest

from repro.embeddings import (
    SgnsConfig,
    SkillEmbedding,
    train_ppmi_embedding,
    train_sgns_embedding,
)

TOPIC_A = ["graph", "mining", "network", "community"]
TOPIC_B = ["compiler", "parser", "lexer", "grammar"]


@pytest.fixture(scope="module")
def two_topic_docs():
    rng = np.random.default_rng(0)
    docs = []
    for _ in range(300):
        topic = TOPIC_A if rng.random() < 0.5 else TOPIC_B
        docs.append([topic[i] for i in rng.integers(0, len(topic), size=8)])
    return docs


def _topic_separation(embedding: SkillEmbedding) -> float:
    """Mean same-topic similarity minus mean cross-topic similarity."""
    same, cross = [], []
    for a in TOPIC_A:
        for b in TOPIC_A:
            if a < b:
                same.append(embedding.similarity(a, b))
        for b in TOPIC_B:
            cross.append(embedding.similarity(a, b))
    return float(np.mean(same) - np.mean(cross))


class TestPpmiEmbedding:
    def test_separates_topics(self, two_topic_docs):
        emb = train_ppmi_embedding(two_topic_docs, dim=8, min_count=2)
        assert _topic_separation(emb) > 0.5

    def test_deterministic(self, two_topic_docs):
        a = train_ppmi_embedding(two_topic_docs, dim=8, seed=1)
        b = train_ppmi_embedding(two_topic_docs, dim=8, seed=1)
        np.testing.assert_allclose(a.vectors, b.vectors)

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            train_ppmi_embedding([], dim=4)

    def test_dim_clamped_to_vocab(self):
        emb = train_ppmi_embedding([["a", "b"], ["a", "b"]], dim=64, min_count=1)
        assert emb.dim <= 2


class TestSgnsEmbedding:
    def test_separates_topics(self, two_topic_docs):
        emb = train_sgns_embedding(
            two_topic_docs, SgnsConfig(dim=16, epochs=3, min_count=2, seed=0)
        )
        assert _topic_separation(emb) > 0.3

    def test_finite_vectors(self, two_topic_docs):
        emb = train_sgns_embedding(
            two_topic_docs, SgnsConfig(dim=8, epochs=2, seed=1)
        )
        assert np.isfinite(emb.vectors).all()

    def test_deterministic(self, two_topic_docs):
        cfg = SgnsConfig(dim=8, epochs=1, seed=2)
        a = train_sgns_embedding(two_topic_docs, cfg)
        b = train_sgns_embedding(two_topic_docs, cfg)
        np.testing.assert_allclose(a.vectors, b.vectors)


class TestSkillEmbeddingOracle:
    @pytest.fixture(scope="class")
    def embedding(self, two_topic_docs):
        return train_ppmi_embedding(two_topic_docs, dim=8, min_count=2)

    def test_vectors_unit_norm(self, embedding):
        norms = np.linalg.norm(embedding.vectors, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-9)

    def test_contains(self, embedding):
        assert "graph" in embedding
        assert "quantum" not in embedding

    def test_vector_unknown_raises(self, embedding):
        with pytest.raises(KeyError):
            embedding.vector("quantum")

    def test_similarity_oov_is_zero(self, embedding):
        assert embedding.similarity("graph", "quantum") == 0.0

    def test_most_similar_prefers_same_topic(self, embedding):
        ranked = embedding.most_similar_to_set(
            ["graph", "mining"], topn=2, exclude=["graph", "mining"]
        )
        assert all(word in TOPIC_A for word, _ in ranked)

    def test_restrict_to_pool(self, embedding):
        ranked = embedding.most_similar_to_set(
            ["graph"], topn=3, restrict_to=TOPIC_B
        )
        assert all(word in TOPIC_B for word, _ in ranked)

    def test_exclude_removes_words(self, embedding):
        ranked = embedding.most_similar_to_set(["graph"], topn=10, exclude=["graph"])
        assert "graph" not in [w for w, _ in ranked]

    def test_centroid_of_oov_terms_is_none(self, embedding):
        assert embedding.centroid(["quantum", "entanglement"]) is None

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            SkillEmbedding({"a": 0, "b": 1}, np.zeros((3, 4)))
