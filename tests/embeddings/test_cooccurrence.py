"""Co-occurrence counting tests."""

import numpy as np
import pytest

from repro.embeddings import count_cooccurrences
from repro.embeddings.cooccurrence import build_vocabulary


class TestVocabulary:
    def test_min_count_filters(self):
        docs = [["a", "a", "b"], ["a", "c"]]
        vocab = build_vocabulary(docs, min_count=2)
        assert set(vocab) == {"a"}

    def test_indices_deterministic_sorted(self):
        docs = [["b", "a", "c"]]
        vocab = build_vocabulary(docs)
        assert vocab == {"a": 0, "b": 1, "c": 2}


class TestCounting:
    def test_symmetric(self):
        counts = count_cooccurrences([["a", "b", "c"]], window=2)
        mat = counts.counts.todense()
        assert (mat == mat.T).all()

    def test_window_limits_pairs(self):
        counts = count_cooccurrences([["a", "b", "c", "d"]], window=1)
        v = counts.vocabulary
        assert counts.counts[v["a"], v["b"]] > 0
        assert counts.counts[v["a"], v["c"]] == 0

    def test_distance_weighting(self):
        counts = count_cooccurrences(
            [["a", "b", "c"]], window=2, distance_weighting=True
        )
        v = counts.vocabulary
        # (a,b) at distance 1 counts 1.0; (a,c) at distance 2 counts 0.5.
        assert counts.counts[v["a"], v["b"]] == pytest.approx(1.0)
        assert counts.counts[v["a"], v["c"]] == pytest.approx(0.5)

    def test_no_distance_weighting(self):
        counts = count_cooccurrences(
            [["a", "b", "c"]], window=2, distance_weighting=False
        )
        v = counts.vocabulary
        assert counts.counts[v["a"], v["c"]] == pytest.approx(1.0)

    def test_word_counts(self):
        counts = count_cooccurrences([["a", "a", "b"]], window=1)
        v = counts.vocabulary
        assert counts.word_counts[v["a"]] == 2
        assert counts.word_counts[v["b"]] == 1

    def test_index_of_unknown_raises(self):
        counts = count_cooccurrences([["a", "b"]], window=1)
        with pytest.raises(KeyError):
            counts.index_of("zzz")

    def test_total_pairs_positive(self):
        counts = count_cooccurrences([["a", "b", "a", "b"]], window=3)
        assert counts.total_pairs > 0
