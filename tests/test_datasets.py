"""Dataset preset tests (Table 6 shapes, fixtures)."""

import numpy as np
import pytest

from repro.datasets import dblp_like, figure1_network, github_like, toy_network


class TestPresetShapes:
    def test_dblp_small_scale_counts(self):
        ds = dblp_like(scale=0.01, seed=13)
        stats = ds.stats()
        assert stats.n_nodes == max(30, round(17630 * 0.01))
        assert stats.n_edges == max(60, round(128809 * 0.01))
        assert stats.mean_skills_per_person > 10  # paper: ~15

    def test_github_small_scale_counts(self):
        ds = github_like(scale=0.02, seed=17)
        stats = ds.stats()
        assert stats.n_nodes == max(25, round(3278 * 0.02))
        assert stats.n_edges == max(45, round(15502 * 0.02))

    def test_github_sparser_than_dblp(self):
        """The paper's GitHub network has lower mean degree than DBLP."""
        dblp = dblp_like(scale=0.01, seed=1)
        gh = github_like(scale=0.05, seed=1)
        assert gh.stats().mean_degree < dblp.stats().mean_degree

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            dblp_like(scale=0.0)
        with pytest.raises(ValueError):
            github_like(scale=1.5)

    def test_deterministic(self):
        a = dblp_like(scale=0.01, seed=3)
        b = dblp_like(scale=0.01, seed=3)
        assert sorted(a.network.edges()) == sorted(b.network.edges())
        for p in a.network.people():
            assert a.network.skills(p) == b.network.skills(p)

    def test_corpus_attached(self):
        ds = dblp_like(scale=0.01, seed=13)
        assert ds.corpus.n_documents > ds.network.n_people / 2

    def test_table6_row(self):
        row = dblp_like(scale=0.01, seed=13).table6_row()
        assert "DBLP" in row


class TestFigure1Network:
    def test_people_and_skills(self):
        net = figure1_network()
        assert net.n_people == 9
        weikum = net.find_person("Gerhard Weikum")
        assert net.skills(weikum) == {"kb", "db", "xai"}

    def test_weikum_anand_collaboration(self):
        """The paper's counterfactual mentions this edge explicitly."""
        net = figure1_network()
        assert net.has_edge(
            net.find_person("Gerhard Weikum"), net.find_person("Avishek Anand")
        )

    def test_valid(self):
        figure1_network().validate()


class TestToyNetwork:
    def test_deterministic(self):
        a, b = toy_network(seed=2), toy_network(seed=2)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_connected_ring(self):
        net = toy_network(n_people=10, seed=0)
        for p in net.people():
            assert net.degree(p) >= 2

    def test_everyone_has_skills(self):
        net = toy_network(n_people=10, seed=1)
        for p in net.people():
            assert len(net.skills(p)) >= 2
