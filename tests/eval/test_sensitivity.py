"""Unit tests for the Figure 9 sweep machinery (fast coverage ranker)."""

import pytest

from repro.datasets import toy_network
from repro.embeddings import train_ppmi_embedding
from repro.eval import (
    Case,
    random_queries,
    sweep_beam_size,
    sweep_candidates,
    sweep_radius,
    sweep_tau,
)
from repro.eval.tables import format_sweep
from repro.explain import BeamConfig, ExhaustiveConfig, FactualConfig, RelevanceTarget
from repro.linkpred import HeuristicLinkPredictor
from repro.search import CoverageExpertRanker


@pytest.fixture(scope="module")
def setup():
    net = toy_network(n_people=14, seed=6)
    ranker = CoverageExpertRanker()
    target = RelevanceTarget(ranker, k=3)
    profiles = [sorted(net.skills(p)) for p in net.people()] * 2
    embedding = train_ppmi_embedding(profiles, dim=4, min_count=1)
    predictor = HeuristicLinkPredictor("common_neighbors").fit(net)
    queries = random_queries(net, 2, seed=10)
    expert_cases = []
    nonexpert_cases = []
    for q in queries:
        results = ranker.evaluate(q, net)
        expert_cases.append(Case(results.top_k(3)[-1], tuple(q), target, "expert"))
        nonexpert_cases.append(Case(int(results.order[4]), tuple(q), target, "non_expert"))
    config = BeamConfig(beam_size=4, n_candidates=3, n_explanations=2, max_size=3)
    excfg = ExhaustiveConfig(timeout_seconds=3, n_explanations=2, max_size=3)
    return net, embedding, predictor, expert_cases, nonexpert_cases, config, excfg


class TestSweeps:
    def test_beam_size_sweep_points(self, setup):
        net, emb, pred, experts, _, config, excfg = setup
        points = sweep_beam_size(
            experts, net, emb, pred, values=(2, 4), base_config=config,
            exhaustive_config=excfg,
        )
        assert [p.parameter for p in points] == [2.0, 4.0]
        assert all(p.latency is not None and p.latency >= 0 for p in points)
        assert all(p.n_explanations is not None for p in points)

    def test_candidates_sweep_points(self, setup):
        net, emb, pred, _, nonexperts, config, excfg = setup
        points = sweep_candidates(
            nonexperts, net, emb, pred, values=(2, 4), base_config=config,
            exhaustive_config=excfg,
        )
        assert len(points) == 2
        # More candidates can only expand the searched space.
        assert points[1].n_explanations >= points[0].n_explanations - 1

    def test_radius_sweep_points(self, setup):
        net, emb, pred, _, nonexperts, config, excfg = setup
        points = sweep_radius(
            nonexperts, net, emb, pred, values=(0, 1), base_config=config,
            exhaustive_config=excfg,
        )
        assert [p.parameter for p in points] == [0.0, 1.0]

    def test_tau_sweep_monotone_size(self, setup):
        net, _, _, experts, _, _, _ = setup
        points = sweep_tau(
            experts, net, values=(0.01, 0.5),
            base_config=FactualConfig(exact_limit=8, n_samples=48, max_samples=64),
        )
        assert points[1].size <= points[0].size
        assert points[0].precision is None  # tau sweep measures size/latency

    def test_unsupported_kind_rejected(self, setup):
        from repro.eval.sensitivity import _baseline_results

        net, emb, _, experts, _, _, excfg = setup
        with pytest.raises(ValueError, match="unsupported sweep kind"):
            _baseline_results(experts, net, "link_addition", emb, excfg)

    def test_format_sweep_output(self, setup):
        net, emb, pred, experts, _, config, excfg = setup
        points = sweep_beam_size(
            experts, net, emb, pred, values=(2,), base_config=config,
            exhaustive_config=excfg,
        )
        text = format_sweep(points, "Title here", "b")
        assert "Title here" in text
        assert "latency" in text
