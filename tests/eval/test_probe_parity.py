"""The eval harness under the probe-engine parity contract.

``full_rebuild`` is the escape hatch that bypasses every delta session and
re-scores/re-forms from scratch.  The robustness and sensitivity harnesses
must produce *identical* tables either way — if they diverge, the eval
layer is silently measuring the probe engine instead of the explainers.
"""

import pytest

from repro.datasets import toy_network
from repro.embeddings import train_ppmi_embedding
from repro.eval import (
    measure_robustness,
    similar_pairs,
    sweep_beam_size,
    sweep_tau,
)
from repro.eval.harness import Case
from repro.explain import (
    BeamConfig,
    CounterfactualExplainer,
    ExhaustiveConfig,
    FactualConfig,
    FactualExplainer,
    MembershipTarget,
    RelevanceTarget,
)
from repro.linkpred import HeuristicLinkPredictor
from repro.search import DocumentExpertRanker
from repro.team import CoverTeamFormer

BEAM = BeamConfig(beam_size=4, n_candidates=3, n_explanations=2, max_size=2)
FACTUAL = FactualConfig(n_samples=32, max_samples=64, selection_samples=16)


@pytest.fixture(scope="module")
def stack():
    net = toy_network(n_people=14, seed=6)
    ranker = DocumentExpertRanker()  # training-free, delta-sessioned
    profiles = [sorted(net.skills(p)) for p in net.people()] * 2
    embedding = train_ppmi_embedding(profiles, dim=4, min_count=1)
    predictor = HeuristicLinkPredictor("common_neighbors").fit(net)
    query = sorted(net.skill_universe())[:3]
    return net, ranker, embedding, predictor, query


def _robustness_report(net, target, embedding, predictor, query, pairs):
    factual = FactualExplainer(target, FACTUAL)
    counterfactual = CounterfactualExplainer(target, embedding, predictor, BEAM)
    return measure_robustness(factual, counterfactual, net, query, pairs)


class TestRobustnessParity:
    def test_relevance_tables_identical(self, stack):
        net, ranker, embedding, predictor, query = stack
        target = RelevanceTarget(ranker, k=4)
        pairs = similar_pairs(net, min_similarity=0.1, max_pairs=3, seed=0)
        assert pairs, "fixture must yield at least one similar pair"

        ranker.full_rebuild = False
        engine_on = _robustness_report(net, target, embedding, predictor, query, pairs)
        ranker.full_rebuild = True
        try:
            engine_off = _robustness_report(
                net, target, embedding, predictor, query, pairs
            )
        finally:
            ranker.full_rebuild = False
        assert engine_on == engine_off

    def test_membership_tables_identical(self, stack):
        net, ranker, embedding, predictor, query = stack
        former = CoverTeamFormer(ranker)
        target = MembershipTarget(former)
        pairs = similar_pairs(net, min_similarity=0.1, max_pairs=2, seed=1)
        assert pairs

        former.full_rebuild = ranker.full_rebuild = False
        engine_on = _robustness_report(net, target, embedding, predictor, query, pairs)
        former.full_rebuild = ranker.full_rebuild = True
        try:
            engine_off = _robustness_report(
                net, target, embedding, predictor, query, pairs
            )
        finally:
            former.full_rebuild = ranker.full_rebuild = False
        assert engine_on == engine_off


def _sweep_signature(points):
    """Everything a sweep measures except wall-clock latency."""
    return [
        (p.parameter, p.precision, p.n_explanations, p.size) for p in points
    ]


class TestSensitivityParity:
    @pytest.fixture(scope="class")
    def cases(self, stack):
        net, ranker, _, _, query = stack
        target = RelevanceTarget(ranker, k=4)
        results = ranker.evaluate(query, net)
        return [
            Case(results.top_k(4)[-1], tuple(query), target, "expert"),
            Case(results.top_k(4)[0], tuple(query), target, "expert"),
        ]

    def test_beam_sweep_identical(self, stack, cases):
        net, ranker, embedding, predictor, _ = stack
        excfg = ExhaustiveConfig(timeout_seconds=3, n_explanations=2, max_size=2)

        ranker.full_rebuild = False
        engine_on = sweep_beam_size(
            cases, net, embedding, predictor, values=(2, 4),
            base_config=BEAM, exhaustive_config=excfg,
        )
        ranker.full_rebuild = True
        try:
            engine_off = sweep_beam_size(
                cases, net, embedding, predictor, values=(2, 4),
                base_config=BEAM, exhaustive_config=excfg,
            )
        finally:
            ranker.full_rebuild = False
        assert _sweep_signature(engine_on) == _sweep_signature(engine_off)

    def test_tau_sweep_identical(self, stack, cases):
        net, ranker, _, _, _ = stack

        ranker.full_rebuild = False
        engine_on = sweep_tau(cases, net, values=(0.05, 0.1), base_config=FACTUAL)
        ranker.full_rebuild = True
        try:
            engine_off = sweep_tau(
                cases, net, values=(0.05, 0.1), base_config=FACTUAL
            )
        finally:
            ranker.full_rebuild = False
        assert _sweep_signature(engine_on) == _sweep_signature(engine_off)
