"""Workload generation and subject sampling tests."""

import pytest

from repro.datasets import toy_network
from repro.eval import random_queries, sample_search_subjects, sample_team_subjects
from repro.search import CoverageExpertRanker
from repro.team import CoverTeamFormer


@pytest.fixture
def net():
    return toy_network(n_people=12, seed=4)


class TestRandomQueries:
    def test_count_and_length(self, net):
        queries = random_queries(net, 10, seed=1)
        assert len(queries) == 10
        assert all(3 <= len(q) <= 5 for q in queries)

    def test_terms_from_universe(self, net):
        universe = net.skill_universe()
        for q in random_queries(net, 5, seed=2):
            assert set(q) <= universe

    def test_no_duplicate_terms_within_query(self, net):
        for q in random_queries(net, 10, seed=3):
            assert len(q) == len(set(q))

    def test_deterministic(self, net):
        assert random_queries(net, 5, seed=4) == random_queries(net, 5, seed=4)

    def test_custom_term_range(self, net):
        queries = random_queries(net, 5, seed=5, terms=(2, 2))
        assert all(len(q) == 2 for q in queries)

    def test_invalid_range(self, net):
        with pytest.raises(ValueError):
            random_queries(net, 5, terms=(3, 1))

    def test_skillless_network_rejected(self):
        from repro.graph import CollaborationNetwork

        empty = CollaborationNetwork()
        empty.add_person("a")
        with pytest.raises(ValueError):
            random_queries(empty, 1)


class TestSearchSubjects:
    def test_expert_in_topk_nonexpert_in_band(self, net):
        ranker = CoverageExpertRanker()
        queries = random_queries(net, 6, seed=6)
        subjects = sample_search_subjects(ranker, net, queries, k=3, seed=6)
        assert len(subjects) == 6
        for s in subjects:
            results = ranker.evaluate(list(s.query), net)
            if s.expert is not None:
                assert results.rank_of(s.expert) <= 3
            if s.non_expert is not None:
                assert 3 < results.rank_of(s.non_expert) <= 6

    def test_zero_score_individuals_excluded(self, net):
        """Subjects must actually match the query (score > 0)."""
        ranker = CoverageExpertRanker()
        queries = random_queries(net, 6, seed=7)
        subjects = sample_search_subjects(ranker, net, queries, k=3, seed=7)
        for s in subjects:
            if s.expert is not None:
                scores = ranker.scores(frozenset(s.query), net)
                assert scores[s.expert] > 0


class TestTeamSubjects:
    def test_member_on_team_nonmember_off(self, net):
        ranker = CoverageExpertRanker()
        former = CoverTeamFormer(ranker)
        queries = random_queries(net, 6, seed=8)
        subjects = sample_team_subjects(former, ranker, net, queries, k=3, seed=8)
        assert subjects
        for s in subjects:
            team = former.form(list(s.query), net, seed_member=s.seed_member)
            assert s.seed_member in team.members
            if s.member is not None:
                assert s.member in team.members
                assert s.member != s.seed_member
            if s.non_member is not None:
                assert s.non_member not in team.members
                assert net.has_edge(s.seed_member, s.non_member)


class TestRequestBudgetStamping:
    """The workload builders stamp every request with the caller's budget
    and session identity for the service's resilience runtime."""

    def _subjects(self, net):
        from repro.eval import ExplanationSubjects

        query = tuple(sorted(net.skill_universe())[:3])
        return [ExplanationSubjects(query=query, expert=0, non_expert=5)]

    def test_search_requests_pass_budget_through(self, net):
        from repro.eval import search_requests

        requests = search_requests(
            self._subjects(net), kinds=("skills",),
            timeout_seconds=2.0, probe_limit=100, session="alice",
        )
        assert requests
        for request in requests:
            assert request.timeout_seconds == 2.0
            assert request.probe_limit == 100
            assert request.session == "alice"

    def test_defaults_stay_unlimited(self, net):
        from repro.eval import search_requests

        for request in search_requests(self._subjects(net), kinds=("skills",)):
            assert request.timeout_seconds is None
            assert request.probe_limit is None
            assert request.session == ""

    def test_team_requests_pass_budget_through(self, net):
        from repro.eval import TeamSubjects, team_requests

        query = tuple(sorted(net.skill_universe())[:3])
        subjects = [
            TeamSubjects(query=query, seed_member=0, member=1, non_member=2)
        ]
        requests = team_requests(
            subjects, kinds=("skills",), probe_limit=50, session="bob"
        )
        assert requests
        for request in requests:
            assert request.probe_limit == 50
            assert request.session == "bob"


class TestOutcomeCounts:
    def test_tallies_by_outcome(self):
        from repro.eval import outcome_counts
        from repro.service import ExplainRequest, ExplainResponse

        request = ExplainRequest(kind="skills", person=0, query=("a",))
        responses = [
            ExplainResponse(request=request, outcome="ok"),
            ExplainResponse(request=request, outcome="ok"),
            ExplainResponse(request=request, outcome="rejected"),
            ExplainResponse(request=request, outcome="degraded"),
        ]
        assert outcome_counts(responses) == {
            "ok": 2, "rejected": 1, "degraded": 1,
        }

    def test_empty(self):
        from repro.eval import outcome_counts

        assert outcome_counts([]) == {}
