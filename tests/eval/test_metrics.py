"""Hand-computed precision metric tests."""

import pytest

from repro.eval import cf_precision, cf_precision_star, factual_precision_at_k
from repro.eval.metrics import mean_ignoring_none
from repro.explain import (
    Counterfactual,
    CounterfactualExplanation,
    FactualExplanation,
    FeatureAttribution,
    SkillAssignmentFeature,
)
from repro.graph.perturbations import RemoveSkill


def _factual(values, people=None):
    people = people or list(range(len(values)))
    return FactualExplanation(
        person=0,
        query=frozenset({"q"}),
        attributions=[
            FeatureAttribution(SkillAssignmentFeature(p, f"s{p}"), v)
            for p, v in zip(people, values)
        ],
        base_value=0.0,
        full_value=1.0,
        n_evaluations=1,
        elapsed_seconds=0.0,
        method="exact",
        pruned=True,
        kind="skills",
    )


def _cf(sizes):
    return CounterfactualExplanation(
        person=0,
        query=frozenset({"q"}),
        counterfactuals=[
            Counterfactual(
                tuple(RemoveSkill(i, f"s{i}-{j}") for j in range(size)), 2.0
            )
            for i, size in enumerate(sizes)
        ],
        initial_decision=True,
        n_probes=1,
        elapsed_seconds=0.0,
        kind="skill_removal",
        pruned=True,
    )


class TestFactualPrecision:
    def test_full_overlap(self):
        pruned = _factual([0.9, 0.5], people=[0, 1])
        exhaustive = _factual([0.8, 0.4, 0.1], people=[0, 1, 2])
        assert factual_precision_at_k(pruned, exhaustive, 2) == 1.0

    def test_partial_overlap(self):
        pruned = _factual([0.9, 0.5], people=[0, 9])  # feature 9 not in baseline
        exhaustive = _factual([0.8, 0.4], people=[0, 1])
        assert factual_precision_at_k(pruned, exhaustive, 2) == 0.5

    def test_zero_values_in_baseline_dont_count(self):
        pruned = _factual([0.9], people=[0])
        exhaustive = _factual([0.0], people=[0])  # zero SHAP in baseline
        assert factual_precision_at_k(pruned, exhaustive, 1) == 0.0

    def test_pruned_all_zero_is_undefined(self):
        pruned = _factual([0.0, 0.0])
        exhaustive = _factual([0.8, 0.4])
        assert factual_precision_at_k(pruned, exhaustive, 2) is None

    def test_k_validation(self):
        with pytest.raises(ValueError):
            factual_precision_at_k(_factual([1.0]), _factual([1.0]), 0)


class TestCfPrecision:
    def test_all_minimal(self):
        assert cf_precision(_cf([1, 1]), _cf([1])) == 1.0

    def test_half_minimal(self):
        assert cf_precision(_cf([1, 2]), _cf([1])) == 0.5

    def test_none_when_baseline_empty(self):
        assert cf_precision(_cf([1]), _cf([])) is None

    def test_none_when_pruned_empty(self):
        assert cf_precision(_cf([]), _cf([1])) is None

    def test_precision_star_within_one(self):
        # baseline minimal = 1; sizes 1 and 2 both pass the star criterion.
        assert cf_precision_star(_cf([1, 2]), _cf([1])) == 1.0
        # size 3 exceeds minimal + 1.
        assert cf_precision_star(_cf([1, 3]), _cf([1])) == 0.5

    def test_star_at_least_plain(self):
        pruned, base = _cf([1, 2, 2]), _cf([1])
        assert cf_precision_star(pruned, base) >= cf_precision(pruned, base)


class TestMeanIgnoringNone:
    def test_mixed(self):
        assert mean_ignoring_none([1.0, None, 0.0]) == 0.5

    def test_all_none(self):
        assert mean_ignoring_none([None, None]) is None
