"""Experiment harness tests on the fast coverage ranker."""

import pytest

from repro.datasets import toy_network
from repro.embeddings import train_ppmi_embedding
from repro.eval import (
    Case,
    random_queries,
    run_counterfactual_experiment,
    run_factual_experiment,
)
from repro.eval.tables import format_counterfactual_table, format_factual_table
from repro.explain import BeamConfig, ExhaustiveConfig, FactualConfig, RelevanceTarget
from repro.linkpred import HeuristicLinkPredictor
from repro.search import CoverageExpertRanker


@pytest.fixture(scope="module")
def setup():
    net = toy_network(n_people=14, seed=5)
    ranker = CoverageExpertRanker()
    target = RelevanceTarget(ranker, k=3)
    profiles = [sorted(net.skills(p)) for p in net.people()] * 2
    embedding = train_ppmi_embedding(profiles, dim=4, min_count=1)
    predictor = HeuristicLinkPredictor("common_neighbors").fit(net)
    queries = random_queries(net, 3, seed=9)
    expert_cases = []
    nonexpert_cases = []
    for q in queries:
        results = ranker.evaluate(q, net)
        expert_cases.append(Case(results.top_k(1)[0], tuple(q), target, "expert"))
        nonexpert_cases.append(Case(int(results.order[4]), tuple(q), target, "non_expert"))
    return net, embedding, predictor, expert_cases, nonexpert_cases


class TestFactualExperiment:
    def test_rows_per_kind(self, setup):
        net, _, _, expert_cases, _ = setup
        rows = run_factual_experiment(
            expert_cases,
            net,
            kinds=("skills", "query"),
            factual_config=FactualConfig(exact_limit=8, n_samples=48, max_samples=64),
            exhaustive_config=ExhaustiveConfig(
                exact_limit=8, n_samples=48, max_samples=64
            ),
            dataset_name="toy",
        )
        assert [r.kind for r in rows] == ["skills", "query"]
        skills_row = rows[0]
        assert skills_row.n_cases == len(expert_cases)
        assert skills_row.latency_exes > 0
        assert skills_row.latency_baseline > 0
        assert skills_row.size_exes is not None
        assert 0.0 <= (skills_row.precision_at_1 or 0.0) <= 1.0

    def test_query_kind_has_no_baseline(self, setup):
        net, _, _, expert_cases, _ = setup
        rows = run_factual_experiment(
            expert_cases,
            net,
            kinds=("query",),
            factual_config=FactualConfig(exact_limit=8),
        )
        assert rows[0].latency_baseline is None
        assert rows[0].precision_at_1 is None

    def test_unknown_kind_rejected(self, setup):
        net, _, _, expert_cases, _ = setup
        with pytest.raises(ValueError):
            run_factual_experiment(expert_cases, net, kinds=("bogus",))

    def test_table_formatting(self, setup):
        net, _, _, expert_cases, _ = setup
        rows = run_factual_experiment(
            expert_cases,
            net,
            kinds=("query",),
            factual_config=FactualConfig(exact_limit=8),
            with_baseline=False,
        )
        table = format_factual_table(rows, "Mini table")
        assert "Mini table" in table
        assert "query" in table


class TestCounterfactualExperiment:
    def test_skill_removal_with_full_baseline(self, setup):
        net, embedding, predictor, expert_cases, _ = setup
        row = run_counterfactual_experiment(
            expert_cases,
            net,
            "skill_removal",
            embedding,
            predictor,
            beam_config=BeamConfig(beam_size=4, n_candidates=4, n_explanations=2),
            exhaustive_config=ExhaustiveConfig(timeout_seconds=5, n_explanations=2),
            dataset_name="toy",
        )
        assert row.kind == "skill_removal"
        assert row.latency_exes > 0
        assert "full" in row.baselines
        agg = row.baselines["full"]
        assert agg.latency > 0
        if row.n_explanations_exes and agg.n_explanations:
            assert 0.0 <= agg.precision <= 1.0
            assert agg.precision_star >= agg.precision

    def test_skill_addition_uses_n_and_s(self, setup):
        net, embedding, predictor, _, nonexpert_cases = setup
        row = run_counterfactual_experiment(
            nonexpert_cases,
            net,
            "skill_addition",
            embedding,
            predictor,
            beam_config=BeamConfig(beam_size=4, n_candidates=3, n_explanations=2),
            exhaustive_config=ExhaustiveConfig(timeout_seconds=5, n_explanations=2),
            baselines=("N", "S"),
        )
        assert set(row.baselines) == {"N", "S"}

    def test_no_baselines_mode(self, setup):
        net, embedding, predictor, expert_cases, _ = setup
        row = run_counterfactual_experiment(
            expert_cases,
            net,
            "query_augmentation",
            embedding,
            predictor,
            beam_config=BeamConfig(beam_size=4, n_candidates=3, n_explanations=2),
            baselines=(),
        )
        assert row.baselines == {}
        assert row.precision is None

    def test_unknown_kind_rejected(self, setup):
        net, embedding, predictor, expert_cases, _ = setup
        with pytest.raises(ValueError):
            run_counterfactual_experiment(
                expert_cases, net, "bogus", embedding, predictor
            )

    def test_table_formatting_with_nested_baselines(self, setup):
        net, embedding, predictor, _, nonexpert_cases = setup
        row = run_counterfactual_experiment(
            nonexpert_cases[:1],
            net,
            "skill_addition",
            embedding,
            predictor,
            beam_config=BeamConfig(beam_size=3, n_candidates=3, n_explanations=1),
            exhaustive_config=ExhaustiveConfig(timeout_seconds=2, n_explanations=1),
            baselines=("N", "S"),
        )
        table = format_counterfactual_table([row], "CF table")
        assert "skill_addition[N]" in table
        assert "[S]" in table
