"""Tests for the explanation-robustness extension (paper §5 future work)."""

import pytest

from repro.embeddings import train_ppmi_embedding
from repro.eval import (
    counterfactual_explanation_overlap,
    factual_explanation_overlap,
    measure_robustness,
    person_similarity,
    similar_pairs,
)
from repro.explain import (
    BeamConfig,
    Counterfactual,
    CounterfactualExplainer,
    CounterfactualExplanation,
    FactualConfig,
    FactualExplainer,
    FactualExplanation,
    FeatureAttribution,
    RelevanceTarget,
    SkillAssignmentFeature,
)
from repro.graph import CollaborationNetwork
from repro.graph.perturbations import AddSkill, RemoveSkill
from repro.linkpred import HeuristicLinkPredictor
from repro.search import CoverageExpertRanker


@pytest.fixture
def net():
    """Two near-twins (0, 1) sharing skills and a neighbor, plus others."""
    net = CollaborationNetwork()
    net.add_person("twin-a", {"graph", "mining", "search"})
    net.add_person("twin-b", {"graph", "mining", "index"})
    net.add_person("hub", {"vision"})
    net.add_person("odd", {"privacy"})
    net.add_edge(0, 2)
    net.add_edge(1, 2)
    net.add_edge(2, 3)
    return net


class TestPersonSimilarity:
    def test_twins_are_similar(self, net):
        assert person_similarity(net, 0, 1) > 0.5

    def test_unrelated_are_dissimilar(self, net):
        assert person_similarity(net, 0, 3) < person_similarity(net, 0, 1)

    def test_symmetric(self, net):
        assert person_similarity(net, 0, 1) == person_similarity(net, 1, 0)


class TestSimilarPairs:
    def test_twins_found(self, net):
        pairs = similar_pairs(net, min_similarity=0.3)
        assert any({a, b} == {0, 1} for a, b, _ in pairs)

    def test_threshold_filters(self, net):
        pairs = similar_pairs(net, min_similarity=0.99)
        assert pairs == []

    def test_max_pairs_respected(self, net):
        pairs = similar_pairs(net, min_similarity=0.0, max_pairs=1)
        assert len(pairs) == 1


def _fx(skills_with_values):
    return FactualExplanation(
        person=0,
        query=frozenset({"q"}),
        attributions=[
            FeatureAttribution(SkillAssignmentFeature(0, s), v)
            for s, v in skills_with_values
        ],
        base_value=0.0,
        full_value=1.0,
        n_evaluations=1,
        elapsed_seconds=0.0,
        method="exact",
        pruned=True,
        kind="skills",
    )


def _cf(perturbations):
    return CounterfactualExplanation(
        person=0,
        query=frozenset({"q"}),
        counterfactuals=[Counterfactual(tuple(perturbations), 2.0)],
        initial_decision=True,
        n_probes=1,
        elapsed_seconds=0.0,
        kind="skill_removal",
        pruned=True,
    )


class TestOverlapMetrics:
    def test_factual_identical(self):
        a = _fx([("graph", 0.9), ("mining", 0.5)])
        assert factual_explanation_overlap(a, a) == 1.0

    def test_factual_disjoint(self):
        a = _fx([("graph", 0.9)])
        b = _fx([("privacy", 0.9)])
        assert factual_explanation_overlap(a, b) == 0.0

    def test_factual_zero_values_ignored(self):
        a = _fx([("graph", 0.9), ("noise", 0.0)])
        b = _fx([("graph", 0.5)])
        assert factual_explanation_overlap(a, b) == 1.0

    def test_factual_undefined_when_both_empty(self):
        assert factual_explanation_overlap(_fx([]), _fx([])) is None

    def test_cf_vocabulary_overlap(self):
        a = _cf([RemoveSkill(0, "graph")])
        b = _cf([AddSkill(1, "graph"), AddSkill(1, "mining")])
        assert counterfactual_explanation_overlap(a, b) == 0.5

    def test_cf_undefined_when_empty(self):
        empty = CounterfactualExplanation(
            person=0, query=frozenset(), counterfactuals=[],
            initial_decision=True, n_probes=0, elapsed_seconds=0.0,
            kind="skill_removal", pruned=True,
        )
        assert counterfactual_explanation_overlap(empty, empty) is None


class TestMeasureRobustness:
    def test_end_to_end_on_twins(self, net):
        target = RelevanceTarget(CoverageExpertRanker(), k=2)
        profiles = [sorted(net.skills(p)) for p in net.people()] * 3
        embedding = train_ppmi_embedding(profiles, dim=4, min_count=1)
        predictor = HeuristicLinkPredictor("common_neighbors").fit(net)
        factual = FactualExplainer(target, FactualConfig(exact_limit=10))
        counterfactual = CounterfactualExplainer(
            target, embedding, predictor, BeamConfig(beam_size=4, n_candidates=4)
        )
        pairs = similar_pairs(net, min_similarity=0.3)
        report = measure_robustness(
            factual, counterfactual, net, ["graph", "mining"], pairs
        )
        assert report.n_pairs == len(pairs)
        assert report.mean_person_similarity > 0.3
        # Twins share their decisive skills: factual stories must overlap.
        assert report.factual_overlap is None or report.factual_overlap >= 0.0
        assert "robustness" in report.as_text()

    def test_empty_pairs(self, net):
        target = RelevanceTarget(CoverageExpertRanker(), k=2)
        report = measure_robustness(
            FactualExplainer(target), None, net, ["graph"], []
        )
        assert report.n_pairs == 0
        assert report.factual_overlap is None
