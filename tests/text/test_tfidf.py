"""TF-IDF model and skill extraction tests."""

import math

import numpy as np
import pytest

from repro.graph import NetworkRecipe, synthesize_network
from repro.text import CorpusRecipe, TfidfModel, extract_skills, generate_corpus


@pytest.fixture
def docs():
    return [
        ["graph", "mining", "graph"],
        ["graph", "search"],
        ["privacy", "search", "search"],
    ]


class TestTfidfModel:
    def test_vocabulary_is_sorted_terms(self, docs):
        model = TfidfModel.fit(docs)
        assert list(model.vocabulary) == sorted(model.vocabulary)
        assert model.n_documents == 3

    def test_idf_formula(self, docs):
        model = TfidfModel.fit(docs)
        idx = model.vocabulary["graph"]  # df=2, N=3
        assert model.idf[idx] == pytest.approx(math.log(4 / 3) + 1)

    def test_min_df_filters(self, docs):
        model = TfidfModel.fit(docs, min_df=2)
        assert "mining" not in model.vocabulary
        assert "graph" in model.vocabulary

    def test_term_scores_tf_weighting(self, docs):
        model = TfidfModel.fit(docs)
        scores = model.term_scores(["graph", "graph", "mining"])
        assert scores["graph"] > scores["mining"] * 1.2  # tf 2/3 vs 1/3

    def test_unknown_terms_ignored(self, docs):
        model = TfidfModel.fit(docs)
        assert model.term_scores(["quantum"]) == {}
        assert np.all(model.vector(["quantum"]) == 0.0)

    def test_vector_is_unit_norm(self, docs):
        model = TfidfModel.fit(docs)
        vec = model.vector(["graph", "search"])
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_matrix_rows_match_vectors(self, docs):
        model = TfidfModel.fit(docs)
        mat = model.matrix(docs)
        for i, doc in enumerate(docs):
            np.testing.assert_allclose(
                np.asarray(mat[i].todense()).ravel(), model.vector(doc), atol=1e-12
            )

    def test_cosine_favors_matching_docs(self, docs):
        model = TfidfModel.fit(docs)
        mat = model.matrix(docs)
        q = model.vector(["privacy"])
        sims = np.asarray(mat @ q).ravel()
        assert np.argmax(sims) == 2


class TestExtractSkills:
    @pytest.fixture(scope="class")
    def pipeline(self):
        synthesis = synthesize_network(
            NetworkRecipe(n_people=50, n_edges=120, n_skills=40, seed=6),
            attach_skills=False,
        )
        corpus = generate_corpus(synthesis, CorpusRecipe(seed=6))
        return synthesis, corpus

    def test_respects_max_skills(self, pipeline):
        _, corpus = pipeline
        skills = extract_skills(corpus, range(50), max_skills=7)
        assert all(len(s) <= 7 for s in skills.values())

    def test_mean_skills_near_max_for_rich_corpus(self, pipeline):
        _, corpus = pipeline
        skills = extract_skills(corpus, range(50), max_skills=10)
        mean = np.mean([len(s) for s in skills.values()])
        assert mean > 8

    def test_filler_terms_excluded(self, pipeline):
        _, corpus = pipeline
        from repro.text.corpus import _FILLER_TOKENS

        skills = extract_skills(
            corpus, range(50), max_skills=10, filler_terms=_FILLER_TOKENS
        )
        for s in skills.values():
            assert not set(s) & set(_FILLER_TOKENS)

    def test_skills_reflect_communities(self, pipeline):
        """A person's extracted skills should overlap their community pool."""
        synthesis, corpus = pipeline
        skills = extract_skills(corpus, range(50), max_skills=10)
        hits = 0
        total = 0
        for p in range(50):
            pool = set()
            for c in synthesis.person_communities[p]:
                pool.update(synthesis.community_skill_pools[c])
            total += len(skills[p])
            hits += sum(1 for s in skills[p] if s in pool)
        assert hits / total > 0.6
