"""Corpus generation tests."""

import numpy as np
import pytest

from repro.graph import NetworkRecipe, synthesize_network
from repro.text import CorpusRecipe, generate_corpus


@pytest.fixture(scope="module")
def synthesis():
    return synthesize_network(
        NetworkRecipe(n_people=60, n_edges=150, n_skills=50, seed=5),
        attach_skills=False,
    )


@pytest.fixture(scope="module")
def corpus(synthesis):
    return generate_corpus(synthesis, CorpusRecipe(seed=5))


class TestGeneration:
    def test_every_person_authors_something(self, synthesis, corpus):
        for p in synthesis.network.people():
            assert corpus.person_doc_ids[p], f"person {p} has no documents"

    def test_documents_have_tokens(self, corpus):
        assert corpus.n_documents > 0
        for doc in corpus.documents:
            assert len(doc.tokens) >= 8

    def test_author_ids_valid(self, synthesis, corpus):
        n = synthesis.network.n_people
        for doc in corpus.documents:
            assert all(0 <= a < n for a in doc.authors)

    def test_coauthored_docs_use_network_edges(self, synthesis, corpus):
        net = synthesis.network
        for doc in corpus.documents:
            if len(doc.authors) == 2:
                u, v = doc.authors
                assert net.has_edge(u, v)

    def test_person_tokens_aggregates_authored_docs(self, corpus):
        tokens = corpus.person_tokens(0)
        total = sum(len(d.tokens) for d in corpus.documents_of(0))
        assert len(tokens) == total

    def test_skill_tokens_come_from_community_pools(self, synthesis, corpus):
        """Most non-filler tokens of a solo-authored doc must come from the
        author's community pools."""
        from repro.text.corpus import _FILLER_TOKENS

        filler = set(_FILLER_TOKENS)
        doc = next(d for d in corpus.documents if len(d.authors) == 1)
        author = doc.authors[0]
        pool = set()
        for c in synthesis.person_communities[author]:
            pool.update(synthesis.community_skill_pools[c])
        non_filler = [t for t in doc.tokens if t not in filler]
        assert non_filler
        assert all(t in pool for t in non_filler)


class TestDeterminism:
    def test_same_seed_same_corpus(self, synthesis):
        a = generate_corpus(synthesis, CorpusRecipe(seed=9))
        b = generate_corpus(synthesis, CorpusRecipe(seed=9))
        assert [d.tokens for d in a.documents] == [d.tokens for d in b.documents]

    def test_different_seed_differs(self, synthesis):
        a = generate_corpus(synthesis, CorpusRecipe(seed=9))
        b = generate_corpus(synthesis, CorpusRecipe(seed=10))
        assert [d.tokens for d in a.documents] != [d.tokens for d in b.documents]

    def test_token_lists_shape(self, corpus):
        lists = corpus.token_lists()
        assert len(lists) == corpus.n_documents
        assert all(isinstance(t, str) for t in lists[0])
