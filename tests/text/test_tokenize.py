"""Tokenizer tests."""

from repro.text import STOPWORDS, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Graph Mining") == ["graph", "mining"]

    def test_drops_stopwords(self):
        assert tokenize("the graph of the mining") == ["graph", "mining"]

    def test_drops_single_characters(self):
        assert tokenize("a b graph") == ["graph"]

    def test_keeps_internal_hyphens(self):
        assert tokenize("graph-algorithms rock") == ["graph-algorithms", "rock"]

    def test_splits_punctuation(self):
        assert tokenize("graphs, mining; and search!") == [
            "graphs",
            "mining",
            "search",
        ]

    def test_numbers_kept(self):
        assert tokenize("web 2x faster") == ["web", "2x", "faster"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_stopwords_is_frozen(self):
        assert "the" in STOPWORDS
        assert isinstance(STOPWORDS, frozenset)
