"""NetworkOverlay: copy-on-write semantics and base-network equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import toy_network
from repro.graph import CollaborationNetwork, NetworkOverlay
from repro.graph.perturbations import (
    AddEdge,
    AddSkill,
    RemoveEdge,
    RemoveSkill,
    apply_perturbations,
)


@pytest.fixture
def net():
    return toy_network(n_people=10, seed=3)


def _assert_view_matches(overlay: NetworkOverlay, reference: CollaborationNetwork):
    """Every delta-aware read must agree with the materialized network."""
    assert overlay.n_people == reference.n_people
    assert overlay.n_edges == reference.n_edges
    assert sorted(overlay.edges()) == sorted(reference.edges())
    assert overlay.skill_universe() == reference.skill_universe()
    assert overlay.total_skill_assignments() == reference.total_skill_assignments()
    for p in reference.people():
        assert overlay.skills(p) == reference.skills(p)
        assert overlay.neighbors(p) == reference.neighbors(p)
        assert overlay.degree(p) == reference.degree(p)
        assert overlay.incident_edges(p) == reference.incident_edges(p)
        assert overlay.neighborhood(p, 1) == reference.neighborhood(p, 1)
    for s in reference.skill_universe() | overlay.base.skill_universe():
        assert overlay.people_with_skill(s) == reference.people_with_skill(s)


class TestOverlayBasics:
    def test_fresh_overlay_mirrors_base(self, net):
        _assert_view_matches(NetworkOverlay(net), net)

    def test_mutations_stay_in_overlay(self, net):
        ov = NetworkOverlay(net)
        skill = sorted(net.skills(0))[0]
        assert ov.remove_skill(0, skill)
        assert ov.add_skill(1, "brand-new")
        u, v = sorted(net.edges())[0]
        assert ov.remove_edge(u, v)
        assert not net.has_skill(1, "brand-new")
        assert net.has_skill(0, skill)
        assert net.has_edge(u, v)

    def test_view_matches_materialized_after_flips(self, net):
        ov = NetworkOverlay(net)
        skill = sorted(net.skills(2))[0]
        ov.remove_skill(2, skill)
        ov.add_skill(5, "quantum")
        u, v = sorted(net.edges())[0]
        ov.remove_edge(u, v)
        if not net.has_edge(0, 7):
            ov.add_edge(0, 7)
        _assert_view_matches(ov, ov.materialize())

    def test_cancelling_flips_annihilate(self, net):
        ov = NetworkOverlay(net)
        ov.add_skill(0, "quantum")
        ov.remove_skill(0, "quantum")
        u, v = sorted(net.edges())[0]
        ov.remove_edge(u, v)
        ov.add_edge(u, v)
        assert ov.flips() == frozenset()
        assert ov.n_flips == 0

    def test_noop_mutations_return_false(self, net):
        ov = NetworkOverlay(net)
        skill = sorted(net.skills(0))[0]
        assert not ov.add_skill(0, skill)
        assert not ov.remove_skill(0, "ghost")
        u, v = sorted(net.edges())[0]
        assert not ov.add_edge(u, v)
        assert ov.flips() == frozenset()

    def test_flips_canonical_form(self, net):
        ov = NetworkOverlay(net)
        ov.add_skill(3, "quantum")
        u, v = sorted(net.edges())[0]
        ov.remove_edge(u, v)
        assert ov.flips() == frozenset(
            {("s", 3, "quantum", True), ("e", u, v, False)}
        )

    def test_add_person_rejected(self, net):
        with pytest.raises(NotImplementedError):
            NetworkOverlay(net).add_person("new")

    def test_copy_is_real_network(self, net):
        ov = NetworkOverlay(net)
        ov.add_skill(0, "quantum")
        clone = ov.copy()
        assert isinstance(clone, CollaborationNetwork)
        assert clone.has_skill(0, "quantum")
        clone.add_skill(1, "later")  # independent of the overlay
        assert not ov.has_skill(1, "later")

    def test_chained_overlay_flattens(self, net):
        ov1 = NetworkOverlay(net)
        ov1.add_skill(0, "quantum")
        ov2 = NetworkOverlay(ov1)
        ov2.remove_skill(0, "quantum")
        assert ov2.base is net
        assert ov2.flips() == frozenset()
        assert ov1.has_skill(0, "quantum")  # branch point unaffected

    def test_materialize_fallback_for_exotic_methods(self, net):
        ov = NetworkOverlay(net)
        u, v = sorted(net.edges())[0]
        ov.remove_edge(u, v)
        ov.validate()
        assert ov.adjacency_csr().shape == (net.n_people, net.n_people)

    def test_frozen_base_enforced(self, net):
        ov = NetworkOverlay(net)
        net.add_skill(0, "mutation-after-overlay")
        with pytest.raises(RuntimeError, match="base network mutated"):
            ov.skills(0)


class TestApplyPerturbationsOverlay:
    def test_returns_overlay_for_network_edits(self, net):
        out, _ = apply_perturbations(net, [], [AddSkill(0, "quantum")])
        assert isinstance(out, NetworkOverlay)
        assert out.base is net

    def test_full_rebuild_returns_real_copy(self, net):
        out, _ = apply_perturbations(
            net, [], [AddSkill(0, "quantum")], full_rebuild=True
        )
        assert isinstance(out, CollaborationNetwork)
        assert out.has_skill(0, "quantum")

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_overlay_equals_full_rebuild(self, seed):
        import numpy as np

        net = toy_network(n_people=10, seed=1)
        rng = np.random.default_rng(seed)
        perts = []
        edges = sorted(net.edges())
        u, v = edges[rng.integers(0, len(edges))]
        perts.append(RemoveEdge(u, v))
        p = int(rng.integers(0, net.n_people))
        if not net.has_skill(p, "zeta"):
            perts.append(AddSkill(p, "zeta"))
        a, b = int(rng.integers(0, 5)), int(rng.integers(5, 10))
        if not net.has_edge(a, b):
            perts.append(AddEdge(a, b))
        own = sorted(net.skills(p))
        if own:
            perts.append(RemoveSkill(p, own[0]))
        fast, _ = apply_perturbations(net, [], perts)
        slow, _ = apply_perturbations(net, [], perts, full_rebuild=True)
        _assert_view_matches(fast, slow)


class TestChainedFlipEquivalence:
    """branch() chains and cancelling edits must be invisible in the
    canonical delta — the probe engine uses flips() as a memo key, so a
    chained-and-annihilated overlay must key (and read) identically to the
    equivalent flat overlay."""

    def test_branch_chain_with_annihilation_matches_flat(self, net):
        s0 = sorted(net.skills(0))[0]
        u, v = sorted(net.edges())[0]
        flat = NetworkOverlay(net)
        flat.remove_skill(0, s0)
        flat.remove_edge(u, v)

        ov1 = NetworkOverlay(net)
        ov1.remove_skill(0, s0)
        ov2 = ov1.branch()
        ov2.add_skill(4, "transient")
        ov2.remove_edge(u, v)
        ov3 = ov2.branch()
        ov3.remove_skill(4, "transient")  # annihilates the branch's add

        assert ov3.flips() == flat.flips()
        assert ov3.n_flips == flat.n_flips
        _assert_view_matches(ov3, flat.materialize())

    def test_cancelled_edge_flip_across_branches(self, net):
        u, v = sorted(net.edges())[0]
        ov1 = NetworkOverlay(net)
        ov1.remove_edge(u, v)
        ov2 = ov1.branch()
        ov2.add_edge(u, v)  # cancels the inherited removal
        assert ov2.flips() == frozenset()
        _assert_view_matches(ov2, net)
