"""Unit tests for the CollaborationNetwork substrate."""

import numpy as np
import pytest

from repro.graph import CollaborationNetwork


@pytest.fixture
def simple():
    """Path 0-1-2 plus an isolated node 3."""
    net = CollaborationNetwork()
    net.add_person("a", {"x", "y"})
    net.add_person("b", {"y"})
    net.add_person("c", {"z"})
    net.add_person("d")
    net.add_edge(0, 1)
    net.add_edge(1, 2)
    return net


class TestConstruction:
    def test_add_person_returns_sequential_ids(self):
        net = CollaborationNetwork()
        assert net.add_person("a") == 0
        assert net.add_person("b") == 1
        assert net.n_people == 2

    def test_from_parts(self):
        net = CollaborationNetwork.from_parts(
            ["a", "b"], [{"x"}, {"y"}], [(0, 1)]
        )
        assert net.n_people == 2
        assert net.has_edge(0, 1)
        assert net.skills(0) == {"x"}

    def test_from_parts_misaligned_raises(self):
        with pytest.raises(ValueError, match="align"):
            CollaborationNetwork.from_parts(["a"], [{"x"}, {"y"}], [])

    def test_skills_are_copied_on_add(self):
        source = {"x"}
        net = CollaborationNetwork()
        net.add_person("a", source)
        source.add("y")
        assert net.skills(0) == {"x"}


class TestEdges:
    def test_add_edge_is_symmetric(self, simple):
        assert simple.has_edge(0, 1)
        assert simple.has_edge(1, 0)

    def test_add_duplicate_edge_returns_false(self, simple):
        assert simple.add_edge(0, 1) is False
        assert simple.n_edges == 2

    def test_remove_edge(self, simple):
        assert simple.remove_edge(0, 1) is True
        assert not simple.has_edge(0, 1)
        assert simple.n_edges == 1

    def test_remove_absent_edge_returns_false(self, simple):
        assert simple.remove_edge(0, 2) is False

    def test_self_loop_rejected(self, simple):
        with pytest.raises(ValueError, match="self loop"):
            simple.add_edge(1, 1)

    def test_out_of_range_rejected(self, simple):
        with pytest.raises(IndexError):
            simple.add_edge(0, 99)

    def test_edges_iterates_each_once_with_u_lt_v(self, simple):
        assert sorted(simple.edges()) == [(0, 1), (1, 2)]

    def test_degree_and_neighbors(self, simple):
        assert simple.degree(1) == 2
        assert simple.neighbors(1) == {0, 2}
        assert simple.neighbors(3) == frozenset()

    def test_incident_edges_canonical(self, simple):
        assert simple.incident_edges(1) == [(0, 1), (1, 2)]


class TestSkills:
    def test_add_and_remove_skill(self, simple):
        assert simple.add_skill(3, "w") is True
        assert simple.has_skill(3, "w")
        assert simple.remove_skill(3, "w") is True
        assert not simple.has_skill(3, "w")

    def test_add_duplicate_skill_returns_false(self, simple):
        assert simple.add_skill(0, "x") is False

    def test_remove_absent_skill_returns_false(self, simple):
        assert simple.remove_skill(0, "nope") is False

    def test_skill_universe(self, simple):
        assert simple.skill_universe() == {"x", "y", "z"}

    def test_total_skill_assignments(self, simple):
        assert simple.total_skill_assignments() == 4

    def test_people_with_skill(self, simple):
        assert simple.people_with_skill("y") == {0, 1}
        assert simple.people_with_skill("nope") == frozenset()

    def test_skills_returns_immutable_view(self, simple):
        view = simple.skills(0)
        with pytest.raises(AttributeError):
            view.add("q")  # frozenset has no add


class TestNeighborhoods:
    def test_radius_zero_is_self(self, simple):
        assert simple.neighborhood(0, 0) == {0}

    def test_radius_one(self, simple):
        assert simple.neighborhood(0, 1) == {0, 1}

    def test_radius_two(self, simple):
        assert simple.neighborhood(0, 2) == {0, 1, 2}

    def test_radius_beyond_component(self, simple):
        assert simple.neighborhood(0, 10) == {0, 1, 2}

    def test_negative_radius_raises(self, simple):
        with pytest.raises(ValueError):
            simple.neighborhood(0, -1)

    def test_neighborhood_skills(self, simple):
        assert simple.neighborhood_skills(0, 1) == {"x", "y"}
        assert simple.neighborhood_skills(0, 2) == {"x", "y", "z"}

    def test_edges_within(self, simple):
        assert simple.edges_within({0, 1, 2}) == [(0, 1), (1, 2)]
        assert simple.edges_within({0, 2}) == []

    def test_shortest_path_length(self, simple):
        assert simple.shortest_path_length(0, 0) == 0
        assert simple.shortest_path_length(0, 2) == 2
        assert simple.shortest_path_length(0, 3) is None


class TestDerivedMatrices:
    def test_adjacency_csr_symmetric(self, simple):
        adj = simple.adjacency_csr()
        assert adj.shape == (4, 4)
        assert (adj != adj.T).nnz == 0
        assert adj.sum() == 4  # 2 undirected edges

    def test_normalized_adjacency_rows_bounded(self, simple):
        norm = simple.normalized_adjacency()
        assert norm.shape == (4, 4)
        # Isolated node with self loop normalizes to exactly 1.
        assert norm[3, 3] == pytest.approx(1.0)

    def test_skill_matrix_default_vocab(self, simple):
        mat = simple.skill_matrix()
        vocab = simple.skill_vocabulary()
        assert mat.shape == (4, len(vocab))
        assert mat.sum() == simple.total_skill_assignments()

    def test_skill_matrix_projects_onto_external_vocab(self, simple):
        mat = simple.skill_matrix({"x": 0, "unknown": 1})
        assert mat.shape == (4, 2)
        assert mat[0, 0] == 1.0
        assert mat[:, 1].sum() == 0.0

    def test_caches_invalidated_by_mutation(self, simple):
        before = simple.skill_vocabulary()
        simple.add_skill(3, "new-skill")
        after = simple.skill_vocabulary()
        assert "new-skill" in after
        assert "new-skill" not in before


class TestCopyAndValidate:
    def test_copy_is_deep(self, simple):
        clone = simple.copy()
        clone.add_edge(0, 3)
        clone.add_skill(0, "q")
        assert not simple.has_edge(0, 3)
        assert not simple.has_skill(0, "q")
        assert simple.n_edges == 2

    def test_copy_preserves_content(self, simple):
        clone = simple.copy()
        assert sorted(clone.edges()) == sorted(simple.edges())
        for p in simple.people():
            assert clone.skills(p) == simple.skills(p)
            assert clone.name(p) == simple.name(p)

    def test_validate_ok(self, simple):
        simple.validate()

    def test_validate_detects_asymmetry(self, simple):
        simple._adj[0].add(2)  # corrupt deliberately
        with pytest.raises(ValueError, match="asymmetric"):
            simple.validate()

    def test_find_person(self, simple):
        assert simple.find_person("c") == 2
        with pytest.raises(KeyError):
            simple.find_person("nobody")

    def test_version_increments(self, simple):
        v0 = simple.version
        simple.add_skill(0, "q")
        assert simple.version > v0

    def test_repr_mentions_counts(self, simple):
        assert "n_people=4" in repr(simple)


class TestCompactMode:
    """CSR-compact networks answer every read identically to set mode."""

    def test_compact_preserves_reads(self, simple):
        reference = simple.copy()
        compact = simple.compact()
        assert compact is simple and compact.is_compact
        assert compact.state_digest() == reference.state_digest()
        assert compact.n_people == reference.n_people
        assert compact.n_edges == reference.n_edges
        for p in reference.people():
            assert compact.skills(p) == reference.skills(p)
            assert compact.neighbors(p) == reference.neighbors(p)
            assert compact.degree(p) == reference.degree(p)
            assert compact.neighborhood(p, 2) == reference.neighborhood(p, 2)
            assert compact.neighborhood_skills(
                p, 1
            ) == reference.neighborhood_skills(p, 1)
        assert sorted(compact.edges()) == sorted(reference.edges())
        assert compact.skill_universe() == reference.skill_universe()
        assert compact.has_edge(0, 1) and not compact.has_edge(0, 2)
        assert compact.has_skill(0, "x") and not compact.has_skill(1, "x")
        assert compact.people_with_skill("y") == {0, 1}
        np.testing.assert_array_equal(
            compact.match_counts(["x", "y"]),
            reference.match_counts(["x", "y"]),
        )

    def test_compact_thaws_on_mutation(self, simple):
        simple.compact()
        version = simple.version
        assert simple.add_edge(0, 3)
        assert not simple.is_compact
        assert simple.version > version
        assert simple.has_edge(0, 3)
        assert simple.n_edges == 3

    def test_from_csr_round_trip(self, simple):
        reference = simple.copy()
        compact = simple.compact()
        rebuilt = CollaborationNetwork.from_csr(
            [compact.name(p) for p in compact.people()],
            compact._adj_indptr,
            compact._adj_indices,
            compact._skill_indptr,
            compact._skill_ids,
            compact._skill_vocab,
        )
        assert rebuilt.is_compact
        assert rebuilt.state_digest() == reference.state_digest()

    def test_from_csr_rejects_misaligned(self):
        with pytest.raises(ValueError):
            CollaborationNetwork.from_csr(
                ["a", "b"],
                np.array([0, 1]),  # wrong indptr length
                np.array([1], dtype=np.int32),
                np.zeros(3, dtype=np.int64),
                np.zeros(0, dtype=np.int32),
                (),
            )

    def test_derived_matrices_match(self, simple):
        reference = simple.copy()
        compact = simple.compact()
        np.testing.assert_array_equal(
            compact.adjacency_csr().toarray(),
            reference.adjacency_csr().toarray(),
        )
