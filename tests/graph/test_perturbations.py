"""Unit and property tests for the perturbation model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import toy_network
from repro.graph.perturbations import (
    AddEdge,
    AddQueryTerm,
    AddSkill,
    RemoveEdge,
    RemoveQueryTerm,
    RemoveSkill,
    apply_perturbations,
    as_query,
    touches_network,
)


@pytest.fixture
def net():
    return toy_network(n_people=8, seed=1)


class TestSkillPerturbations:
    def test_add_skill_applies(self, net):
        assert not net.has_skill(0, "quantum")
        out, q = apply_perturbations(net, ["x"], [AddSkill(0, "quantum")])
        assert out.has_skill(0, "quantum")
        assert not net.has_skill(0, "quantum")  # original untouched
        assert q == {"x"}

    def test_remove_skill_applies(self, net):
        skill = sorted(net.skills(0))[0]
        out, _ = apply_perturbations(net, [], [RemoveSkill(0, skill)])
        assert not out.has_skill(0, skill)

    def test_add_existing_skill_is_noop_error(self, net):
        skill = sorted(net.skills(0))[0]
        with pytest.raises(ValueError, match="no-op"):
            apply_perturbations(net, [], [AddSkill(0, skill)])

    def test_remove_missing_skill_is_noop_error(self, net):
        with pytest.raises(ValueError, match="no-op"):
            apply_perturbations(net, [], [RemoveSkill(0, "quantum")])

    def test_inverse_roundtrip(self, net):
        p = AddSkill(0, "quantum")
        assert p.inverse() == RemoveSkill(0, "quantum")
        assert p.inverse().inverse() == p


class TestEdgePerturbations:
    def test_canonical_ordering(self):
        assert AddEdge(5, 2) == AddEdge(2, 5)
        assert RemoveEdge(5, 2).u == 2

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            AddEdge(3, 3)

    def test_add_edge_applies(self, net):
        u, v = 0, 5
        if net.has_edge(u, v):
            net.remove_edge(u, v)
        out, _ = apply_perturbations(net, [], [AddEdge(u, v)])
        assert out.has_edge(u, v)
        assert not net.has_edge(u, v)

    def test_remove_edge_applies(self, net):
        u, v = sorted(net.edges())[0]
        out, _ = apply_perturbations(net, [], [RemoveEdge(u, v)])
        assert not out.has_edge(u, v)

    def test_touches_network(self):
        assert touches_network(AddEdge(0, 1))
        assert touches_network(RemoveSkill(0, "x"))
        assert not touches_network(AddQueryTerm("x"))


class TestQueryPerturbations:
    def test_add_query_term(self, net):
        out, q = apply_perturbations(net, ["a"], [AddQueryTerm("b")])
        assert q == {"a", "b"}
        assert out is net  # no network copy for query-only edits

    def test_remove_query_term(self, net):
        _, q = apply_perturbations(net, ["a", "b"], [RemoveQueryTerm("a")])
        assert q == {"b"}

    def test_add_existing_term_is_noop_error(self, net):
        with pytest.raises(ValueError, match="no-op"):
            apply_perturbations(net, ["a"], [AddQueryTerm("a")])

    def test_describe_mentions_term(self, net):
        assert "'b'" in AddQueryTerm("b").describe(net)


class TestCompositeApplication:
    def test_multiple_perturbations_compose(self, net):
        skill = sorted(net.skills(2))[0]
        out, q = apply_perturbations(
            net,
            ["a"],
            [AddSkill(0, "quantum"), RemoveSkill(2, skill), AddQueryTerm("b")],
        )
        assert out.has_skill(0, "quantum")
        assert not out.has_skill(2, skill)
        assert q == {"a", "b"}

    def test_network_copied_once_queries_shared(self, net):
        out, _ = apply_perturbations(net, [], [AddSkill(0, "q1"), AddSkill(1, "q2")])
        assert out is not net
        out.validate()

    @given(
        person=st.integers(min_value=0, max_value=7),
        skill=st.sampled_from(["alpha", "beta", "gamma"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_add_then_remove_restores_skills(self, person, skill):
        network = toy_network(n_people=8, seed=1)
        if network.has_skill(person, skill):
            return  # AddSkill would be a no-op
        before = network.skills(person)
        out, _ = apply_perturbations(network, [], [AddSkill(person, skill)])
        out2, _ = apply_perturbations(out, [], [RemoveSkill(person, skill)])
        assert out2.skills(person) == before

    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_edge_toggle_roundtrip(self, seed):
        network = toy_network(n_people=8, seed=seed % 5)
        edges = sorted(network.edges())
        u, v = edges[seed % len(edges)]
        out, _ = apply_perturbations(network, [], [RemoveEdge(u, v)])
        out2, _ = apply_perturbations(out, [], [AddEdge(u, v)])
        assert sorted(out2.edges()) == edges
