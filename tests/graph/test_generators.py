"""Tests for the synthetic network generator."""

import numpy as np
import pytest

from repro.graph import NetworkRecipe, synthesize_network
from repro.graph.generators import make_person_names, make_skill_vocabulary


@pytest.fixture(scope="module")
def result():
    recipe = NetworkRecipe(n_people=250, n_edges=1200, n_skills=180, seed=3)
    return synthesize_network(recipe)


class TestRecipeValidation:
    def test_too_few_people(self):
        with pytest.raises(ValueError):
            NetworkRecipe(n_people=1, n_edges=0, n_skills=5)

    def test_too_many_edges(self):
        with pytest.raises(ValueError):
            NetworkRecipe(n_people=4, n_edges=100, n_skills=5)

    def test_bad_intra_fraction(self):
        with pytest.raises(ValueError):
            NetworkRecipe(
                n_people=10, n_edges=5, n_skills=5, intra_community_fraction=1.5
            )


class TestGeneratedShape:
    def test_counts_match_recipe(self, result):
        net = result.network
        assert net.n_people == 250
        assert net.n_edges == 1200
        net.validate()

    def test_skills_attached_from_community_pools(self, result):
        net = result.network
        counts = [len(net.skills(p)) for p in net.people()]
        assert np.mean(counts) > 5
        universe = net.skill_universe()
        assert universe <= set(result.skill_vocabulary)

    def test_every_person_has_communities(self, result):
        assert len(result.person_communities) == 250
        assert all(len(c) >= 1 for c in result.person_communities)

    def test_degree_distribution_heavy_tailed(self, result):
        degrees = sorted(
            (result.network.degree(p) for p in result.network.people()),
            reverse=True,
        )
        # The busiest collaborator should dwarf the median — power-law-ish.
        assert degrees[0] > 4 * degrees[len(degrees) // 2]

    def test_community_structure_visible(self, result):
        """Edges should fall inside shared communities far more often than
        the ~1/n_communities a random graph would give."""
        net = result.network
        comms = result.person_communities
        intra = sum(
            1 for u, v in net.edges() if set(comms[u]) & set(comms[v])
        )
        assert intra / net.n_edges > 0.5


class TestDeterminism:
    def test_same_seed_same_network(self):
        recipe = NetworkRecipe(n_people=60, n_edges=150, n_skills=40, seed=9)
        a = synthesize_network(recipe)
        b = synthesize_network(recipe)
        assert sorted(a.network.edges()) == sorted(b.network.edges())
        for p in a.network.people():
            assert a.network.skills(p) == b.network.skills(p)

    def test_different_seed_different_network(self):
        base = dict(n_people=60, n_edges=150, n_skills=40)
        a = synthesize_network(NetworkRecipe(seed=1, **base))
        b = synthesize_network(NetworkRecipe(seed=2, **base))
        assert sorted(a.network.edges()) != sorted(b.network.edges())


class TestHelpers:
    def test_names_mostly_unique(self):
        rng = np.random.default_rng(0)
        names = make_person_names(500, rng)
        assert len(names) == 500
        assert len(set(names)) == 500  # suffixes de-duplicate collisions

    def test_vocabulary_exact_size_and_unique(self):
        rng = np.random.default_rng(0)
        for size in (10, 150, 2000, 4000):
            vocab = make_skill_vocabulary(size, rng)
            assert len(vocab) == size
            assert len(set(vocab)) == size

    def test_attach_skills_false_leaves_nodes_bare(self):
        recipe = NetworkRecipe(n_people=30, n_edges=60, n_skills=20, seed=4)
        result = synthesize_network(recipe, attach_skills=False)
        assert result.network.skill_universe() == frozenset()


class TestStreamingParity:
    """The streaming CSR builder is a drop-in for the eager path: same
    seed, bit-identical network, no per-person Python sets ever built."""

    @pytest.mark.parametrize("seed", (0, 7))
    def test_streaming_equals_eager(self, seed):
        from repro.graph.generators import synthesize_network_streaming

        recipe = NetworkRecipe(
            n_people=140, n_edges=420, n_skills=60, seed=seed
        )
        eager = synthesize_network(recipe)
        streamed = synthesize_network_streaming(recipe)
        assert streamed.network.is_compact
        assert not eager.network.is_compact
        assert (
            streamed.network.state_digest() == eager.network.state_digest()
        )
        assert streamed.skill_vocabulary == eager.skill_vocabulary
        assert streamed.person_communities == eager.person_communities
        assert streamed.community_skill_pools == eager.community_skill_pools

    def test_streaming_without_skills(self):
        from repro.graph.generators import synthesize_network_streaming

        recipe = NetworkRecipe(n_people=60, n_edges=150, n_skills=20, seed=5)
        eager = synthesize_network(recipe, attach_skills=False)
        streamed = synthesize_network_streaming(recipe, attach_skills=False)
        assert streamed.network.is_compact
        assert streamed.network.total_skill_assignments() == 0
        assert (
            streamed.network.state_digest() == eager.network.state_digest()
        )

    def test_streamed_network_is_probe_ready(self):
        """A compact streamed network answers the query-side reads the
        rankers use without thawing back into set mode."""
        from repro.graph.generators import synthesize_network_streaming

        recipe = NetworkRecipe(n_people=80, n_edges=200, n_skills=30, seed=2)
        net = synthesize_network_streaming(recipe).network
        skills = sorted(net.skill_universe())[:3]
        counts = net.match_counts(skills)
        assert counts.shape == (80,)
        some = next(iter(net.people()))
        net.neighborhood(some, 2)
        assert net.is_compact  # none of the reads above thawed it
