"""Tests for network statistics."""

from repro.graph import CollaborationNetwork, compute_stats
from repro.graph.stats import degree_histogram, skill_frequency


def _triangle_plus_isolate():
    net = CollaborationNetwork()
    for i, skills in enumerate([{"a", "b"}, {"a"}, {"c"}, set()]):
        net.add_person(f"p{i}", skills)
    net.add_edge(0, 1)
    net.add_edge(1, 2)
    net.add_edge(0, 2)
    return net


class TestComputeStats:
    def test_basic_counts(self):
        stats = compute_stats(_triangle_plus_isolate())
        assert stats.n_nodes == 4
        assert stats.n_edges == 3
        assert stats.n_skills == 3
        assert stats.mean_skills_per_person == 1.0
        assert stats.max_degree == 2
        assert stats.n_isolated == 1

    def test_components(self):
        stats = compute_stats(_triangle_plus_isolate())
        assert stats.n_components == 2
        assert stats.largest_component == 3

    def test_table_row_contains_counts(self):
        row = compute_stats(_triangle_plus_isolate()).as_table_row("Tiny")
        assert "Tiny" in row and "4" in row and "3" in row

    def test_empty_network(self):
        stats = compute_stats(CollaborationNetwork())
        assert stats.n_nodes == 0
        assert stats.n_components == 0


class TestHistograms:
    def test_degree_histogram(self):
        hist = degree_histogram(_triangle_plus_isolate())
        assert hist == {2: 3, 0: 1}

    def test_skill_frequency(self):
        freq = skill_frequency(_triangle_plus_isolate())
        assert freq == {"a": 2, "b": 1, "c": 1}
