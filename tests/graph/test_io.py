"""Serialization round-trip tests."""

import json

import pytest

from repro.datasets import toy_network
from repro.graph import (
    load_network_json,
    network_from_dict,
    network_to_dict,
    save_network_json,
)


class TestRoundTrip:
    def test_dict_roundtrip(self):
        net = toy_network(n_people=10, seed=2)
        clone = network_from_dict(network_to_dict(net))
        assert clone.n_people == net.n_people
        assert sorted(clone.edges()) == sorted(net.edges())
        for p in net.people():
            assert clone.skills(p) == net.skills(p)
            assert clone.name(p) == net.name(p)

    def test_file_roundtrip(self, tmp_path):
        net = toy_network(n_people=6, seed=3)
        path = tmp_path / "nets" / "toy.json"
        save_network_json(net, path)
        clone = load_network_json(path)
        assert sorted(clone.edges()) == sorted(net.edges())

    def test_json_is_stable(self, tmp_path):
        net = toy_network(n_people=6, seed=3)
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_network_json(net, a)
        save_network_json(net, b)
        assert a.read_text() == b.read_text()


class TestValidation:
    def test_bad_format_version(self):
        with pytest.raises(ValueError, match="format version"):
            network_from_dict({"format_version": 99, "people": [], "edges": []})

    def test_non_contiguous_ids(self):
        payload = {
            "format_version": 1,
            "people": [{"id": 1, "name": "a", "skills": []}],
            "edges": [],
        }
        with pytest.raises(ValueError, match="contiguous"):
            network_from_dict(payload)

    def test_loaded_network_is_validated(self, tmp_path):
        payload = {
            "format_version": 1,
            "people": [
                {"id": 0, "name": "a", "skills": []},
                {"id": 1, "name": "b", "skills": []},
            ],
            "edges": [[0, 1], [0, 1]],  # duplicate edge is tolerated (set)
        }
        net = network_from_dict(payload)
        assert net.n_edges == 1
