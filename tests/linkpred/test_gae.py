"""Graph auto-encoder tests: learning signal and interface contract."""

import numpy as np
import pytest

from repro.graph import CollaborationNetwork, NetworkRecipe, synthesize_network
from repro.linkpred import GaeConfig, GraphAutoencoder, evaluate_predictor, split_edges, train_gae


@pytest.fixture(scope="module")
def community_net():
    """Two dense communities with sparse cross links: GAE should learn to
    score intra-community pairs above cross-community pairs."""
    rng = np.random.default_rng(7)
    net = CollaborationNetwork()
    for i in range(40):
        net.add_person(f"p{i}", {f"s{i % 8}"})
    for block in (range(0, 20), range(20, 40)):
        block = list(block)
        for i in block:
            for j in block:
                if i < j and rng.random() < 0.3:
                    net.add_edge(i, j)
    net.add_edge(0, 20)
    net.add_edge(5, 30)
    return net


class TestTraining:
    def test_auc_beats_chance(self, community_net):
        split = split_edges(community_net, test_fraction=0.15, seed=0)
        gae = train_gae(split.train_network, GaeConfig(epochs=80, seed=0))
        auc, ap = evaluate_predictor(gae, split)
        assert auc > 0.6, f"GAE AUC {auc:.2f} barely above chance"

    def test_intra_community_scores_higher(self, community_net):
        gae = train_gae(community_net, GaeConfig(epochs=80, seed=1))
        intra, cross = [], []
        for u in range(0, 10):
            for v in range(10, 20):
                if not community_net.has_edge(u, v):
                    intra.append(gae.score(u, v))
            for v in range(20, 30):
                if not community_net.has_edge(u, v):
                    cross.append(gae.score(u, v))
        assert np.mean(intra) > np.mean(cross)

    def test_deterministic(self, community_net):
        a = train_gae(community_net, GaeConfig(epochs=20, seed=3))
        b = train_gae(community_net, GaeConfig(epochs=20, seed=3))
        np.testing.assert_allclose(a.embeddings(), b.embeddings())


class TestInterface:
    def test_embeddings_require_fit(self):
        gae = GraphAutoencoder(4, GaeConfig())
        with pytest.raises(RuntimeError):
            gae.embeddings()

    def test_scores_are_probabilities(self, community_net):
        gae = train_gae(community_net, GaeConfig(epochs=20, seed=4))
        for u, v in [(0, 1), (0, 39), (5, 25)]:
            assert 0.0 <= gae.score(u, v) <= 1.0

    def test_top_candidates_excludes_existing(self, community_net):
        gae = train_gae(community_net, GaeConfig(epochs=20, seed=5))
        existing = community_net.neighbors(0)
        for (u, v), _ in gae.top_candidates(0, range(40), topn=5):
            other = v if u == 0 else u
            assert other not in existing

    def test_edgeless_network_still_embeds(self):
        net = CollaborationNetwork()
        for i in range(5):
            net.add_person(f"p{i}", {"s"})
        gae = train_gae(net, GaeConfig(epochs=5, seed=6))
        assert gae.embeddings().shape[0] == 5
