"""Link-prediction heuristic tests on a hand-built graph."""

import math

import pytest

from repro.graph import CollaborationNetwork
from repro.linkpred import (
    HeuristicLinkPredictor,
    adamic_adar,
    common_neighbors,
    jaccard_coefficient,
    preferential_attachment,
)


@pytest.fixture
def net():
    """0 and 1 share neighbors {2, 3}; 4 hangs off 2; 5 isolated."""
    net = CollaborationNetwork()
    for i in range(6):
        net.add_person(f"p{i}")
    for u, v in [(0, 2), (0, 3), (1, 2), (1, 3), (2, 4)]:
        net.add_edge(u, v)
    return net


class TestScores:
    def test_common_neighbors(self, net):
        assert common_neighbors(net, 0, 1) == 2.0
        assert common_neighbors(net, 0, 5) == 0.0

    def test_jaccard(self, net):
        assert jaccard_coefficient(net, 0, 1) == pytest.approx(1.0)  # identical nbrs
        # N(0)={2,3}, N(4)={2}: intersection {2}, union {2,3}.
        assert jaccard_coefficient(net, 0, 4) == pytest.approx(1 / 2)
        assert jaccard_coefficient(net, 5, 0) == 0.0

    def test_adamic_adar(self, net):
        # Common neighbors of (0,1): node 2 (deg 3), node 3 (deg 2).
        expected = 1 / math.log(3) + 1 / math.log(2)
        assert adamic_adar(net, 0, 1) == pytest.approx(expected)

    def test_adamic_adar_ignores_degree_one_brokers(self):
        net = CollaborationNetwork()
        for i in range(3):
            net.add_person(f"p{i}")
        net.add_edge(0, 2)
        net.add_edge(1, 2)
        # Broker 2 has degree 2 -> contributes; if it had degree 1 it would
        # be skipped (log 1 = 0 guard).
        assert adamic_adar(net, 0, 1) == pytest.approx(1 / math.log(2))

    def test_preferential_attachment(self, net):
        assert preferential_attachment(net, 0, 2) == 6.0


class TestPredictorInterface:
    def test_unknown_heuristic_rejected(self):
        with pytest.raises(ValueError, match="unknown heuristic"):
            HeuristicLinkPredictor("nope")

    def test_score_requires_fit(self):
        with pytest.raises(RuntimeError):
            HeuristicLinkPredictor("jaccard").score(0, 1)

    def test_top_candidates_excludes_existing_edges(self, net):
        predictor = HeuristicLinkPredictor("common_neighbors").fit(net)
        candidates = predictor.top_candidates(0, range(6), topn=10)
        pairs = [pair for pair, _ in candidates]
        assert (0, 2) not in pairs and (0, 3) not in pairs
        assert pairs[0] == (0, 1)  # two common neighbors: strongest

    def test_score_pairs(self, net):
        predictor = HeuristicLinkPredictor("jaccard").fit(net)
        scores = predictor.score_pairs([(0, 1), (0, 5)])
        assert scores[0] > scores[1]
