"""AUC / AP metric tests against hand-computed values."""

import pytest

from repro.datasets import toy_network
from repro.linkpred import (
    HeuristicLinkPredictor,
    auc_score,
    average_precision,
    evaluate_predictor,
    split_edges,
)


class TestAuc:
    def test_perfect_separation(self):
        assert auc_score([0.9, 0.8], [0.1, 0.2]) == 1.0

    def test_inverted(self):
        assert auc_score([0.1], [0.9]) == 0.0

    def test_ties_count_half(self):
        assert auc_score([0.5], [0.5]) == 0.5

    def test_mixed_hand_computed(self):
        # pairs: (.9>.5)=1, (.9>.7)=1, (.3>.5)=0, (.3>.7)=0 -> 2/4
        assert auc_score([0.9, 0.3], [0.5, 0.7]) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            auc_score([], [0.1])


class TestAveragePrecision:
    def test_perfect(self):
        assert average_precision([0.9, 0.8], [0.1]) == 1.0

    def test_hand_computed(self):
        # Ranking: pos(.9), neg(.8), pos(.7) -> AP = (1/1 + 2/3)/2
        assert average_precision([0.9, 0.7], [0.8]) == pytest.approx((1 + 2 / 3) / 2)

    def test_no_positives_raises(self):
        with pytest.raises(ValueError):
            average_precision([], [0.5])


class TestSplitEdges:
    def test_split_counts(self):
        net = toy_network(n_people=12, seed=0)
        split = split_edges(net, test_fraction=0.25, seed=1)
        held = len(split.test_positives)
        assert held == max(1, round(net.n_edges * 0.25))
        assert split.train_network.n_edges == net.n_edges - held
        assert len(split.test_negatives) == held

    def test_negatives_are_non_edges(self):
        net = toy_network(n_people=12, seed=0)
        split = split_edges(net, test_fraction=0.2, seed=2)
        for u, v in split.test_negatives:
            assert not net.has_edge(u, v)

    def test_invalid_fraction(self):
        net = toy_network(n_people=6, seed=0)
        with pytest.raises(ValueError):
            split_edges(net, test_fraction=1.5)

    def test_evaluate_predictor_returns_auc_ap(self):
        net = toy_network(n_people=12, seed=3)
        split = split_edges(net, test_fraction=0.2, seed=3)
        predictor = HeuristicLinkPredictor("common_neighbors").fit(
            split.train_network
        )
        auc, ap = evaluate_predictor(predictor, split)
        assert 0.0 <= auc <= 1.0
        assert 0.0 <= ap <= 1.0
