"""Optimizer convergence tests on analytic objectives."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Parameter, Tensor


def quadratic_loss(p: Parameter) -> Tensor:
    """(p - 3)² summed; minimum at p = 3."""
    diff = p - Tensor(np.full_like(p.data, 3.0))
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, np.full(4, 3.0), atol=1e-4)

    def test_momentum_accelerates(self):
        losses = {}
        for momentum in (0.0, 0.9):
            p = Parameter(np.zeros(4))
            opt = SGD([p], lr=0.02, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                loss = quadratic_loss(p)
                loss.backward()
                opt.step()
            losses[momentum] = quadratic_loss(p).item()
        assert losses[0.9] < losses[0.0]

    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_skips_parameters_without_grad(self):
        p = Parameter(np.zeros(2))
        q = Parameter(np.ones(2))
        opt = SGD([p, q], lr=0.1)
        quadratic_loss(p).backward()
        opt.step()  # q has no grad; must not crash or move
        np.testing.assert_allclose(q.data, np.ones(2))


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, np.full(4, 3.0), atol=1e-3)

    def test_handles_ill_conditioned_scales(self):
        """Adam's per-coordinate scaling should handle very different
        curvatures that plain SGD struggles with at a fixed lr."""
        scales = np.array([1.0, 100.0])
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            diff = p - Tensor(np.array([1.0, 1.0]))
            (diff * diff * scales).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, [1.0, 1.0], atol=1e-2)

    def test_weight_decay_shrinks_solution(self):
        p_plain = Parameter(np.zeros(1))
        p_decayed = Parameter(np.zeros(1))
        for param, wd in ((p_plain, 0.0), (p_decayed, 1.0)):
            opt = Adam([param], lr=0.1, weight_decay=wd)
            for _ in range(200):
                opt.zero_grad()
                quadratic_loss(param).backward()
                opt.step()
        assert abs(p_decayed.data[0]) < abs(p_plain.data[0])
