"""Loss function correctness tests."""

import numpy as np
import pytest

from repro.nn import Tensor, bce_with_logits, margin_ranking_loss, mse_loss


class TestMse:
    def test_zero_at_target(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert mse_loss(pred, np.array([1.0, 2.0])).item() == 0.0

    def test_matches_numpy(self):
        pred = Tensor(np.array([1.0, 3.0]))
        target = np.array([0.0, 0.0])
        assert mse_loss(pred, target).item() == pytest.approx(5.0)

    def test_gradient(self):
        pred = Tensor(np.array([2.0]), requires_grad=True)
        mse_loss(pred, np.array([0.0])).backward()
        np.testing.assert_allclose(pred.grad, [4.0])


class TestBceWithLogits:
    def test_matches_reference(self):
        logits = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
        target = np.array([0.0, 1.0, 1.0, 0.0, 1.0])
        expected = np.mean(
            np.maximum(logits, 0) - logits * target + np.log1p(np.exp(-np.abs(logits)))
        )
        loss = bce_with_logits(Tensor(logits), target).item()
        assert loss == pytest.approx(expected, abs=1e-9)

    def test_stable_at_extreme_logits(self):
        logits = np.array([1000.0, -1000.0])
        target = np.array([1.0, 0.0])
        loss = bce_with_logits(Tensor(logits), target).item()
        assert np.isfinite(loss)
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_gradient_sign(self):
        """Gradient pushes logits toward the label (evaluated off the
        ReLU kink at exactly 0, where the subgradient convention differs)."""
        logits = Tensor(np.array([0.5, -0.5]), requires_grad=True)
        bce_with_logits(logits, np.array([1.0, 0.0])).backward()
        assert logits.grad[0] < 0  # increase logit for positive label
        assert logits.grad[1] > 0

    def test_gradient_matches_sigmoid_minus_label(self):
        """d/dx mean BCE = (σ(x) − y)/n."""
        x0 = np.array([0.7, -1.3])
        y = np.array([1.0, 0.0])
        logits = Tensor(x0.copy(), requires_grad=True)
        bce_with_logits(logits, y).backward()
        expected = (1 / (1 + np.exp(-x0)) - y) / len(x0)
        np.testing.assert_allclose(logits.grad, expected, atol=1e-9)


class TestMarginRanking:
    def test_zero_when_margin_satisfied(self):
        pos = Tensor(np.array([2.0, 3.0]))
        neg = Tensor(np.array([0.0, 1.0]))
        assert margin_ranking_loss(pos, neg, margin=1.0).item() == 0.0

    def test_penalizes_violations(self):
        pos = Tensor(np.array([0.0]))
        neg = Tensor(np.array([0.0]))
        assert margin_ranking_loss(pos, neg, margin=0.5).item() == pytest.approx(0.5)

    def test_gradient_separates_pair(self):
        pos = Tensor(np.array([0.0]), requires_grad=True)
        neg = Tensor(np.array([0.0]), requires_grad=True)
        margin_ranking_loss(pos, neg, margin=1.0).backward()
        assert pos.grad[0] < 0  # loss decreases as pos increases
        assert neg.grad[0] > 0
