"""Gradient checks for the autograd engine (central finite differences)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, sparse_matmul, stack_rows

EPS = 1e-6


def finite_diff_grad(fn, x: np.ndarray) -> np.ndarray:
    """Numerical gradient of scalar fn at x."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + EPS
        up = fn(x)
        flat[i] = orig - EPS
        down = fn(x)
        flat[i] = orig
        gflat[i] = (up - down) / (2 * EPS)
    return grad


def check_gradient(build, shape, seed=0, atol=1e-5):
    """Compare autograd gradient with finite differences for `build`,
    a function Tensor -> scalar Tensor."""
    rng = np.random.default_rng(seed)
    x0 = rng.normal(size=shape)
    t = Tensor(x0.copy(), requires_grad=True)
    out = build(t)
    out.backward()
    numeric = finite_diff_grad(lambda arr: build(Tensor(arr)).item(), x0)
    np.testing.assert_allclose(t.grad, numeric, atol=atol)


class TestElementwiseOps:
    def test_add(self):
        check_gradient(lambda t: (t + 2.0).sum(), (3, 4))

    def test_mul(self):
        check_gradient(lambda t: (t * t).sum(), (3, 4))

    def test_sub_and_neg(self):
        check_gradient(lambda t: (1.0 - t - t).sum(), (2, 5))

    def test_div(self):
        check_gradient(lambda t: (t / 3.0 + 2.0 / (t + 10.0)).sum(), (4,))

    def test_pow(self):
        check_gradient(lambda t: ((t + 5.0) ** 3).sum(), (3,))

    def test_exp_log(self):
        check_gradient(lambda t: ((t.exp() + 1.0).log()).sum(), (3, 2))

    def test_sigmoid(self):
        check_gradient(lambda t: t.sigmoid().sum(), (4, 2))

    def test_tanh(self):
        check_gradient(lambda t: t.tanh().sum(), (5,))

    def test_relu_away_from_kink(self):
        rng = np.random.default_rng(1)
        x0 = rng.normal(size=(4, 3))
        x0[np.abs(x0) < 0.1] = 0.5  # keep clear of the kink
        t = Tensor(x0.copy(), requires_grad=True)
        t.relu().sum().backward()
        numeric = finite_diff_grad(lambda a: Tensor(a).relu().sum().item(), x0)
        np.testing.assert_allclose(t.grad, numeric, atol=1e-5)

    def test_clip_min(self):
        check_gradient(lambda t: (t + 5.0).clip_min(0.1).sum(), (4,))


class TestMatmulAndShaping:
    def test_matmul_left(self):
        rng = np.random.default_rng(2)
        w = rng.normal(size=(4, 2))
        check_gradient(lambda t: (t @ Tensor(w)).sum(), (3, 4))

    def test_matmul_right(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: (Tensor(x) @ t).sum(), (4, 2))

    def test_matmul_requires_2d(self):
        with pytest.raises(ValueError):
            Tensor(np.ones(3)) @ Tensor(np.ones(3))

    def test_transpose(self):
        check_gradient(lambda t: (t.T @ t).sum(), (3, 4))

    def test_reshape(self):
        check_gradient(lambda t: (t.reshape(6) * np.arange(6.0)).sum(), (2, 3))

    def test_rows_gather(self):
        idx = np.array([0, 2, 2])
        check_gradient(lambda t: t.rows(idx).sum(), (4, 3))

    def test_rows_scatter_accumulates(self):
        t = Tensor(np.ones((3, 2)), requires_grad=True)
        t.rows(np.array([1, 1, 1])).sum().backward()
        assert t.grad[1].tolist() == [3.0, 3.0]
        assert t.grad[0].tolist() == [0.0, 0.0]


class TestReductions:
    def test_sum_all(self):
        check_gradient(lambda t: t.sum(), (3, 4))

    def test_sum_axis0(self):
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), (3, 4))

    def test_sum_axis1_keepdims(self):
        check_gradient(lambda t: (t.sum(axis=1, keepdims=True) * t).sum(), (3, 4))

    def test_mean(self):
        check_gradient(lambda t: (t.mean(axis=1) ** 2).sum(), (2, 6))


class TestBroadcasting:
    def test_add_row_vector(self):
        rng = np.random.default_rng(4)
        b = rng.normal(size=(4,))
        check_gradient(lambda t: ((t + Tensor(b)) ** 2).sum(), (3, 4))

    def test_broadcast_grad_shape(self):
        bias = Tensor(np.zeros(4), requires_grad=True)
        x = Tensor(np.ones((5, 4)))
        ((x + bias) * 2.0).sum().backward()
        assert bias.grad.shape == (4,)
        np.testing.assert_allclose(bias.grad, np.full(4, 10.0))

    def test_scalar_mul_broadcast(self):
        s = Tensor(np.array(2.0), requires_grad=True)
        x = Tensor(np.ones((3, 3)))
        (x * s).sum().backward()
        assert s.grad.shape == ()
        assert float(s.grad) == 9.0


class TestGraphStructure:
    def test_diamond_reuse(self):
        """A node consumed twice must accumulate both gradient paths."""
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * 2.0
        z = (y * y) + y  # dz/dx = 2*(2x)*2 + 2 = 8x + 2 = 26
        z.sum().backward()
        np.testing.assert_allclose(x.grad, [26.0])

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError, match="scalar"):
            (x * 2.0).backward()

    def test_no_grad_tracking_for_constants(self):
        a = Tensor(np.ones(3))
        b = a * 2.0 + 1.0
        assert b._parents == ()  # constant graph is not recorded

    def test_grad_accumulates_across_backwards(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_zero_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_detach_breaks_graph(self):
        x = Tensor(np.ones(2), requires_grad=True)
        d = x.detach()
        assert d._parents == () and not d.requires_grad


class TestSparseMatmul:
    def test_value_matches_dense(self):
        rng = np.random.default_rng(5)
        dense = (rng.random((4, 4)) < 0.5).astype(float)
        a = sp.csr_matrix(dense)
        x = Tensor(rng.normal(size=(4, 3)))
        np.testing.assert_allclose(sparse_matmul(a, x).numpy(), dense @ x.numpy())

    def test_gradient(self):
        rng = np.random.default_rng(6)
        dense = (rng.random((4, 4)) < 0.5).astype(float)
        a = sp.csr_matrix(dense)
        check_gradient(lambda t: (sparse_matmul(a, t) ** 2).sum(), (4, 3))


class TestStackRows:
    def test_stack_and_grad(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        out = stack_rows([a, b])
        (out * np.array([[1.0, 1.0], [2.0, 2.0]])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [2.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stack_rows([])


class TestCompositeNetworks:
    def test_two_layer_mlp_gradcheck(self):
        rng = np.random.default_rng(7)
        w1 = rng.normal(size=(5, 4))
        w2 = rng.normal(size=(4, 1))

        def forward(t):
            h = (t @ Tensor(w1)).tanh()
            return (h @ Tensor(w2)).sum()

        check_gradient(forward, (3, 5))

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_linearity_of_gradient(self, seed):
        """Property: for f(x) = c·x (linear), grad == c exactly."""
        rng = np.random.default_rng(seed)
        c = rng.normal(size=(4,))
        x = Tensor(rng.normal(size=(4,)), requires_grad=True)
        (x * c).sum().backward()
        np.testing.assert_allclose(x.grad, c, atol=1e-12)
