"""Tests for layers and the Module parameter registry."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import GCNConv, Linear, Module, Parameter, Tensor


class TestModuleRegistry:
    def test_linear_registers_weight_and_bias(self):
        layer = Linear(3, 2)
        params = layer.parameters()
        assert len(params) == 2
        assert {p.data.shape for p in params} == {(3, 2), (2,)}

    def test_nested_modules_collected(self):
        class Net(Module):
            def __init__(self):
                self.a = Linear(3, 4)
                self.b = Linear(4, 1)
                self.extra = [Linear(2, 2)]
                self.table = {"c": Linear(1, 1)}

        params = Net().parameters()
        assert len(params) == 8

    def test_shared_parameter_collected_once(self):
        class Net(Module):
            def __init__(self):
                self.a = Linear(3, 3)
                self.alias = self.a

        assert len(Net().parameters()) == 2

    def test_zero_grad_clears(self):
        layer = Linear(2, 1)
        out = layer(Tensor(np.ones((4, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_n_parameters(self):
        assert Linear(3, 2).n_parameters() == 8


class TestLinear:
    def test_forward_matches_numpy(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(5, 3))
        out = layer(Tensor(x)).numpy()
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(out, expected)

    def test_no_bias(self):
        layer = Linear(3, 2, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients_flow_to_parameters(self):
        layer = Linear(3, 2, rng=np.random.default_rng(2))
        out = layer(Tensor(np.ones((4, 3)))).sum()
        out.backward()
        assert layer.weight.grad.shape == (3, 2)
        assert layer.bias.grad.shape == (2,)
        np.testing.assert_allclose(layer.bias.grad, [4.0, 4.0])


class TestGCNConv:
    def test_identity_adjacency_reduces_to_linear(self):
        conv = GCNConv(3, 2, rng=np.random.default_rng(3))
        x = np.random.default_rng(4).normal(size=(5, 3))
        eye = sp.identity(5, format="csr")
        out = conv(Tensor(x), eye).numpy()
        expected = x @ conv.weight.data + conv.bias.data
        np.testing.assert_allclose(out, expected)

    def test_propagation_mixes_neighbors(self):
        conv = GCNConv(1, 1, rng=np.random.default_rng(5), bias=False)
        conv.weight.data[:] = 1.0
        # Two nodes, symmetric full mixing.
        adj = sp.csr_matrix(np.array([[0.5, 0.5], [0.5, 0.5]]))
        x = np.array([[1.0], [3.0]])
        out = conv(Tensor(x), adj).numpy()
        np.testing.assert_allclose(out, [[2.0], [2.0]])

    def test_gradients_reach_weight(self):
        conv = GCNConv(3, 2, rng=np.random.default_rng(6))
        adj = sp.identity(4, format="csr")
        conv(Tensor(np.ones((4, 3))), adj).sum().backward()
        assert conv.weight.grad is not None
        assert conv.weight.grad.shape == (3, 2)
