"""Full-stack integration tests: the paper's core claims, end to end.

These run on the session-scoped trained stack (small DBLP-like dataset,
GCN ranker, PPMI embedding, GAE) and assert the *semantic* properties the
paper relies on, not just that code runs:

* factual explanations put real weight on query-matching skills,
* counterfactuals actually flip the decision when applied,
* pruned explanations are found faster than exhaustive ones,
* team membership explanations respect the membership bit.
"""

import numpy as np
import pytest

from repro.eval import random_queries
from repro.explain import (
    BeamConfig,
    CounterfactualExplainer,
    ExhaustiveConfig,
    ExhaustiveCounterfactualExplainer,
    FactualConfig,
    FactualExplainer,
    MembershipTarget,
    RelevanceTarget,
)
from repro.graph.perturbations import apply_perturbations


@pytest.fixture(scope="module")
def stack(small_dataset, small_gcn_ranker, small_embedding, small_gae, small_former):
    net = small_dataset.network
    target = RelevanceTarget(small_gcn_ranker, k=10)
    query = random_queries(net, 1, seed=11)[0]
    results = small_gcn_ranker.evaluate(query, net)
    return {
        "net": net,
        "target": target,
        "query": query,
        "results": results,
        "embedding": small_embedding,
        "gae": small_gae,
        "former": small_former,
    }


class TestFactualSemantics:
    def test_query_skill_attributions_dominate(self, stack):
        """Attributions on query-matching skill assignments must outweigh
        attributions on unrelated ones, on average."""
        net, target, query = stack["net"], stack["target"], stack["query"]
        expert = stack["results"].top_k(3)[0]
        explainer = FactualExplainer(
            target, FactualConfig(n_samples=128, max_samples=256)
        )
        fx = explainer.explain_skills(expert, query, net)
        matching = [
            abs(a.value) for a in fx.attributions if a.feature.skill in set(query)
        ]
        others = [
            abs(a.value)
            for a in fx.attributions
            if a.feature.skill not in set(query)
        ]
        assert matching, "expected query-skill features in the neighborhood"
        assert np.mean(matching) > (np.mean(others) if others else 0.0)

    def test_efficiency_axiom_on_real_model(self, stack):
        net, target, query = stack["net"], stack["target"], stack["query"]
        expert = stack["results"].top_k(3)[0]
        explainer = FactualExplainer(
            target, FactualConfig(n_samples=96, max_samples=128)
        )
        fx = explainer.explain_skills(expert, query, net)
        total = sum(a.value for a in fx.attributions)
        assert total == pytest.approx(fx.full_value - fx.base_value, abs=1e-6)


class TestCounterfactualsActuallyFlip:
    @pytest.fixture(scope="class")
    def explainer(self, small_embedding, small_gae):
        def build(target):
            return CounterfactualExplainer(
                target,
                small_embedding,
                small_gae,
                BeamConfig(beam_size=8, n_candidates=6, n_explanations=3),
            )

        return build

    def test_skill_removal_flips(self, stack, explainer):
        net, target, query = stack["net"], stack["target"], stack["query"]
        expert = stack["results"].top_k(10)[-1]  # boundary expert
        result = explainer(target).explain_skill_removal(expert, query, net)
        if not result.found:
            pytest.skip("no removal counterfactual within budget for this seed")
        for cf in result.counterfactuals:
            net2, q2 = apply_perturbations(net, query, cf.perturbations)
            assert target.decide(expert, q2, net2) is False

    def test_skill_addition_flips(self, stack, explainer):
        net, target, query = stack["net"], stack["target"], stack["query"]
        non_expert = int(stack["results"].order[12])
        result = explainer(target).explain_skill_addition(non_expert, query, net)
        assert result.found
        for cf in result.counterfactuals:
            net2, q2 = apply_perturbations(net, query, cf.perturbations)
            assert target.decide(non_expert, q2, net2) is True

    def test_query_augmentation_flips(self, stack, explainer):
        net, target, query = stack["net"], stack["target"], stack["query"]
        non_expert = int(stack["results"].order[12])
        result = explainer(target).explain_query_augmentation(
            non_expert, query, net
        )
        if not result.found:
            pytest.skip("no query counterfactual within budget for this seed")
        for cf in result.counterfactuals:
            net2, q2 = apply_perturbations(net, query, cf.perturbations)
            assert target.decide(non_expert, q2, net2) is True
            assert net2 is net  # query perturbations never touch the graph

    def test_link_addition_flips(self, stack, explainer):
        net, target, query = stack["net"], stack["target"], stack["query"]
        non_expert = int(stack["results"].order[11])
        result = explainer(target).explain_link_addition(non_expert, query, net)
        if not result.found:
            pytest.skip("no link counterfactual within budget for this seed")
        for cf in result.counterfactuals:
            net2, q2 = apply_perturbations(net, query, cf.perturbations)
            assert target.decide(non_expert, q2, net2) is True


class TestPruningSpeedup:
    def test_pruned_skill_removal_faster_than_exhaustive(self, stack):
        """The headline claim: pruning beats exhaustive search on latency
        (here with a modest margin since the network is small)."""
        net, target, query = stack["net"], stack["target"], stack["query"]
        expert = stack["results"].top_k(10)[-1]
        pruned = CounterfactualExplainer(
            target,
            stack["embedding"],
            stack["gae"],
            BeamConfig(beam_size=8, n_candidates=6, n_explanations=3),
        ).explain_skill_removal(expert, query, net)
        exhaustive = ExhaustiveCounterfactualExplainer(
            target, ExhaustiveConfig(timeout_seconds=30, n_explanations=3)
        ).explain_skill_removal(expert, query, net)
        if not exhaustive.found:
            assert exhaustive.elapsed_seconds > pruned.elapsed_seconds
        else:
            assert pruned.elapsed_seconds < exhaustive.elapsed_seconds


class TestTeamMembershipExplanations:
    def test_membership_counterfactual_flips(self, stack):
        net, query = stack["net"], stack["query"]
        former = stack["former"]
        seed = stack["results"].top_k(1)[0]
        team = former.form(query, net, seed_member=seed)
        others = sorted(team.members - {seed})
        if not others:
            pytest.skip("seed covers the query alone for this seed")
        member = others[0]
        target = MembershipTarget(former, seed_member=seed)
        result = CounterfactualExplainer(
            target,
            stack["embedding"],
            stack["gae"],
            BeamConfig(beam_size=6, n_candidates=5, n_explanations=2),
        ).explain_skill_removal(member, query, net)
        if not result.found:
            pytest.skip("no membership counterfactual within budget")
        for cf in result.counterfactuals:
            net2, q2 = apply_perturbations(net, query, cf.perturbations)
            assert target.decide(member, q2, net2) is False
