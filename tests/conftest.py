"""Shared fixtures.

Heavy artifacts (the small DBLP-like dataset and the trained model stack)
are session-scoped: they are built once and shared read-only by every test
that needs them.  Tests that mutate a network must copy it first.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import dblp_like, toy_network
from repro.embeddings import train_ppmi_embedding
from repro.linkpred import GaeConfig, train_gae
from repro.search import CoverageExpertRanker, GcnExpertRanker, GcnRankerConfig
from repro.team import CoverTeamFormer


@pytest.fixture
def toy_net():
    """A fresh 12-person deterministic network (mutable per test)."""
    return toy_network(n_people=12, seed=0)


@pytest.fixture
def coverage_ranker():
    return CoverageExpertRanker()


@pytest.fixture(scope="session")
def small_dataset():
    """A small DBLP-like dataset (~180 nodes) shared across the session."""
    return dblp_like(scale=0.01, seed=13)


@pytest.fixture(scope="session")
def small_embedding(small_dataset):
    return train_ppmi_embedding(
        small_dataset.corpus.token_lists(), dim=24, seed=0
    )


@pytest.fixture(scope="session")
def small_gcn_ranker(small_dataset, small_embedding):
    config = GcnRankerConfig(epochs=40, n_train_queries=30, seed=0)
    return GcnExpertRanker(small_embedding, config).fit(small_dataset.network)


@pytest.fixture(scope="session")
def small_gae(small_dataset):
    return train_gae(small_dataset.network, GaeConfig(epochs=50, seed=0))


@pytest.fixture(scope="session")
def small_former(small_gcn_ranker):
    return CoverTeamFormer(small_gcn_ranker)


@pytest.fixture(scope="session")
def small_query(small_dataset):
    """A deterministic 3-term query over the small dataset's skills."""
    skills = sorted(small_dataset.network.skill_universe())
    rng = np.random.default_rng(42)
    picks = rng.choice(len(skills), size=3, replace=False)
    return [skills[i] for i in picks]
