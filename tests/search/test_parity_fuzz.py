"""Randomized parity fuzzing: every delta path vs. the full-rebuild reference.

Decorte et al. (*On the Biased Assessment of Expert Finding Systems*) argue
expert-finding systems need systematic adversarial evaluation, not a
handful of hand-picked cases.  This suite is that evaluation for the probe
engine: a seeded RNG generates random networks and random perturbation
chains — skill add/remove, edge add/remove, chained through ``branch()``
and including annihilating add-then-remove pairs — and asserts

* delta-session scores == full-rebuild scores to 1e-9 for **all four
  rankers** (PageRank / HITS / TF-IDF on fresh random networks, the
  trained GCN on the shared session network),
* the team delta path returns the **exact same team** (members, seed,
  build order, coverage) as greedy re-formation on the materialized
  overlay, and the same membership decisions through ``MembershipTarget``,
* batched probe flushes decide identically to sequential probes,
* random probe *batches* through ``scores_batch`` equal sequential
  ``scores`` calls and full rebuilds to 1e-9 for **every ranker** (the
  PR-4 batched delta forwards), and random multi-*query* sweeps through
  ``SharedProbeContext.scores_multi`` equal per-query scoring and full
  rebuilds the same way,
* mixed service workloads answer identically across per-call facade
  invocation, deterministic single-thread ``explain_many``, sharded
  execution, and sharded execution with a wide flush-bus window (probe
  flushes from concurrent requests merged into fused kernel calls),
* randomized *committed* edit chains — ``overlay.commit()`` promoting
  flips into the base, live sessions rebased O(Δ) — score and form
  exactly as a fresh stack built from scratch on the committed network,
  several epoch boundaries deep, for all four rankers, team formation,
  and registry-owned engines with memo retention.

Every case is pinned to a deterministic seed, so green stays green.  The
default run executes a quick subset; the full sweep (500+ chains across
the parametrization grid) is marked ``slow`` and run in CI with
``-m slow``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ExES
from repro.datasets import toy_network
from repro.embeddings import train_ppmi_embedding
from repro.explain import BeamConfig, FactualConfig, MembershipTarget, RelevanceTarget
from repro.graph import NetworkOverlay, network_from_dict, network_to_dict
from repro.linkpred import HeuristicLinkPredictor
from repro.search import (
    DocumentExpertRanker,
    GcnExpertRanker,
    GcnRankerConfig,
    HitsExpertRanker,
    PageRankExpertRanker,
    ProbeEngine,
)
from repro.service import (
    FACADE_METHODS,
    EngineRegistry,
    ExplanationService,
    FlushBus,
    explanation_signature,
    make_requests,
)
from repro.team import CoverTeamFormer

ATOL = 1e-9

QUICK_SEEDS = range(3)
SLOW_SEEDS = range(3, 25)
CHAIN_LENGTHS = (1, 3, 6)

RANKERS = {
    "pagerank": PageRankExpertRanker,
    "hits": HitsExpertRanker,
    "tfidf": DocumentExpertRanker,
}


# ----------------------------------------------------------------------
# chain generation
# ----------------------------------------------------------------------
def _random_chain(net, rng, length):
    """Apply a random applicable flip chain to a fresh overlay over
    ``net``; returns the overlay.  Chains mix skill and edge flips, are
    split across ``branch()`` stages (so flattening is exercised), and
    sometimes append annihilating add-then-remove pairs."""
    skills = sorted(net.skill_universe())
    overlay = NetworkOverlay(net)
    applied = 0
    stages = 0
    while applied < length and stages < 4 * length:
        stages += 1
        if rng.random() < 0.3:
            overlay = overlay.branch()  # chained overlay-over-overlay
        kind = int(rng.integers(0, 4))
        if kind == 0:
            p = int(rng.integers(0, net.n_people))
            s = skills[int(rng.integers(0, len(skills)))]
            done = (
                overlay.add_skill(p, s)
                if not overlay.has_skill(p, s)
                else overlay.remove_skill(p, s)
            )
        elif kind == 1:
            p = int(rng.integers(0, net.n_people))
            own = sorted(overlay.skills(p))
            if not own:
                continue
            done = overlay.remove_skill(p, own[int(rng.integers(0, len(own)))])
        elif kind == 2:
            u = int(rng.integers(0, net.n_people))
            v = int(rng.integers(0, net.n_people))
            if u == v:
                continue
            done = (
                overlay.add_edge(u, v)
                if not overlay.has_edge(u, v)
                else overlay.remove_edge(u, v)
            )
        else:
            # Annihilating pair: a flip immediately undone; must leave the
            # delta (and every delta-scored result) untouched.
            p = int(rng.integers(0, net.n_people))
            s = f"transient-{stages}"
            overlay.add_skill(p, s)
            overlay.remove_skill(p, s)
            done = True
        if done:
            applied += 1
    return overlay


def _random_query(net, rng, n_terms=3):
    skills = sorted(net.skill_universe())
    n_terms = min(n_terms, len(skills))
    picks = rng.choice(len(skills), size=n_terms, replace=False)
    return frozenset(skills[int(i)] for i in picks)


def _reference_scores(ranker, query, overlay):
    """The from-scratch full-rebuild scores for an overlay state."""
    ranker.full_rebuild = True
    try:
        return ranker.scores(query, overlay)
    finally:
        ranker.full_rebuild = False


# ----------------------------------------------------------------------
# ranker score parity
# ----------------------------------------------------------------------
class TestRankerScoreFuzz:
    """Delta scores == full-rebuild scores to 1e-9 on random networks and
    random chains, for the training-free rankers."""

    @staticmethod
    def _run_chain(ranker_name, chain_length, seed):
        rng = np.random.default_rng(10_000 * chain_length + seed)
        net = toy_network(n_people=int(rng.integers(10, 25)), seed=seed)
        ranker = RANKERS[ranker_name]()
        query = _random_query(net, rng)
        overlay = _random_chain(net, rng, chain_length)
        fast = ranker.scores(query, overlay)
        assert overlay._mat is None, "delta path materialized the overlay"
        slow = _reference_scores(ranker, query, overlay)
        np.testing.assert_allclose(fast, slow, rtol=0, atol=ATOL)

    @pytest.mark.parametrize("ranker_name", sorted(RANKERS))
    @pytest.mark.parametrize("chain_length", CHAIN_LENGTHS)
    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_quick(self, ranker_name, chain_length, seed):
        self._run_chain(ranker_name, chain_length, seed)

    @pytest.mark.slow
    @pytest.mark.parametrize("ranker_name", sorted(RANKERS))
    @pytest.mark.parametrize("chain_length", CHAIN_LENGTHS)
    @pytest.mark.parametrize("seed", SLOW_SEEDS)
    def test_full(self, ranker_name, chain_length, seed):
        self._run_chain(ranker_name, chain_length, seed)


class TestGcnScoreFuzz:
    """The trained GCN's delta session (including the batched and the
    neighborhood-restricted forward) against full rebuild, on random
    chains over the shared session network."""

    @staticmethod
    def _run_chain(small_gcn_ranker, net, chain_length, seed):
        rng = np.random.default_rng(77_000 * chain_length + seed)
        query = _random_query(net, rng)
        overlay = _random_chain(net, rng, chain_length)
        fast = small_gcn_ranker.scores(query, overlay)
        assert overlay._mat is None
        slow = _reference_scores(small_gcn_ranker, query, overlay)
        np.testing.assert_allclose(fast, slow, rtol=0, atol=ATOL)
        # The batched multi-probe forward must agree with both.
        session = small_gcn_ranker._session_for(net)
        (batched,) = session.scores_batch(query, [overlay])
        np.testing.assert_allclose(batched, slow, rtol=0, atol=ATOL)

    @pytest.mark.parametrize("chain_length", CHAIN_LENGTHS)
    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_quick(self, small_gcn_ranker, small_dataset, chain_length, seed):
        self._run_chain(small_gcn_ranker, small_dataset.network, chain_length, seed)

    @pytest.mark.slow
    @pytest.mark.parametrize("chain_length", CHAIN_LENGTHS)
    @pytest.mark.parametrize("seed", SLOW_SEEDS)
    def test_full(self, small_gcn_ranker, small_dataset, chain_length, seed):
        self._run_chain(small_gcn_ranker, small_dataset.network, chain_length, seed)

    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_restricted_forward_forced(
        self, small_gcn_ranker, small_dataset, seed, monkeypatch
    ):
        """With the restriction threshold forced wide open, every flip
        chain takes the spliced 2-hop path — parity must survive it."""
        import repro.search.engine as engine_mod

        monkeypatch.setattr(engine_mod, "_RESTRICT_MAX_FRACTION", 1.0)
        net = small_dataset.network
        rng = np.random.default_rng(555 + seed)
        query = _random_query(net, rng)
        overlay = _random_chain(net, rng, 3)
        # A fresh session so the forced threshold is what serves the probe.
        session = small_gcn_ranker.delta_session(net)
        fast = session.scores(query, overlay)
        if overlay.n_flips:
            assert session.restricted_probes > 0
        slow = _reference_scores(small_gcn_ranker, query, overlay)
        np.testing.assert_allclose(fast, slow, rtol=0, atol=ATOL)


# ----------------------------------------------------------------------
# localized plans: mode-aware parity against full rebuild
# ----------------------------------------------------------------------
class TestLocalizedScoreFuzz:
    """``scores_localized`` against full rebuild on random chains, with
    the mode-aware contract: exact and global plans match to 1e-9, a
    sampled plan's l1 error stays inside its *certified* residual bound,
    and that bound never exceeds the scope's epsilon (plus the base
    iterate's 1e-9 tolerance slack)."""

    N_PROBES = 4

    @classmethod
    def _run_chain(cls, ranker_name, chain_length, seed, epsilon):
        from repro.runtime import LocalizedSpec

        rng = np.random.default_rng(30_000 * chain_length + seed)
        net = toy_network(n_people=int(rng.integers(10, 25)), seed=seed)
        ranker = RANKERS[ranker_name]()
        session = ranker.delta_session(net)
        spec = LocalizedSpec(epsilon=epsilon)
        for _ in range(cls.N_PROBES):
            query = _random_query(net, rng)
            overlay = _random_chain(net, rng, chain_length)
            scores, plan = session.scores_localized(query, overlay, spec)
            spec.record(plan)
            assert overlay._mat is None, "localized path materialized"
            slow = _reference_scores(ranker, query, overlay)
            err = float(np.abs(scores - slow).sum())
            if plan.mode == "sampled":
                assert plan.residual_bound is not None
                assert err <= plan.residual_bound, (
                    f"sampled l1 error {err:.2e} above certified bound "
                    f"{plan.residual_bound:.2e}"
                )
                assert plan.residual_bound <= epsilon + 1e-9
                assert 0 <= plan.cone_size <= net.n_people
            else:
                assert err <= ATOL, (
                    f"{plan.mode} plan drifted from full rebuild ({err:.2e})"
                )
        summary = spec.summary()
        assert (
            summary["exact"] + summary["sampled"] + summary["global"]
            == cls.N_PROBES
        )
        assert summary["epsilon"] == epsilon

    @pytest.mark.parametrize("ranker_name", sorted(RANKERS))
    @pytest.mark.parametrize("chain_length", CHAIN_LENGTHS)
    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_quick(self, ranker_name, chain_length, seed):
        self._run_chain(ranker_name, chain_length, seed, epsilon=1e-6)

    @pytest.mark.slow
    @pytest.mark.parametrize("epsilon", (1e-5, 1e-6, 1e-8))
    @pytest.mark.parametrize("ranker_name", sorted(RANKERS))
    @pytest.mark.parametrize("chain_length", CHAIN_LENGTHS)
    @pytest.mark.parametrize("seed", SLOW_SEEDS)
    def test_full(self, ranker_name, chain_length, seed, epsilon):
        self._run_chain(ranker_name, chain_length, seed, epsilon=epsilon)

    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_gcn_localized(self, small_gcn_ranker, small_dataset, seed):
        """The GCN's 2-hop receptive-field splice reports certified-exact
        plans and matches full rebuild."""
        from repro.runtime import LocalizedSpec

        net = small_dataset.network
        rng = np.random.default_rng(888 + seed)
        query = _random_query(net, rng)
        overlay = _random_chain(net, rng, 3)
        session = small_gcn_ranker.delta_session(net)
        spec = LocalizedSpec(epsilon=1e-6)
        scores, plan = session.scores_localized(query, overlay, spec)
        assert plan.mode in ("exact", "global")
        slow = _reference_scores(small_gcn_ranker, query, overlay)
        np.testing.assert_allclose(scores, slow, rtol=0, atol=ATOL)

    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_engine_scope_memo_separation(self, seed):
        """Probes under a ``localized_scope`` must never serve (or be
        served by) the plain memo: a sampled vector is only valid within
        its bound, and plain vectors carry no plan accounting."""
        from repro.runtime import LocalizedSpec, localized_scope

        rng = np.random.default_rng(4_400 + seed)
        net = toy_network(n_people=18, seed=seed)
        target = RelevanceTarget(PageRankExpertRanker(), k=5)
        engine = ProbeEngine(target, net)
        query = _random_query(net, rng)
        overlay = _random_chain(net, rng, 2)
        person = int(rng.integers(0, net.n_people))
        plain_first = engine.probe(person, query, overlay)
        spec = LocalizedSpec(epsilon=1e-6)
        with localized_scope(spec):
            scoped = engine.probe(person, query, overlay)
            again = engine.probe(person, query, overlay)
        summary = spec.summary()
        assert (
            summary["exact"] + summary["sampled"] + summary["global"] >= 1
        ), "scoped probe bypassed plan accounting (memo crosstalk)"
        assert scoped == again
        assert scoped[0] == plain_first[0]


# ----------------------------------------------------------------------
# batched delta forwards: scores_batch == sequential == full rebuild
# ----------------------------------------------------------------------
class TestBatchedScoreFuzz:
    """Random probe batches through every ranker's ``scores_batch`` must
    equal sequential ``scores`` calls (fresh session, so neither path is
    answered from the other's caches) and full rebuilds to 1e-9."""

    N_PROBES = 6

    @classmethod
    def _run_batch(cls, ranker, net, rng):
        query = _random_query(net, rng)
        overlays = [
            _random_chain(net, rng, int(rng.integers(1, 5)))
            for _ in range(cls.N_PROBES)
        ]
        batched = ranker.delta_session(net).scores_batch(query, overlays)
        fresh = ranker.delta_session(net)
        sequential = [fresh.scores(query, ov) for ov in overlays]
        for fast, seq, ov in zip(batched, sequential, overlays):
            assert ov._mat is None, "batched path materialized an overlay"
            np.testing.assert_allclose(fast, seq, rtol=0, atol=ATOL)
            slow = _reference_scores(ranker, query, ov)
            np.testing.assert_allclose(fast, slow, rtol=0, atol=ATOL)

    @pytest.mark.parametrize("ranker_name", sorted(RANKERS))
    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_quick(self, ranker_name, seed):
        rng = np.random.default_rng(60_000 + seed)
        net = toy_network(n_people=int(rng.integers(10, 25)), seed=seed)
        self._run_batch(RANKERS[ranker_name](), net, rng)

    @pytest.mark.slow
    @pytest.mark.parametrize("ranker_name", sorted(RANKERS))
    @pytest.mark.parametrize("seed", SLOW_SEEDS)
    def test_full(self, ranker_name, seed):
        rng = np.random.default_rng(60_000 + seed)
        net = toy_network(n_people=int(rng.integers(10, 25)), seed=seed)
        self._run_batch(RANKERS[ranker_name](), net, rng)

    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_gcn_quick(self, small_gcn_ranker, small_dataset, seed):
        rng = np.random.default_rng(61_000 + seed)
        self._run_batch(small_gcn_ranker, small_dataset.network, rng)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", SLOW_SEEDS)
    def test_gcn_full(self, small_gcn_ranker, small_dataset, seed):
        rng = np.random.default_rng(61_000 + seed)
        self._run_batch(small_gcn_ranker, small_dataset.network, rng)


# ----------------------------------------------------------------------
# shared multi-query sessions: scores_multi == sequential == full rebuild
# ----------------------------------------------------------------------
class TestMultiQueryFuzz:
    """One pinned overlay probed under many random query subsets (the SHAP
    value-function shape) through ``SharedProbeContext.scores_multi`` must
    equal per-query ``scores`` calls and full rebuilds to 1e-9 — including
    the empty query subset."""

    @staticmethod
    def _query_subsets(net, rng, n_subsets=6):
        base_query = _random_query(net, rng, n_terms=4)
        terms = sorted(base_query)
        subsets = [frozenset(), base_query]
        while len(subsets) < n_subsets:
            mask = rng.random(len(terms)) < 0.5
            subsets.append(frozenset(t for t, keep in zip(terms, mask) if keep))
        return subsets

    @classmethod
    def _run_multi(cls, ranker, net, rng, chain_length):
        queries = cls._query_subsets(net, rng)
        overlay = _random_chain(net, rng, chain_length)
        context = ranker.delta_session(net).shared_context(overlay)
        multi = context.scores_multi(queries)
        fresh = ranker.delta_session(net)
        sequential = [fresh.scores(q, overlay) for q in queries]
        assert overlay._mat is None, "multi-query path materialized the overlay"
        for q, fast, seq in zip(queries, multi, sequential):
            np.testing.assert_allclose(fast, seq, rtol=0, atol=ATOL)
            slow = _reference_scores(ranker, q, overlay)
            np.testing.assert_allclose(fast, slow, rtol=0, atol=ATOL)

    @pytest.mark.parametrize("ranker_name", sorted(RANKERS))
    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_quick(self, ranker_name, seed):
        rng = np.random.default_rng(70_000 + seed)
        net = toy_network(n_people=int(rng.integers(10, 25)), seed=seed)
        self._run_multi(RANKERS[ranker_name](), net, rng, int(rng.integers(1, 5)))

    @pytest.mark.slow
    @pytest.mark.parametrize("ranker_name", sorted(RANKERS))
    @pytest.mark.parametrize("chain_length", CHAIN_LENGTHS)
    @pytest.mark.parametrize("seed", SLOW_SEEDS)
    def test_full(self, ranker_name, chain_length, seed):
        rng = np.random.default_rng(70_000 * chain_length + seed)
        net = toy_network(n_people=int(rng.integers(10, 25)), seed=seed)
        self._run_multi(RANKERS[ranker_name](), net, rng, chain_length)

    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_gcn_quick(self, small_gcn_ranker, small_dataset, seed):
        rng = np.random.default_rng(71_000 + seed)
        self._run_multi(
            small_gcn_ranker, small_dataset.network, rng, int(rng.integers(1, 5))
        )

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", SLOW_SEEDS)
    def test_gcn_full(self, small_gcn_ranker, small_dataset, seed):
        rng = np.random.default_rng(71_000 + seed)
        self._run_multi(
            small_gcn_ranker, small_dataset.network, rng, int(rng.integers(1, 5))
        )


# ----------------------------------------------------------------------
# team-formation delta parity (exact teams, not just scores)
# ----------------------------------------------------------------------
class TestTeamFormationFuzz:
    """The team delta path (cached base run + overlay re-formation) must
    return the exact team the plain path forms on the materialized
    overlay, and identical membership decisions."""

    @staticmethod
    def _run_chain(ranker_name, chain_length, seed):
        rng = np.random.default_rng(31_000 * chain_length + seed)
        net = toy_network(n_people=int(rng.integers(10, 25)), seed=seed)
        former = CoverTeamFormer(RANKERS[ranker_name]())
        query = _random_query(net, rng)
        overlay = _random_chain(net, rng, chain_length)
        seed_member = (
            None if rng.random() < 0.5 else int(rng.integers(0, net.n_people))
        )

        fast = former.form(query, overlay, seed_member=seed_member)
        assert overlay._mat is None, "team delta path materialized the overlay"
        # The canonical reference: full_rebuild on former AND ranker, with
        # the overlay still visible — exactly the score-parity convention,
        # so base-pinned ranker statistics (TF-IDF idf) stay pinned.
        former.full_rebuild = True
        former.ranker.full_rebuild = True
        try:
            slow = former.form(query, overlay, seed_member=seed_member)
        finally:
            former.full_rebuild = False
            former.ranker.full_rebuild = False

        assert fast.members == slow.members
        assert fast.seed == slow.seed
        assert fast.build_order == slow.build_order
        assert fast.covered_terms == slow.covered_terms
        assert fast.uncovered_terms == slow.uncovered_terms

        # Membership probes through the decision target agree too.
        target = MembershipTarget(former, seed_member=seed_member)
        person = int(rng.integers(0, net.n_people))
        fast_decision = target.decide(person, query, overlay)
        assert fast_decision == (person in slow)

    @pytest.mark.parametrize("ranker_name", sorted(RANKERS))
    @pytest.mark.parametrize("chain_length", CHAIN_LENGTHS)
    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_quick(self, ranker_name, chain_length, seed):
        self._run_chain(ranker_name, chain_length, seed)

    @pytest.mark.slow
    @pytest.mark.parametrize("ranker_name", sorted(RANKERS))
    @pytest.mark.parametrize("chain_length", CHAIN_LENGTHS)
    @pytest.mark.parametrize("seed", SLOW_SEEDS)
    def test_full(self, ranker_name, chain_length, seed):
        self._run_chain(ranker_name, chain_length, seed)

    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_gcn_team_chain(self, small_gcn_ranker, small_dataset, seed):
        """The paper's actual stack: team formation over the trained GCN."""
        net = small_dataset.network
        former = CoverTeamFormer(small_gcn_ranker)
        rng = np.random.default_rng(909 + seed)
        query = _random_query(net, rng)
        overlay = _random_chain(net, rng, 3)
        fast = former.form(query, overlay, seed_member=None)
        assert overlay._mat is None
        former.full_rebuild = True
        small_gcn_ranker.full_rebuild = True
        try:
            slow = former.form(query, overlay, seed_member=None)
        finally:
            former.full_rebuild = False
            small_gcn_ranker.full_rebuild = False
        assert fast.members == slow.members
        assert fast.build_order == slow.build_order


# ----------------------------------------------------------------------
# batched probe flushes
# ----------------------------------------------------------------------
class TestBatchedProbeFuzz:
    """``ProbeEngine.probe_batch`` must decide exactly as sequential
    ``probe`` calls — for relevance and membership targets alike."""

    @staticmethod
    def _states(net, rng, n_states):
        out = []
        for _ in range(n_states):
            query = _random_query(net, rng)
            overlay = _random_chain(net, rng, int(rng.integers(1, 5)))
            person = int(rng.integers(0, net.n_people))
            out.append((person, query, overlay))
        return out

    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_gcn_relevance_batch_matches_sequential(
        self, small_gcn_ranker, small_dataset, seed
    ):
        net = small_dataset.network
        rng = np.random.default_rng(4242 + seed)
        states = self._states(net, rng, 12)
        target = RelevanceTarget(small_gcn_ranker, k=10)
        batch_engine = ProbeEngine(target, net)
        seq_engine = ProbeEngine(target, net, memoize=False)
        batched = batch_engine.probe_batch(states)
        sequential = [seq_engine.probe(*state) for state in states]
        assert batched == sequential
        assert all(ov._mat is None for _, _, ov in states)

    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_team_membership_batch_matches_sequential(
        self, small_gcn_ranker, small_dataset, seed
    ):
        net = small_dataset.network
        former = CoverTeamFormer(small_gcn_ranker)
        rng = np.random.default_rng(8484 + seed)
        states = self._states(net, rng, 8)
        target = MembershipTarget(former)
        batch_engine = ProbeEngine(target, net)
        seq_engine = ProbeEngine(target, net, memoize=False)
        batched = batch_engine.probe_batch(states)
        sequential = [seq_engine.probe(*state) for state in states]
        assert batched == sequential
        assert all(ov._mat is None for _, _, ov in states)


# ----------------------------------------------------------------------
# service axis: explain_many sharded vs single-thread vs per-call facade
# ----------------------------------------------------------------------
_SERVICE_FACTUAL = FactualConfig(
    n_samples=16, max_samples=32, selection_samples=8, exact_limit=4
)
_SERVICE_BEAM = BeamConfig(beam_size=4, n_candidates=3, max_size=2, n_explanations=2)
_SERVICE_KINDS = ("skills", "query", "cf_skills", "cf_query")
class TestServiceFuzz:
    """Randomized mixed request workloads: the deterministic single-thread
    ``explain_many`` must be bit-identical to per-call facade invocation,
    and the sharded (thread-pool) mode must match the deterministic mode —
    relevance and membership requests together, for every ranker."""

    @staticmethod
    def _random_requests(ranker, former, net, rng, k):
        requests = []
        for _ in range(int(rng.integers(1, 3))):
            query = tuple(sorted(_random_query(net, rng)))
            order = ranker.evaluate(query, net).order
            persons = {int(order[0]), int(order[min(k, len(order) - 1)])}
            kinds = [
                _SERVICE_KINDS[int(i)]
                for i in rng.choice(
                    len(_SERVICE_KINDS), size=int(rng.integers(2, 4)), replace=False
                )
            ]
            for person in sorted(persons):
                requests.extend(make_requests(kinds, person, query))
            seed_member = int(order[0])
            team = former.form(query, net, seed_member=seed_member)
            member = sorted(team.members)[0]
            requests.extend(
                make_requests(
                    ("cf_skills",), member, query, team=True, seed_member=seed_member
                )
            )
        return requests

    @classmethod
    def _run_workload(cls, ranker, net, seed, k=3):
        rng = np.random.default_rng(31_000 + seed)
        former = CoverTeamFormer(ranker)
        embedding = train_ppmi_embedding(
            [sorted(net.skills(p)) for p in net.people()] * 2, dim=8, min_count=1
        )
        predictor = HeuristicLinkPredictor("common_neighbors").fit(net)
        requests = cls._random_requests(ranker, former, net, rng, k)

        facade = ExES(
            network=net, ranker=ranker, embedding=embedding,
            link_predictor=predictor, former=former, k=k,
            factual_config=_SERVICE_FACTUAL, beam_config=_SERVICE_BEAM,
            registry=EngineRegistry(),
        )
        reference = [
            explanation_signature(
                request,
                getattr(facade, FACADE_METHODS[request.kind])(
                    request.person, request.query,
                    team=request.team, seed_member=request.seed_member,
                ),
            )
            for request in requests
        ]

        # Three service axes against the per-call reference: deterministic
        # single-thread, sharded, and sharded with a wide flush-bus window
        # (probe flushes from concurrent shards merge into fused kernel
        # calls — composition-insensitive backends keep them bit-exact).
        fused_bus = FlushBus(window=0.02)
        for max_workers, bus in ((1, None), (4, None), (4, fused_bus)):
            registry = EngineRegistry()
            if bus is not None:
                registry.flush_bus = bus
            service = ExplanationService(
                network=net, ranker=ranker, embedding=embedding,
                link_predictor=predictor, former=former, k=k,
                factual_config=_SERVICE_FACTUAL, beam_config=_SERVICE_BEAM,
                registry=registry,
            )
            responses = service.explain_many(requests, max_workers=max_workers)
            assert all(r.ok for r in responses), [r.error for r in responses]
            got = [
                explanation_signature(r.request, r.explanation) for r in responses
            ]
            label = f"max_workers={max_workers}, fused={bus is not None}"
            assert got == reference, f"{label} diverged"
            counters = registry.flush_counters()
            if max_workers == 1:
                # Deterministic mode keeps the bus disarmed: pure
                # pass-through, nothing may merge.
                assert counters["bus_flushes"] == 0
                assert counters["bus_merged_flushes"] == 0

    @pytest.mark.parametrize("ranker_name", sorted(RANKERS))
    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_quick(self, ranker_name, seed):
        rng = np.random.default_rng(555 + seed)
        net = toy_network(n_people=int(rng.integers(12, 22)), seed=seed)
        self._run_workload(RANKERS[ranker_name](), net, seed)

    @pytest.mark.slow
    @pytest.mark.parametrize("ranker_name", sorted(RANKERS))
    @pytest.mark.parametrize("seed", SLOW_SEEDS)
    def test_full(self, ranker_name, seed):
        rng = np.random.default_rng(555 + seed)
        net = toy_network(n_people=int(rng.integers(12, 25)), seed=seed)
        self._run_workload(RANKERS[ranker_name](), net, seed)

    @pytest.mark.parametrize("seed", QUICK_SEEDS[:1])
    def test_gcn_quick(self, small_gcn_ranker, small_dataset, seed):
        self._run_workload(small_gcn_ranker, small_dataset.network, seed, k=10)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", QUICK_SEEDS[1:])
    def test_gcn_full(self, small_gcn_ranker, small_dataset, seed):
        self._run_workload(small_gcn_ranker, small_dataset.network, seed, k=10)


# ----------------------------------------------------------------------
# serving axis: wire responses == direct explain_many, bit-identical
# ----------------------------------------------------------------------
class TestServeParityFuzz:
    """The socket front end adds zero answer drift: deterministic
    single-worker batches served over a live connection must be
    bit-identical (by ``explanation_signature``) to direct
    ``explain_many`` on the same service — for every ranker.  The
    session is stamped client-side so the request objects on both axes
    are *equal*, making the signatures directly comparable."""

    @classmethod
    def _run_wire_parity(cls, ranker, net, seed, k=3):
        import asyncio
        import dataclasses

        from repro.serve import ExplanationServer, ServeClient, ServeConfig

        rng = np.random.default_rng(93_000 + seed)
        former = CoverTeamFormer(ranker)
        embedding = train_ppmi_embedding(
            [sorted(net.skills(p)) for p in net.people()] * 2, dim=8, min_count=1
        )
        predictor = HeuristicLinkPredictor("common_neighbors").fit(net)
        requests = [
            dataclasses.replace(r, session="parity")
            for r in TestServiceFuzz._random_requests(ranker, former, net, rng, k)
        ]
        service = ExplanationService(
            network=net, ranker=ranker, embedding=embedding,
            link_predictor=predictor, former=former, k=k,
            factual_config=_SERVICE_FACTUAL, beam_config=_SERVICE_BEAM,
            registry=EngineRegistry(),
        )
        direct = service.explain_many(requests, max_workers=1)
        assert all(r.ok for r in direct), [r.error for r in direct]
        reference = [
            explanation_signature(r.request, r.explanation) for r in direct
        ]

        async def scenario():
            server = await ExplanationServer(service, ServeConfig(port=0)).start()
            client = await ServeClient.connect(
                "127.0.0.1", server.port, session="parity"
            )
            responses, summary = await client.explain_many(requests, max_workers=1)
            await client.close()
            await server.shutdown()
            return responses, summary

        responses, summary = asyncio.run(asyncio.wait_for(scenario(), timeout=120))
        got = [explanation_signature(r.request, r.explanation) for r in responses]
        assert got == reference, "wire responses diverged from direct explain_many"
        assert summary["outcomes"] == {"ok": len(requests)}

    @pytest.mark.parametrize("ranker_name", sorted(RANKERS))
    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_quick(self, ranker_name, seed):
        rng = np.random.default_rng(777 + seed)
        net = toy_network(n_people=int(rng.integers(12, 22)), seed=seed)
        self._run_wire_parity(RANKERS[ranker_name](), net, seed)

    @pytest.mark.slow
    @pytest.mark.parametrize("ranker_name", sorted(RANKERS))
    @pytest.mark.parametrize("seed", SLOW_SEEDS)
    def test_full(self, ranker_name, seed):
        rng = np.random.default_rng(777 + seed)
        net = toy_network(n_people=int(rng.integers(12, 25)), seed=seed)
        self._run_wire_parity(RANKERS[ranker_name](), net, seed)

    @pytest.mark.parametrize("seed", QUICK_SEEDS[:1])
    def test_gcn_quick(self, small_gcn_ranker, small_dataset, seed):
        self._run_wire_parity(small_gcn_ranker, small_dataset.network, seed, k=10)


# ----------------------------------------------------------------------
# committed edit chains: O(Δ) rebase vs. from-scratch rebuilds
# ----------------------------------------------------------------------
def _commit_overlay(net, rng, length):
    """A random applicable flip set on a *direct* overlay over ``net`` —
    only a first-level overlay can be promoted into its base, so no
    ``branch()`` stages.  Mixes skill and edge flips and sometimes
    annihilating add-then-remove pairs (which must commit as nothing)."""
    skills = sorted(net.skill_universe())
    overlay = NetworkOverlay(net)
    applied = 0
    stages = 0
    while applied < length and stages < 6 * length:
        stages += 1
        kind = int(rng.integers(0, 4))
        if kind == 0:
            p = int(rng.integers(0, net.n_people))
            s = skills[int(rng.integers(0, len(skills)))]
            done = (
                overlay.add_skill(p, s)
                if not overlay.has_skill(p, s)
                else overlay.remove_skill(p, s)
            )
        elif kind == 1:
            p = int(rng.integers(0, net.n_people))
            own = sorted(overlay.skills(p))
            if not own:
                continue
            done = overlay.remove_skill(p, own[int(rng.integers(0, len(own)))])
        elif kind == 2:
            u = int(rng.integers(0, net.n_people))
            v = int(rng.integers(0, net.n_people))
            if u == v:
                continue
            done = (
                overlay.add_edge(u, v)
                if not overlay.has_edge(u, v)
                else overlay.remove_edge(u, v)
            )
        else:
            p = int(rng.integers(0, net.n_people))
            s = f"transient-{stages}"
            overlay.add_skill(p, s)
            overlay.remove_skill(p, s)
            done = True
        if done:
            applied += 1
    return overlay


def _replay_overlay(overlay, onto):
    """Re-apply a direct overlay's net flips onto a fresh overlay over
    ``onto`` — the rebuilt reference network, structurally identical to
    the overlay's base."""
    out = NetworkOverlay(onto)
    for (p, s), added in sorted(overlay.skill_flips().items()):
        (out.add_skill if added else out.remove_skill)(p, s)
    for (u, v), added in sorted(overlay.edge_flips().items()):
        (out.add_edge if added else out.remove_edge)(u, v)
    return out


class TestCommitFuzz:
    """Randomized *committed* edit chains.

    Each round promotes a random flip set into the live base with
    ``overlay.commit()`` and carries the open delta sessions across via
    ``rebase`` (falling back to a fresh session when one declines — both
    outcomes must be parity-safe).  After every commit, scores served by
    the rebased ranker session must equal to 1e-9 both the full-rebuild
    reference on the mutated base and a fresh session stack over a
    network rebuilt from scratch at the committed state
    (``network_to_dict`` → ``network_from_dict``), and the rebased team
    session must return the *exact* reference team.  Chains run several
    commits deep so retained caches must survive multiple epoch
    boundaries, not just one.
    """

    N_COMMITS = 3

    @classmethod
    def _run_commit_chain(cls, ranker, net, chain_length, rng, fresh_ranker_factory):
        former = CoverTeamFormer(ranker)
        rsession = ranker._session_for(net)
        tsession = former._session_for(net)
        assert rsession is not None and tsession is not None
        pinned_query = _random_query(net, rng)
        # Warm the score caches and the base team trace before the first
        # commit, so rebasing has real state to retain or invalidate.
        ranker.scores(pinned_query, _commit_overlay(net, rng, 2))
        former.form(pinned_query, NetworkOverlay(net))

        for _ in range(cls.N_COMMITS):
            delta = _commit_overlay(net, rng, chain_length).commit()
            assert delta.new_version == net.version
            # Rebase order matters: the team session's retention predicate
            # consults the ranker session already carried to the new base.
            if not rsession.rebase(delta):
                rsession = ranker._session_for(net)
            if not tsession.rebase(delta):
                tsession = former._session_for(net)
            assert rsession.valid_for(net) and tsession.valid_for(net)
            # The ranker keeps serving through the rebased session — no
            # silent cold rebuild behind the parity check.
            assert ranker._session_for(net) is rsession

            fresh_net = network_from_dict(network_to_dict(net))
            assert fresh_net.state_digest() == net.state_digest()
            fresh_ranker = fresh_ranker_factory()
            fresh_session = fresh_ranker.delta_session(fresh_net)

            for query in (pinned_query, _random_query(net, rng)):
                for probe_len in (0, int(rng.integers(1, 4))):
                    probe = (
                        NetworkOverlay(net)
                        if probe_len == 0
                        else _commit_overlay(net, rng, probe_len)
                    )
                    fast = ranker.scores(query, probe)
                    assert probe._mat is None, "delta path materialized the probe"
                    slow = _reference_scores(ranker, query, probe)
                    np.testing.assert_allclose(fast, slow, rtol=0, atol=ATOL)
                    fresh = fresh_session.scores(
                        query, _replay_overlay(probe, fresh_net)
                    )
                    np.testing.assert_allclose(fast, fresh, rtol=0, atol=ATOL)

            # Exact-team parity through the rebased team session, against a
            # from-scratch formation on the rebuilt network.
            seed_member = (
                None if rng.random() < 0.5 else int(rng.integers(0, net.n_people))
            )
            team_probe = _commit_overlay(net, rng, 2)
            fast_team = former.form(
                pinned_query, team_probe, seed_member=seed_member
            )
            fresh_former = CoverTeamFormer(fresh_ranker)
            fresh_former.full_rebuild = True
            fresh_ranker.full_rebuild = True
            try:
                ref_team = fresh_former.form(
                    pinned_query,
                    _replay_overlay(team_probe, fresh_net),
                    seed_member=seed_member,
                )
            finally:
                fresh_former.full_rebuild = False
                fresh_ranker.full_rebuild = False
            assert fast_team.members == ref_team.members
            assert fast_team.seed == ref_team.seed
            assert fast_team.build_order == ref_team.build_order
            assert fast_team.covered_terms == ref_team.covered_terms
            assert fast_team.uncovered_terms == ref_team.uncovered_terms

    @staticmethod
    def _run(ranker_name, chain_length, seed):
        rng = np.random.default_rng(88_000 * chain_length + seed)
        net = toy_network(n_people=int(rng.integers(12, 22)), seed=seed)
        TestCommitFuzz._run_commit_chain(
            RANKERS[ranker_name](), net, chain_length, rng,
            lambda: RANKERS[ranker_name](),
        )

    @pytest.mark.parametrize("ranker_name", sorted(RANKERS))
    @pytest.mark.parametrize("chain_length", CHAIN_LENGTHS)
    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_quick(self, ranker_name, chain_length, seed):
        self._run(ranker_name, chain_length, seed)

    @pytest.mark.slow
    @pytest.mark.parametrize("ranker_name", sorted(RANKERS))
    @pytest.mark.parametrize("chain_length", CHAIN_LENGTHS)
    @pytest.mark.parametrize("seed", SLOW_SEEDS)
    def test_full(self, ranker_name, chain_length, seed):
        self._run(ranker_name, chain_length, seed)

    @staticmethod
    def _tiny_gcn(net, seed):
        """A small trained GCN over a private toy network (the shared
        session ranker cannot be used — commits mutate the base)."""
        embedding = train_ppmi_embedding(
            [sorted(net.skills(p)) for p in net.people()] * 2, dim=8, min_count=1
        )
        config = GcnRankerConfig(epochs=4, n_train_queries=6, seed=seed)
        return GcnExpertRanker(embedding, config).fit(net)

    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_gcn_quick(self, seed):
        rng = np.random.default_rng(89_000 + seed)
        net = toy_network(n_people=14, seed=seed)
        ranker = self._tiny_gcn(net, seed)
        # Training is fit-time-frozen, so the trained ranker itself is the
        # reference stack: full-rebuild scoring over the rebuilt network
        # shares no session state with the rebased path.
        self._run_commit_chain(ranker, net, 3, rng, lambda: ranker)

    @pytest.mark.slow
    @pytest.mark.parametrize("chain_length", CHAIN_LENGTHS)
    @pytest.mark.parametrize("seed", SLOW_SEEDS[:8])
    def test_gcn_full(self, chain_length, seed):
        rng = np.random.default_rng(89_000 * chain_length + seed)
        net = toy_network(n_people=16, seed=seed)
        ranker = self._tiny_gcn(net, seed)
        self._run_commit_chain(ranker, net, chain_length, rng, lambda: ranker)

    @staticmethod
    def _run_registry(ranker_name, seed):
        """Probe decisions after ``EngineRegistry.rebase`` — rebased
        sessions, re-keyed engines, memo entries retained through the
        per-ranker ``memo_survives`` cones — equal a cold engine on a
        from-scratch rebuild of the committed network."""
        rng = np.random.default_rng(91_000 + seed)
        net = toy_network(n_people=int(rng.integers(12, 20)), seed=seed)
        ranker = RANKERS[ranker_name]()
        registry = EngineRegistry()
        registry.install(ranker)
        target = RelevanceTarget(ranker, k=3)
        engine = registry.engine(target, net)
        queries = [_random_query(net, rng) for _ in range(3)]
        for query in queries:  # warm the decision and score memos
            for _ in range(3):
                person = int(rng.integers(0, net.n_people))
                engine.probe(
                    person, query, _commit_overlay(net, rng, int(rng.integers(1, 4)))
                )
        delta = _commit_overlay(net, rng, 4).commit()
        while delta.is_empty:  # all-annihilating chains commit as no-ops
            delta = _commit_overlay(net, rng, 4).commit()
        stats = registry.rebase(net, delta)
        assert stats["rebased_sessions"] + stats["dropped_sessions"] >= 1
        assert stats["rebased_engines"] + stats["dropped_engines"] >= 1
        rebased = registry.engine(target, net)

        fresh_net = network_from_dict(network_to_dict(net))
        fresh_engine = ProbeEngine(
            RelevanceTarget(RANKERS[ranker_name](), k=3), fresh_net
        )
        for query in queries + [_random_query(net, rng)]:
            for _ in range(3):
                person = int(rng.integers(0, net.n_people))
                probe = _commit_overlay(net, rng, int(rng.integers(1, 4)))
                got = rebased.probe(person, query, probe)
                want = fresh_engine.probe(
                    person, query, _replay_overlay(probe, fresh_net)
                )
                assert got == want

    @pytest.mark.parametrize("ranker_name", sorted(RANKERS))
    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_registry_rebase_quick(self, ranker_name, seed):
        self._run_registry(ranker_name, seed)

    @pytest.mark.slow
    @pytest.mark.parametrize("ranker_name", sorted(RANKERS))
    @pytest.mark.parametrize("seed", SLOW_SEEDS)
    def test_registry_rebase_full(self, ranker_name, seed):
        self._run_registry(ranker_name, seed)
