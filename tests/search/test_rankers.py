"""Behavioral tests shared across the concrete expert search systems."""

import numpy as np
import pytest

from repro.datasets import toy_network
from repro.graph import CollaborationNetwork
from repro.search import (
    CoverageExpertRanker,
    DocumentExpertRanker,
    HitsExpertRanker,
    PageRankExpertRanker,
)


@pytest.fixture
def skill_net():
    """Node 0 holds both query skills; 1 holds one; 2 none but collaborates
    with 0; 3 isolated with none."""
    net = CollaborationNetwork()
    net.add_person("both", {"graph", "mining"})
    net.add_person("one", {"graph", "vision"})
    net.add_person("connector", {"vision"})
    net.add_person("outsider", {"privacy"})
    net.add_edge(0, 2)
    net.add_edge(1, 2)
    return net


ALL_RANKERS = [
    CoverageExpertRanker(),
    PageRankExpertRanker(),
    DocumentExpertRanker(),
    HitsExpertRanker(),
]


@pytest.mark.parametrize("ranker", ALL_RANKERS, ids=lambda r: r.name)
class TestCommonBehaviour:
    def test_full_match_ranks_first(self, ranker, skill_net):
        assert ranker.rank(["graph", "mining"], skill_net)[0] == 0

    def test_non_matching_outsider_ranks_last_or_zero(self, ranker, skill_net):
        scores = ranker.scores(frozenset({"graph", "mining"}), skill_net)
        assert scores[3] <= min(scores[0], scores[1])

    def test_empty_query_all_zero(self, ranker, skill_net):
        scores = ranker.scores(frozenset(), skill_net)
        np.testing.assert_allclose(scores, 0.0)

    def test_unknown_query_all_zero(self, ranker, skill_net):
        scores = ranker.scores(frozenset({"quantum"}), skill_net)
        np.testing.assert_allclose(scores, 0.0)

    def test_deterministic(self, ranker, skill_net):
        q = frozenset({"graph", "vision"})
        a = ranker.scores(q, skill_net)
        b = ranker.scores(q, skill_net)
        np.testing.assert_allclose(a, b)


class TestCoverageRanker:
    def test_neighbor_coverage_propagates(self, skill_net):
        scores = CoverageExpertRanker(neighbor_weight=0.5).scores(
            frozenset({"graph", "mining"}), skill_net
        )
        # Connector (no own match) still scores via neighbor 0's full match.
        assert scores[2] == pytest.approx(0.5)
        assert scores[3] == 0.0

    def test_zero_neighbor_weight_is_pure_lexical(self, skill_net):
        scores = CoverageExpertRanker(neighbor_weight=0.0).scores(
            frozenset({"graph"}), skill_net
        )
        np.testing.assert_allclose(scores, [1.0, 1.0, 0.0, 0.0])


class TestPageRank:
    def test_restart_mass_spreads_to_neighbors(self, skill_net):
        scores = PageRankExpertRanker().scores(frozenset({"mining"}), skill_net)
        assert scores[0] > scores[2] > 0.0  # walk reaches the connector
        assert scores[3] == 0.0  # disconnected from all matches

    def test_invalid_damping(self):
        with pytest.raises(ValueError):
            PageRankExpertRanker(damping=1.5)

    def test_scores_sum_to_one(self, skill_net):
        scores = PageRankExpertRanker().scores(frozenset({"graph"}), skill_net)
        assert scores.sum() == pytest.approx(1.0, abs=1e-6)


class TestDocumentRanker:
    def test_rare_skill_weighs_more(self):
        """A match on a rare skill should outrank a match on a ubiquitous
        one (idf weighting)."""
        net = CollaborationNetwork()
        net.add_person("rare", {"quantum", "common"})
        net.add_person("common1", {"common"})
        net.add_person("common2", {"common"})
        order = DocumentExpertRanker().rank(["quantum"], net)
        assert order[0] == 0

    def test_profile_cosine_penalizes_dilution(self):
        net = CollaborationNetwork()
        net.add_person("focused", {"graph"})
        net.add_person("diluted", {"graph", "a", "b", "c", "d", "e"})
        scores = DocumentExpertRanker().scores(frozenset({"graph"}), net)
        assert scores[0] > scores[1]


class TestHits:
    def test_base_set_excludes_far_nodes(self, skill_net):
        scores = HitsExpertRanker().scores(frozenset({"mining"}), skill_net)
        assert scores[3] == 0.0

    def test_authority_rewards_connectivity(self):
        """In a star of matching nodes, the hub has the highest authority."""
        net = CollaborationNetwork()
        for i in range(5):
            net.add_person(f"p{i}", {"graph"})
        for i in range(1, 5):
            net.add_edge(0, i)
        order = HitsExpertRanker().rank(["graph"], net)
        assert order[0] == 0


class TestGcnRanker:
    """Integration-grade checks on the trained GCN (session fixtures)."""

    def test_correlates_with_coverage_oracle(
        self, small_dataset, small_gcn_ranker, small_query
    ):
        net = small_dataset.network
        scores = small_gcn_ranker.scores(frozenset(small_query), net)
        oracle = small_gcn_ranker.coverage_oracle(small_query, net)
        corr = np.corrcoef(scores, oracle)[0, 1]
        assert corr > 0.4, f"GCN barely tracks relevance (corr={corr:.2f})"

    def test_removing_matched_skill_worsens_rank(
        self, small_dataset, small_gcn_ranker, small_query
    ):
        net = small_dataset.network
        results = small_gcn_ranker.evaluate(small_query, net)
        top = results.top_k(5)
        expert = next(
            (p for p in top if net.skills(p) & set(small_query)), None
        )
        assert expert is not None
        skill = sorted(net.skills(expert) & set(small_query))[0]
        perturbed = net.copy()
        perturbed.remove_skill(expert, skill)
        assert (
            small_gcn_ranker.rank_of(expert, small_query, perturbed)
            > results.rank_of(expert)
        )

    def test_unfitted_ranker_raises(self, small_embedding, small_dataset):
        from repro.search import GcnExpertRanker

        ranker = GcnExpertRanker(small_embedding)
        with pytest.raises(RuntimeError, match="fit"):
            ranker.scores(frozenset({"x"}), small_dataset.network)

    def test_empty_query_zero(self, small_dataset, small_gcn_ranker):
        scores = small_gcn_ranker.scores(frozenset(), small_dataset.network)
        np.testing.assert_allclose(scores, 0.0)

    def test_handles_added_skill_from_universe(
        self, small_dataset, small_gcn_ranker, small_query
    ):
        """Perturbed networks with added skills must score without error
        and the addition of a query skill must improve that person."""
        net = small_dataset.network
        results = small_gcn_ranker.evaluate(small_query, net)
        person = int(results.order[25])
        missing = [s for s in small_query if not net.has_skill(person, s)]
        assert missing
        perturbed = net.copy()
        perturbed.add_skill(person, missing[0])
        assert (
            small_gcn_ranker.rank_of(person, small_query, perturbed)
            <= results.rank_of(person)
        )


class TestHitsSparseBaseSet:
    """Regression (ISSUE 2): the base-set adjacency must stay sparse — the
    seed allocated a dense m×m matrix, O(m²) memory around hub-dense
    query terms."""

    def test_hub_dense_base_set_stays_sparse(self):
        import tracemalloc

        net = CollaborationNetwork()
        hub = net.add_person("hub", {"graph"})
        for i in range(1500):
            leaf = net.add_person(f"leaf{i}", {"graph"})
            net.add_edge(hub, leaf)
        ranker = HitsExpertRanker()
        net.adjacency_csr()  # build the version-cached CSR outside the measurement
        tracemalloc.start()
        scores = ranker.scores(frozenset({"graph"}), net)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # The dense base-set matrix alone would be 1501^2 * 8 bytes ≈ 18 MB.
        assert peak < 5 * 1024 * 1024, f"base-set peak memory {peak} bytes"
        assert scores[hub] == pytest.approx(max(scores))  # hub keeps top authority


class TestDocumentRankerIdfStability:
    """Regression (ISSUE 2): perturbing one person's skills must not shift
    idf statistics — and thereby scores — of untouched people.  The seed
    refit the TF-IDF model on the perturbed profiles at every call."""

    @pytest.fixture
    def idf_net(self):
        net = CollaborationNetwork()
        net.add_person("a", {"graph", "common"})
        net.add_person("b", {"graph"})
        net.add_person("c", {"common"})
        net.add_person("d", {"solo"})
        return net

    def test_foreign_skill_flip_leaves_others_untouched(self, idf_net):
        from repro.graph.perturbations import AddSkill, apply_perturbations

        ranker = DocumentExpertRanker()
        q = frozenset({"graph"})
        base_scores = ranker.scores(q, idf_net)
        # Person 3 gains "common": under per-call refits this changed
        # df("common"), renormalized person 0's profile, and moved their
        # score for an unrelated query.
        overlay, q2 = apply_perturbations(idf_net, q, [AddSkill(3, "common")])
        pert = ranker.scores(q2, overlay)
        np.testing.assert_array_equal(pert[:3], base_scores[:3])
        # The from-scratch reference path pins the same base-fit idf.
        ranker.full_rebuild = True
        try:
            slow = ranker.scores(q2, overlay)
        finally:
            ranker.full_rebuild = False
        np.testing.assert_allclose(slow[:3], base_scores[:3], rtol=0, atol=1e-12)

    def test_model_refit_when_base_mutates(self, idf_net):
        ranker = DocumentExpertRanker()
        q = frozenset({"graph"})
        ranker.scores(q, idf_net)
        first = ranker._profile_model
        ranker.scores(q, idf_net)
        assert ranker._profile_model is first  # same version: fit once
        idf_net.add_skill(3, "graph")  # a *real* base mutation must refit
        ranker.scores(q, idf_net)
        assert ranker._profile_model is not first
