"""The incremental probe engine: exact parity, cache invalidation, memo.

The engine's contract (ISSUE 1, extended to every ranker in ISSUE 2) is
that incremental scores match full-rebuild scores to 1e-9 on arbitrary
perturbation sequences — for the GCN ranker and the PageRank/HITS/TF-IDF
baselines alike — that its caches are version-stamped against base-network
mutation and evict LRU-style (no cold-cache cliff), and that probe
memoization is observable through ``CounterfactualExplanation.n_probes``.
"""

import numpy as np
import pytest

from repro.datasets import toy_network
from repro.explain import BeamConfig, RelevanceTarget, beam_search_counterfactuals
from repro.explain.candidates import link_removal_candidates
from repro.graph import NetworkOverlay
from repro.graph.perturbations import (
    AddEdge,
    AddSkill,
    RemoveEdge,
    RemoveSkill,
    apply_perturbations,
)
from repro.search import (
    DocumentExpertRanker,
    HitsExpertRanker,
    PageRankExpertRanker,
    ProbeEngine,
    ProbeSession,
)


def _random_perturbations(net, rng, n):
    """A mixed, applicable skill/edge flip sequence against ``net``."""
    skills = sorted(net.skill_universe())
    edges = sorted(net.edges())
    perts = []
    state = NetworkOverlay(net)
    for _ in range(n):
        kind = int(rng.integers(0, 4))
        if kind == 0:
            p = int(rng.integers(0, net.n_people))
            s = skills[int(rng.integers(0, len(skills)))]
            pert = AddSkill(p, s) if not state.has_skill(p, s) else RemoveSkill(p, s)
        elif kind == 1:
            p = int(rng.integers(0, net.n_people))
            own = sorted(state.skills(p))
            if not own:
                continue
            pert = RemoveSkill(p, own[int(rng.integers(0, len(own)))])
        elif kind == 2:
            u, v = edges[int(rng.integers(0, len(edges)))]
            if not state.has_edge(u, v):
                continue
            pert = RemoveEdge(u, v)
        else:
            u = int(rng.integers(0, net.n_people))
            v = int(rng.integers(0, net.n_people))
            if u == v or state.has_edge(u, v):
                continue
            pert = AddEdge(u, v)
        pert.apply(state, frozenset())
        perts.append(pert)
    return perts


class TestDeltaScoringParity:
    """Engine scores == full-rebuild scores to 1e-9 (the exact-parity
    contract), across random mixed skill/edge perturbation sequences."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_sequences(self, small_gcn_ranker, small_dataset, small_query, seed):
        net = small_dataset.network
        rng = np.random.default_rng(seed)
        perts = _random_perturbations(net, rng, int(rng.integers(1, 6)))
        if not perts:
            pytest.skip("degenerate draw")
        query = frozenset(small_query)
        overlay, q2 = apply_perturbations(net, query, perts)
        assert isinstance(overlay, NetworkOverlay)
        fast = small_gcn_ranker.scores(q2, overlay)
        rebuilt, q3 = apply_perturbations(net, query, perts, full_rebuild=True)
        assert q3 == q2
        slow = small_gcn_ranker.scores(q3, rebuilt)
        np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-9)

    def test_skill_only_flips(self, small_gcn_ranker, small_dataset, small_query):
        net = small_dataset.network
        skill = sorted(net.skills(0))[0]
        overlay, q = apply_perturbations(
            net, small_query, [RemoveSkill(0, skill), AddSkill(3, "never-seen")]
        )
        fast = small_gcn_ranker.scores(q, overlay)
        slow = small_gcn_ranker.scores(q, overlay.materialize())
        np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-9)

    def test_edge_only_flips(self, small_gcn_ranker, small_dataset, small_query):
        net = small_dataset.network
        u, v = sorted(net.edges())[0]
        overlay, q = apply_perturbations(net, small_query, [RemoveEdge(u, v)])
        fast = small_gcn_ranker.scores(q, overlay)
        slow = small_gcn_ranker.scores(q, overlay.materialize())
        np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-9)

    def test_all_skills_removed_stays_exact(
        self, small_gcn_ranker, small_dataset, small_query
    ):
        """Removing every skill a person holds zeroes their centroid; the
        delta path must produce an *exact* zero row, not incremental
        subtraction residue amplified by the sim normalization (a repro of
        a confirmed ~1e-5 parity violation)."""
        net = small_dataset.network
        person = max(net.people(), key=lambda p: -len(net.skills(p)))
        perts = [RemoveSkill(person, s) for s in sorted(net.skills(person))]
        overlay, q = apply_perturbations(net, small_query, perts)
        fast = small_gcn_ranker.scores(q, overlay)
        rebuilt, _ = apply_perturbations(net, small_query, perts, full_rebuild=True)
        slow = small_gcn_ranker.scores(q, rebuilt)
        np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-9)

    def test_full_rebuild_escape_hatch(
        self, small_gcn_ranker, small_dataset, small_query
    ):
        net = small_dataset.network
        skill = sorted(net.skills(0))[0]
        overlay, q = apply_perturbations(net, small_query, [RemoveSkill(0, skill)])
        fast = small_gcn_ranker.scores(q, overlay)
        small_gcn_ranker.full_rebuild = True
        try:
            slow = small_gcn_ranker.scores(q, overlay)
        finally:
            small_gcn_ranker.full_rebuild = False
        np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-9)


class TestSessionInvalidation:
    """ProbeSession and ProbeEngine caches are version-stamped."""

    def test_session_rebuilt_on_base_mutation(self, small_embedding, small_dataset):
        from repro.search import GcnExpertRanker, GcnRankerConfig

        net = small_dataset.network.copy()
        ranker = GcnExpertRanker(
            small_embedding, GcnRankerConfig(epochs=2, n_train_queries=4, seed=0)
        ).fit(net)
        query = frozenset(sorted(net.skill_universe())[:2])
        skill = sorted(net.skills(1))[0]
        overlay, q = apply_perturbations(net, query, [RemoveSkill(1, skill)])
        ranker.scores(q, overlay)
        first_session = ranker._session
        assert isinstance(first_session, ProbeSession)
        assert first_session.valid_for(net)

        # Mutate the base: outstanding sessions must be invalidated and the
        # next overlay probe must rebuild against the new version.
        net.add_skill(2, "post-mutation-skill")
        assert not first_session.valid_for(net)
        overlay2, q2 = apply_perturbations(net, query, [AddSkill(0, "another")])
        fast = ranker.scores(q2, overlay2)
        slow = ranker.scores(q2, overlay2.materialize())
        np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-9)
        assert ranker._session is not first_session

    def test_stale_overlay_probe_raises(self, small_embedding, small_dataset):
        """An edge-only overlay whose base mutated must raise, not feed a
        corrupted adjacency delta into the GCN silently."""
        from repro.search import GcnExpertRanker, GcnRankerConfig

        net = small_dataset.network.copy()
        ranker = GcnExpertRanker(
            small_embedding, GcnRankerConfig(epochs=1, n_train_queries=2, seed=0)
        ).fit(net)
        query = frozenset(sorted(net.skill_universe())[:2])
        u, v = sorted(net.edges())[0]
        overlay, q = apply_perturbations(net, query, [RemoveEdge(u, v)])
        ranker.scores(q, overlay)  # fresh overlay: fine
        net.remove_edge(u, v)  # base drifts underneath the overlay
        with pytest.raises(RuntimeError, match="base network mutated"):
            ranker.scores(q, overlay)

    def test_engine_memo_cleared_on_base_mutation(self, small_dataset):
        from repro.search import CoverageExpertRanker

        net = small_dataset.network.copy()
        target = RelevanceTarget(CoverageExpertRanker(), k=5)
        engine = ProbeEngine(target, net)
        query = frozenset(sorted(net.skill_universe())[:2])
        engine.probe(0, query)
        engine.probe(0, query)
        assert (engine.hits, engine.misses) == (1, 1)
        net.add_skill(0, "memo-buster")
        engine.probe(0, query)  # stale memo must not answer this
        assert (engine.hits, engine.misses) == (1, 2)  # a miss, counters cumulative
        assert engine.base_version == net.version


class TestProbeMemoization:
    """Identical probe states are scored once; n_probes counts unique
    system evaluations."""

    @pytest.fixture
    def setup(self, small_dataset):
        from repro.search import CoverageExpertRanker

        net = small_dataset.network
        target = RelevanceTarget(CoverageExpertRanker(), k=5)
        query = sorted(net.skill_universe())[:3]
        return net, target, query

    def test_repeat_search_hits_memo(self, setup):
        net, target, query = setup
        engine = ProbeEngine(target, net)
        skill = sorted(net.skills(0))[0]
        candidates = [RemoveSkill(0, skill), AddSkill(1, "fresh-skill")]
        config = BeamConfig(beam_size=4, n_candidates=2, max_size=2)

        first = beam_search_counterfactuals(
            target, 0, query, net, candidates, config, "skill_removal", engine=engine
        )
        assert first.n_probes > 0
        assert engine.hits == 0  # fresh engine: nothing to hit yet

        second = beam_search_counterfactuals(
            target, 0, query, net, candidates, config, "skill_removal", engine=engine
        )
        assert engine.hits > 0
        assert second.n_probes == 0  # every probe answered from memory
        assert [c.perturbations for c in second.counterfactuals] == [
            c.perturbations for c in first.counterfactuals
        ]

    def test_link_removal_candidates_shared_with_beam(self, setup):
        net, target, query = setup
        engine = ProbeEngine(target, net)
        person = 0
        candidates, probes = link_removal_candidates(
            person, frozenset(query), net, target, t=4, radius=1, engine=engine
        )
        if not candidates:
            pytest.skip("no removable edges around this person")
        assert probes == engine.misses
        # Beam round one re-probes exactly these single-removal states:
        # with the shared engine they are all memo hits.
        hits_before = engine.hits
        beam_search_counterfactuals(
            target, person, query, net, candidates,
            BeamConfig(beam_size=4, n_candidates=4, max_size=1),
            "link_removal", engine=engine,
        )
        assert engine.hits >= hits_before + len(candidates)

    def test_unmemoized_engine_never_hits(self, setup):
        net, target, query = setup
        engine = ProbeEngine(target, net, memoize=False)
        engine.probe(0, query)
        engine.probe(0, query)
        assert engine.hits == 0
        assert engine.misses == 2

    def test_full_rebuild_engine_matches(self, setup):
        net, target, query = setup
        skill = sorted(net.skills(0))[0]
        overlay, q = apply_perturbations(net, query, [RemoveSkill(0, skill)])
        fast_engine = ProbeEngine(target, net)
        slow_engine = ProbeEngine(target, net, memoize=False, full_rebuild=True)
        assert fast_engine.probe(0, q, overlay) == slow_engine.probe(0, q, overlay)

    def test_foreign_network_not_memoized(self, setup):
        net, target, query = setup
        engine = ProbeEngine(target, net)
        other = net.copy()
        engine.probe(0, query, other)
        engine.probe(0, query, other)
        assert engine.hits == 0  # foreign base: served, but never cached

    def test_engine_binds_to_overlay_base(self, setup):
        """Explaining *on* a perturbed network (an overlay) must work:
        the engine binds to the overlay's base, and states derived from
        the overlay flatten onto that base with complete flip sets."""
        net, target, query = setup
        skill = sorted(net.skills(2))[0]
        overlay, q = apply_perturbations(net, query, [RemoveSkill(2, skill)])
        engine = ProbeEngine(target, overlay)
        assert engine.base is net
        assert engine.accepts(overlay)
        first = engine.probe(0, q, overlay)
        assert engine.probe(0, q, overlay) == first
        assert engine.hits == 1  # the overlay state itself is memoizable

    def test_explainer_accepts_overlay_network(self, setup, small_dataset):
        """End-to-end: beam search over a network that is itself an
        overlay (e.g. robustness probes on perturbed inputs)."""
        net, target, query = setup
        skill = sorted(net.skills(1))[0]
        overlay, q = apply_perturbations(net, query, [RemoveSkill(1, skill)])
        result = beam_search_counterfactuals(
            target, 0, q, overlay,
            [RemoveSkill(0, sorted(net.skills(0))[0])],
            BeamConfig(beam_size=2, n_candidates=1, max_size=1),
            "skill_removal",
        )
        assert result.n_probes >= 2


@pytest.fixture(params=["gcn", "pagerank", "hits", "tfidf"])
def any_ranker(request, small_gcn_ranker):
    """One instance of each delta-scoring ranker.  The GCN comes from the
    shared session fixture (training is expensive); the baselines are
    training-free and built fresh per test."""
    if request.param == "gcn":
        return small_gcn_ranker
    return {
        "pagerank": PageRankExpertRanker,
        "hits": HitsExpertRanker,
        "tfidf": DocumentExpertRanker,
    }[request.param]()


class TestMultiRankerParity:
    """Every ranker's DeltaSession matches its from-scratch full_rebuild
    scores to 1e-9 — and never materializes the overlay to get there."""

    @pytest.mark.parametrize("seed", range(4))
    def test_random_sequences(self, any_ranker, small_dataset, small_query, seed):
        net = small_dataset.network
        rng = np.random.default_rng(1000 + seed)
        perts = _random_perturbations(net, rng, int(rng.integers(1, 6)))
        if not perts:
            pytest.skip("degenerate draw")
        overlay, q2 = apply_perturbations(net, frozenset(small_query), perts)
        fast = any_ranker.scores(q2, overlay)
        assert overlay._mat is None, "delta path materialized the overlay"
        any_ranker.full_rebuild = True
        try:
            slow = any_ranker.scores(q2, overlay)
        finally:
            any_ranker.full_rebuild = False
        np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-9)

    def test_skill_only_flips(self, any_ranker, small_dataset, small_query):
        net = small_dataset.network
        skill = sorted(net.skills(0))[0]
        overlay, q = apply_perturbations(
            net, small_query, [RemoveSkill(0, skill), AddSkill(3, "never-seen")]
        )
        fast = any_ranker.scores(q, overlay)
        assert overlay._mat is None
        any_ranker.full_rebuild = True
        try:
            slow = any_ranker.scores(q, overlay)
        finally:
            any_ranker.full_rebuild = False
        np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-9)

    def test_edge_only_flips(self, any_ranker, small_dataset, small_query):
        net = small_dataset.network
        u, v = sorted(net.edges())[0]
        overlay, q = apply_perturbations(net, small_query, [RemoveEdge(u, v)])
        fast = any_ranker.scores(q, overlay)
        assert overlay._mat is None
        any_ranker.full_rebuild = True
        try:
            slow = any_ranker.scores(q, overlay)
        finally:
            any_ranker.full_rebuild = False
        np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-9)

    def test_query_term_skill_flip(self, any_ranker, small_dataset, small_query):
        """Flipping a *query-term* skill moves the restart/root/profile
        state every delta path special-cases; parity must survive it."""
        net = small_dataset.network
        term = sorted(small_query)[0]
        holder = sorted(net.people_with_skill(term))
        perts = []
        if holder:
            perts.append(RemoveSkill(holder[0], term))
        non_holder = next(p for p in net.people() if not net.has_skill(p, term))
        perts.append(AddSkill(non_holder, term))
        overlay, q = apply_perturbations(net, small_query, perts)
        fast = any_ranker.scores(q, overlay)
        assert overlay._mat is None
        any_ranker.full_rebuild = True
        try:
            slow = any_ranker.scores(q, overlay)
        finally:
            any_ranker.full_rebuild = False
        np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-9)

    def test_session_reused_across_probes(self, any_ranker, small_dataset, small_query):
        """Same base version -> same session object, whether the session
        lives in the ranker's private slot or in an installed registry
        (``_session_for`` is the lookup both paths share)."""
        net = small_dataset.network
        skill = sorted(net.skills(0))[0]
        ov1, q1 = apply_perturbations(net, small_query, [RemoveSkill(0, skill)])
        any_ranker.scores(q1, ov1)
        first = any_ranker._session_for(net)
        assert first is not None
        ov2, q2 = apply_perturbations(net, small_query, [AddSkill(1, "xyz-skill")])
        any_ranker.scores(q2, ov2)
        assert any_ranker._session_for(net) is first

    def test_engine_probe_never_materializes(
        self, any_ranker, small_dataset, small_query
    ):
        """ExES.probe_engine's hot path — probe an overlay through a
        RelevanceTarget — stays materialization-free for every ranker."""
        net = small_dataset.network
        engine = ProbeEngine(RelevanceTarget(any_ranker, k=10), net)
        skill = sorted(net.skills(0))[0]
        overlay, q = apply_perturbations(net, small_query, [RemoveSkill(0, skill)])
        engine.probe(0, q, overlay)
        assert overlay._mat is None
        assert engine.misses == 1


class TestOverlayChainingAcrossRankers:
    """branch() chaining and add-then-remove annihilation must be
    invisible: identical flips() memo keys and identical probe results as
    the equivalent flat overlay, for every ranker."""

    def test_chained_and_cancelled_flips_match_flat(
        self, any_ranker, small_dataset, small_query
    ):
        net = small_dataset.network
        q = frozenset(small_query)
        s0 = sorted(net.skills(0))[0]
        u, v = sorted(net.edges())[0]

        flat, qf = apply_perturbations(net, q, [RemoveSkill(0, s0), RemoveEdge(u, v)])

        ov1, _ = apply_perturbations(net, q, [RemoveSkill(0, s0)])
        chained = ov1.branch()
        chained.add_skill(3, "transient-skill")
        chained.remove_edge(u, v)
        chained.remove_skill(3, "transient-skill")  # annihilates the add
        assert chained.flips() == flat.flips()

        engine = ProbeEngine(RelevanceTarget(any_ranker, k=10), net)
        first = engine.probe(0, qf, flat)
        assert engine.probe(0, qf, chained) == first
        assert engine.hits == 1  # identical memo key: answered from memory

        np.testing.assert_allclose(
            any_ranker.scores(qf, chained),
            any_ranker.scores(qf, flat),
            rtol=0,
            atol=1e-9,
        )


class TestBatchedProbes:
    """probe_batch: memo-consistent, chunked through scores_batch, and
    falling back cleanly when batching cannot serve a state."""

    def test_batch_populates_memo_for_later_probes(
        self, small_gcn_ranker, small_dataset, small_query
    ):
        net = small_dataset.network
        engine = ProbeEngine(RelevanceTarget(small_gcn_ranker, k=10), net)
        skill = sorted(net.skills(0))[0]
        overlay, q = apply_perturbations(net, small_query, [RemoveSkill(0, skill)])
        (batched,) = engine.probe_batch([(0, q, overlay)])
        assert engine.misses == 1
        assert engine.probe(0, q, overlay) == batched  # answered from memo
        assert engine.hits == 1

    def test_batch_answers_repeats_from_memo(
        self, small_gcn_ranker, small_dataset, small_query
    ):
        net = small_dataset.network
        engine = ProbeEngine(RelevanceTarget(small_gcn_ranker, k=10), net)
        skill = sorted(net.skills(0))[0]
        overlay, q = apply_perturbations(net, small_query, [RemoveSkill(0, skill)])
        first = engine.probe(0, q, overlay)
        results = engine.probe_batch([(0, q, overlay), (1, q, overlay)])
        assert results[0] == first
        assert engine.hits == 1  # the repeat state cost no evaluation
        # Person 1 probes the same (query, flips) state: the score-vector
        # memo serves it without a second ranker evaluation, so the only
        # miss is the original probe.
        assert engine.misses == 1
        assert engine.score_hits == 1

    def test_large_group_chunked_through_scores_batch(
        self, small_gcn_ranker, small_dataset, small_query
    ):
        """A group bigger than _BATCH_GROUP flushes in chunks and every
        decision matches the sequential path."""
        net = small_dataset.network
        target = RelevanceTarget(small_gcn_ranker, k=10)
        states = []
        for p in range(12):
            skill = sorted(net.skills(p))[0] if net.skills(p) else None
            if skill is None:
                continue
            overlay, q = apply_perturbations(
                net, small_query, [RemoveSkill(p, skill)]
            )
            states.append((p, q, overlay))
        batched = ProbeEngine(target, net).probe_batch(states)
        seq_engine = ProbeEngine(target, net, memoize=False)
        assert batched == [seq_engine.probe(*s) for s in states]
        assert all(ov._mat is None for _, _, ov in states)

    def test_full_rebuild_engine_falls_back_per_state(
        self, small_gcn_ranker, small_dataset, small_query
    ):
        net = small_dataset.network
        target = RelevanceTarget(small_gcn_ranker, k=10)
        skill = sorted(net.skills(0))[0]
        overlay, q = apply_perturbations(net, small_query, [RemoveSkill(0, skill)])
        fast = ProbeEngine(target, net).probe_batch([(0, q, overlay)])
        slow_engine = ProbeEngine(target, net, memoize=False, full_rebuild=True)
        assert slow_engine.probe_batch([(0, q, overlay)]) == fast

    def test_sessionless_ranker_falls_back(self, small_dataset, small_query):
        from repro.search import CoverageExpertRanker

        net = small_dataset.network
        target = RelevanceTarget(CoverageExpertRanker(), k=10)
        engine = ProbeEngine(target, net)
        skill = sorted(net.skills(0))[0]
        overlay, q = apply_perturbations(net, small_query, [RemoveSkill(0, skill)])
        results = engine.probe_batch([(0, q, overlay), (0, q, None)])
        assert engine.misses == 2
        assert results[0] == engine.probe(0, q, overlay)  # memoized


class TestGcnBatchedSession:
    """scores_batch == per-probe scores == full rebuild, through both the
    session and the ranker-level dispatch."""

    def test_session_batch_parity(self, small_gcn_ranker, small_dataset, small_query):
        net = small_dataset.network
        overlays = []
        for p in range(6):
            perts = [AddSkill(p, f"batch-skill-{p}")]
            u, v = sorted(net.edges())[p]
            perts.append(RemoveEdge(u, v))
            overlay, q = apply_perturbations(net, small_query, perts)
            overlays.append(overlay)
        small_gcn_ranker.scores(q, overlays[0])  # open the session
        session = small_gcn_ranker._session_for(net)
        batched = session.scores_batch(q, overlays)
        for overlay, scores in zip(overlays, batched):
            np.testing.assert_allclose(
                scores, session.scores(q, overlay), rtol=0, atol=1e-9
            )
            assert overlay._mat is None
        small_gcn_ranker.full_rebuild = True
        try:
            for overlay, scores in zip(overlays, batched):
                np.testing.assert_allclose(
                    scores,
                    small_gcn_ranker.scores(q, overlay),
                    rtol=0,
                    atol=1e-9,
                )
        finally:
            small_gcn_ranker.full_rebuild = False

    def test_ranker_scores_batch_dispatch(
        self, small_gcn_ranker, small_dataset, small_query
    ):
        net = small_dataset.network
        skill = sorted(net.skills(0))[0]
        ov1, q = apply_perturbations(net, small_query, [RemoveSkill(0, skill)])
        ov2, _ = apply_perturbations(net, small_query, [AddSkill(1, "zz")])
        batched = small_gcn_ranker.scores_batch(q, [ov1, ov2])
        np.testing.assert_allclose(
            batched[0], small_gcn_ranker.scores(q, ov1), rtol=0, atol=1e-9
        )
        np.testing.assert_allclose(
            batched[1], small_gcn_ranker.scores(q, ov2), rtol=0, atol=1e-9
        )
        # Plain networks fall back to per-network scoring.
        plain = small_gcn_ranker.scores_batch(q, [net])
        np.testing.assert_allclose(
            plain[0], small_gcn_ranker.scores(q, net), rtol=0, atol=1e-9
        )

    def test_restricted_forward_counts(self, small_gcn_ranker, small_dataset, small_query, monkeypatch):
        """With the threshold wide open the session serves restricted
        forwards; with it closed it serves full forwards — both exact."""
        import repro.search.engine as engine_mod

        net = small_dataset.network
        skill = sorted(net.skills(3))[0]
        overlay, q = apply_perturbations(net, small_query, [RemoveSkill(3, skill)])
        reference = None
        small_gcn_ranker.full_rebuild = True
        try:
            reference = small_gcn_ranker.scores(q, overlay)
        finally:
            small_gcn_ranker.full_rebuild = False
        for fraction, attr in ((1.0, "restricted_probes"), (0.0, "full_forwards")):
            monkeypatch.setattr(engine_mod, "_RESTRICT_MAX_FRACTION", fraction)
            monkeypatch.setattr(engine_mod, "_BATCH_GROUP", 0)
            session = small_gcn_ranker.delta_session(net)
            np.testing.assert_allclose(
                session.scores(q, overlay), reference, rtol=0, atol=1e-9
            )
            assert getattr(session, attr) == 1


class TestLruEviction:
    """Bounded caches evict one least-recently-used entry at capacity —
    the PR-1 wholesale .clear() caused a cold-cache cliff mid-search."""

    def test_lru_cache_hot_key_survives(self):
        from repro.search.engine import _LruCache

        cache = _LruCache(3)
        cache.put("hot", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("hot") == 1  # refreshes recency
        cache.put("d", 4)  # evicts exactly one entry: the LRU ("b")
        assert cache.get("hot") == 1
        assert cache.get("b") is None
        assert len(cache) == 3

    def test_lru_cache_overwrite_does_not_evict(self):
        from repro.search.engine import _LruCache

        cache = _LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # overwrite at capacity must not evict "b"
        assert cache.get("b") == 2
        assert cache.get("a") == 10

    def test_engine_memo_hot_key_survives_overflow(self, small_dataset, monkeypatch):
        import repro.search.engine as engine_mod
        from repro.search import CoverageExpertRanker

        monkeypatch.setattr(engine_mod, "_MAX_MEMO", 4)
        net = small_dataset.network
        engine = ProbeEngine(RelevanceTarget(CoverageExpertRanker(), k=5), net)
        queries = [frozenset({s}) for s in sorted(net.skill_universe())[:8]]
        hot = queries[0]
        engine.probe(0, hot)
        for q in queries[1:]:
            engine.probe(0, q)  # repeatedly overflows the capacity-4 memo
            engine.probe(0, hot)  # the hot key stays recent
        hits = engine.hits
        engine.probe(0, hot)
        assert engine.hits == hits + 1  # still memoized after every overflow

    def test_feat_cache_hot_query_survives(
        self, small_gcn_ranker, small_dataset, monkeypatch
    ):
        import repro.search.engine as engine_mod

        monkeypatch.setattr(engine_mod, "_MAX_QUERY_CACHE", 2)
        net = small_dataset.network
        session = ProbeSession(small_gcn_ranker, net)
        overlay = NetworkOverlay(net)
        skills = sorted(net.skill_universe())
        hot, qa, qb = (frozenset({s}) for s in skills[:3])
        session.probe_inputs(hot, overlay)
        session.probe_inputs(qa, overlay)  # cache now at capacity 2
        session.probe_inputs(hot, overlay)  # refresh the hot query
        session.probe_inputs(qb, overlay)  # evicts qa, not the hot query
        assert hot in session._feat_cache
        assert qa not in session._feat_cache


class TestMemoIsolationAcrossBases:
    """Engines (and their two-level score memos) must never cross-serve
    states from a different base network or a mutated base version."""

    @staticmethod
    def _nets():
        net_a = toy_network(n_people=12, seed=0)
        net_b = toy_network(n_people=12, seed=3)
        return net_a, net_b

    def test_foreign_base_probes_are_not_served_from_memo(self):
        net_a, net_b = self._nets()
        ranker = PageRankExpertRanker()
        target = RelevanceTarget(ranker, k=3)
        engine = ProbeEngine(target, net_a)
        query = frozenset(sorted(net_a.skill_universe())[:2])
        person = 0

        # Warm the memos with net_a states (batch + sequential paths).
        ov_a = NetworkOverlay(net_a)
        ov_a.remove_skill(*next(iter((p, s) for p in net_a.people() for s in sorted(net_a.skills(p)))))
        engine.probe(person, query, ov_a)
        engine.probe_batch([(person, query, ov_a.branch())])
        assert len(engine._score_memo) > 0

        # The same-shaped probe over the *other* base must match a fresh
        # reference engine bound to that base, not net_a's cached answer.
        ov_b = NetworkOverlay(net_b)
        reference = ProbeEngine(target, net_b, memoize=False)
        for state_net in (net_b, ov_b):
            got = engine.probe_batch([(person, query, state_net)])[0]
            want = reference.probe(person, query, state_net)
            assert got == want

    def test_injected_engine_is_declined_for_foreign_networks(self):
        """Two explainers sharing one injected engine but explaining
        different base networks never share cached scores — the foreign
        explainer falls back to its own engine."""
        from repro.explain import FactualConfig, FactualExplainer

        net_a, net_b = self._nets()
        ranker = PageRankExpertRanker()
        target = RelevanceTarget(ranker, k=3)
        engine_a = ProbeEngine(target, net_a)
        shared = FactualExplainer(target, FactualConfig(), engine=engine_a)
        independent = FactualExplainer(target, FactualConfig())

        query = frozenset(sorted(net_b.skill_universe())[:3])
        person = 1
        misses_before = engine_a.misses
        got = shared.explain_query(person, query, net_b)
        want = independent.explain_query(person, query, net_b)
        assert engine_a.misses == misses_before  # net_a's engine untouched
        assert [a.value for a in got.attributions] == [
            a.value for a in want.attributions
        ]

    def test_base_version_drift_invalidates_score_memo(self):
        net = toy_network(n_people=12, seed=1).copy()
        ranker = PageRankExpertRanker()
        target = RelevanceTarget(ranker, k=3)
        engine = ProbeEngine(target, net)
        query = frozenset(sorted(net.skill_universe())[:2])

        ov = NetworkOverlay(net)
        p, s = next((p, s) for p in net.people() for s in sorted(net.skills(p)))
        ov.remove_skill(p, s)
        before = engine.probe_batch([(0, query, ov)])[0]
        assert len(engine._score_memo) > 0

        # Mutate the base: version bumps, every cached vector is stale.
        u = next(v for v in range(1, net.n_people) if not net.has_edge(0, v))
        net.add_edge(0, u)
        ov2 = NetworkOverlay(net)
        ov2.remove_skill(p, s)
        got = engine.probe_batch([(0, query, ov2)])[0]
        reference = ProbeEngine(target, net, memoize=False)
        want = reference.probe(0, query, ov2)
        assert got == want
        # The stale pre-mutation entries are gone (key includes version,
        # and _sync_base released them).
        for key in engine._score_memo._data:
            assert key[2] == engine.base_version
