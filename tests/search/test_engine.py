"""The incremental probe engine: exact parity, cache invalidation, memo.

The engine's contract (ISSUE 1) is that incremental scores match
full-rebuild scores to 1e-9 on arbitrary perturbation sequences, that its
caches are version-stamped against base-network mutation, and that probe
memoization is observable through ``CounterfactualExplanation.n_probes``.
"""

import numpy as np
import pytest

from repro.explain import BeamConfig, RelevanceTarget, beam_search_counterfactuals
from repro.explain.candidates import link_removal_candidates
from repro.graph import NetworkOverlay
from repro.graph.perturbations import (
    AddEdge,
    AddSkill,
    RemoveEdge,
    RemoveSkill,
    apply_perturbations,
)
from repro.search import ProbeEngine, ProbeSession


def _random_perturbations(net, rng, n):
    """A mixed, applicable skill/edge flip sequence against ``net``."""
    skills = sorted(net.skill_universe())
    edges = sorted(net.edges())
    perts = []
    state = NetworkOverlay(net)
    for _ in range(n):
        kind = int(rng.integers(0, 4))
        if kind == 0:
            p = int(rng.integers(0, net.n_people))
            s = skills[int(rng.integers(0, len(skills)))]
            pert = AddSkill(p, s) if not state.has_skill(p, s) else RemoveSkill(p, s)
        elif kind == 1:
            p = int(rng.integers(0, net.n_people))
            own = sorted(state.skills(p))
            if not own:
                continue
            pert = RemoveSkill(p, own[int(rng.integers(0, len(own)))])
        elif kind == 2:
            u, v = edges[int(rng.integers(0, len(edges)))]
            if not state.has_edge(u, v):
                continue
            pert = RemoveEdge(u, v)
        else:
            u = int(rng.integers(0, net.n_people))
            v = int(rng.integers(0, net.n_people))
            if u == v or state.has_edge(u, v):
                continue
            pert = AddEdge(u, v)
        pert.apply(state, frozenset())
        perts.append(pert)
    return perts


class TestDeltaScoringParity:
    """Engine scores == full-rebuild scores to 1e-9 (the exact-parity
    contract), across random mixed skill/edge perturbation sequences."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_sequences(self, small_gcn_ranker, small_dataset, small_query, seed):
        net = small_dataset.network
        rng = np.random.default_rng(seed)
        perts = _random_perturbations(net, rng, int(rng.integers(1, 6)))
        if not perts:
            pytest.skip("degenerate draw")
        query = frozenset(small_query)
        overlay, q2 = apply_perturbations(net, query, perts)
        assert isinstance(overlay, NetworkOverlay)
        fast = small_gcn_ranker.scores(q2, overlay)
        rebuilt, q3 = apply_perturbations(net, query, perts, full_rebuild=True)
        assert q3 == q2
        slow = small_gcn_ranker.scores(q3, rebuilt)
        np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-9)

    def test_skill_only_flips(self, small_gcn_ranker, small_dataset, small_query):
        net = small_dataset.network
        skill = sorted(net.skills(0))[0]
        overlay, q = apply_perturbations(
            net, small_query, [RemoveSkill(0, skill), AddSkill(3, "never-seen")]
        )
        fast = small_gcn_ranker.scores(q, overlay)
        slow = small_gcn_ranker.scores(q, overlay.materialize())
        np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-9)

    def test_edge_only_flips(self, small_gcn_ranker, small_dataset, small_query):
        net = small_dataset.network
        u, v = sorted(net.edges())[0]
        overlay, q = apply_perturbations(net, small_query, [RemoveEdge(u, v)])
        fast = small_gcn_ranker.scores(q, overlay)
        slow = small_gcn_ranker.scores(q, overlay.materialize())
        np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-9)

    def test_all_skills_removed_stays_exact(
        self, small_gcn_ranker, small_dataset, small_query
    ):
        """Removing every skill a person holds zeroes their centroid; the
        delta path must produce an *exact* zero row, not incremental
        subtraction residue amplified by the sim normalization (a repro of
        a confirmed ~1e-5 parity violation)."""
        net = small_dataset.network
        person = max(net.people(), key=lambda p: -len(net.skills(p)))
        perts = [RemoveSkill(person, s) for s in sorted(net.skills(person))]
        overlay, q = apply_perturbations(net, small_query, perts)
        fast = small_gcn_ranker.scores(q, overlay)
        rebuilt, _ = apply_perturbations(net, small_query, perts, full_rebuild=True)
        slow = small_gcn_ranker.scores(q, rebuilt)
        np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-9)

    def test_full_rebuild_escape_hatch(
        self, small_gcn_ranker, small_dataset, small_query
    ):
        net = small_dataset.network
        skill = sorted(net.skills(0))[0]
        overlay, q = apply_perturbations(net, small_query, [RemoveSkill(0, skill)])
        fast = small_gcn_ranker.scores(q, overlay)
        small_gcn_ranker.full_rebuild = True
        try:
            slow = small_gcn_ranker.scores(q, overlay)
        finally:
            small_gcn_ranker.full_rebuild = False
        np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-9)


class TestSessionInvalidation:
    """ProbeSession and ProbeEngine caches are version-stamped."""

    def test_session_rebuilt_on_base_mutation(self, small_embedding, small_dataset):
        from repro.search import GcnExpertRanker, GcnRankerConfig

        net = small_dataset.network.copy()
        ranker = GcnExpertRanker(
            small_embedding, GcnRankerConfig(epochs=2, n_train_queries=4, seed=0)
        ).fit(net)
        query = frozenset(sorted(net.skill_universe())[:2])
        skill = sorted(net.skills(1))[0]
        overlay, q = apply_perturbations(net, query, [RemoveSkill(1, skill)])
        ranker.scores(q, overlay)
        first_session = ranker._session
        assert isinstance(first_session, ProbeSession)
        assert first_session.valid_for(net)

        # Mutate the base: outstanding sessions must be invalidated and the
        # next overlay probe must rebuild against the new version.
        net.add_skill(2, "post-mutation-skill")
        assert not first_session.valid_for(net)
        overlay2, q2 = apply_perturbations(net, query, [AddSkill(0, "another")])
        fast = ranker.scores(q2, overlay2)
        slow = ranker.scores(q2, overlay2.materialize())
        np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-9)
        assert ranker._session is not first_session

    def test_stale_overlay_probe_raises(self, small_embedding, small_dataset):
        """An edge-only overlay whose base mutated must raise, not feed a
        corrupted adjacency delta into the GCN silently."""
        from repro.search import GcnExpertRanker, GcnRankerConfig

        net = small_dataset.network.copy()
        ranker = GcnExpertRanker(
            small_embedding, GcnRankerConfig(epochs=1, n_train_queries=2, seed=0)
        ).fit(net)
        query = frozenset(sorted(net.skill_universe())[:2])
        u, v = sorted(net.edges())[0]
        overlay, q = apply_perturbations(net, query, [RemoveEdge(u, v)])
        ranker.scores(q, overlay)  # fresh overlay: fine
        net.remove_edge(u, v)  # base drifts underneath the overlay
        with pytest.raises(RuntimeError, match="base network mutated"):
            ranker.scores(q, overlay)

    def test_engine_memo_cleared_on_base_mutation(self, small_dataset):
        from repro.search import CoverageExpertRanker

        net = small_dataset.network.copy()
        target = RelevanceTarget(CoverageExpertRanker(), k=5)
        engine = ProbeEngine(target, net)
        query = frozenset(sorted(net.skill_universe())[:2])
        engine.probe(0, query)
        engine.probe(0, query)
        assert (engine.hits, engine.misses) == (1, 1)
        net.add_skill(0, "memo-buster")
        engine.probe(0, query)  # stale memo must not answer this
        assert (engine.hits, engine.misses) == (1, 2)  # a miss, counters cumulative
        assert engine.base_version == net.version


class TestProbeMemoization:
    """Identical probe states are scored once; n_probes counts unique
    system evaluations."""

    @pytest.fixture
    def setup(self, small_dataset):
        from repro.search import CoverageExpertRanker

        net = small_dataset.network
        target = RelevanceTarget(CoverageExpertRanker(), k=5)
        query = sorted(net.skill_universe())[:3]
        return net, target, query

    def test_repeat_search_hits_memo(self, setup):
        net, target, query = setup
        engine = ProbeEngine(target, net)
        skill = sorted(net.skills(0))[0]
        candidates = [RemoveSkill(0, skill), AddSkill(1, "fresh-skill")]
        config = BeamConfig(beam_size=4, n_candidates=2, max_size=2)

        first = beam_search_counterfactuals(
            target, 0, query, net, candidates, config, "skill_removal", engine=engine
        )
        assert first.n_probes > 0
        assert engine.hits == 0  # fresh engine: nothing to hit yet

        second = beam_search_counterfactuals(
            target, 0, query, net, candidates, config, "skill_removal", engine=engine
        )
        assert engine.hits > 0
        assert second.n_probes == 0  # every probe answered from memory
        assert [c.perturbations for c in second.counterfactuals] == [
            c.perturbations for c in first.counterfactuals
        ]

    def test_link_removal_candidates_shared_with_beam(self, setup):
        net, target, query = setup
        engine = ProbeEngine(target, net)
        person = 0
        candidates, probes = link_removal_candidates(
            person, frozenset(query), net, target, t=4, radius=1, engine=engine
        )
        if not candidates:
            pytest.skip("no removable edges around this person")
        assert probes == engine.misses
        # Beam round one re-probes exactly these single-removal states:
        # with the shared engine they are all memo hits.
        hits_before = engine.hits
        beam_search_counterfactuals(
            target, person, query, net, candidates,
            BeamConfig(beam_size=4, n_candidates=4, max_size=1),
            "link_removal", engine=engine,
        )
        assert engine.hits >= hits_before + len(candidates)

    def test_unmemoized_engine_never_hits(self, setup):
        net, target, query = setup
        engine = ProbeEngine(target, net, memoize=False)
        engine.probe(0, query)
        engine.probe(0, query)
        assert engine.hits == 0
        assert engine.misses == 2

    def test_full_rebuild_engine_matches(self, setup):
        net, target, query = setup
        skill = sorted(net.skills(0))[0]
        overlay, q = apply_perturbations(net, query, [RemoveSkill(0, skill)])
        fast_engine = ProbeEngine(target, net)
        slow_engine = ProbeEngine(target, net, memoize=False, full_rebuild=True)
        assert fast_engine.probe(0, q, overlay) == slow_engine.probe(0, q, overlay)

    def test_foreign_network_not_memoized(self, setup):
        net, target, query = setup
        engine = ProbeEngine(target, net)
        other = net.copy()
        engine.probe(0, query, other)
        engine.probe(0, query, other)
        assert engine.hits == 0  # foreign base: served, but never cached

    def test_engine_binds_to_overlay_base(self, setup):
        """Explaining *on* a perturbed network (an overlay) must work:
        the engine binds to the overlay's base, and states derived from
        the overlay flatten onto that base with complete flip sets."""
        net, target, query = setup
        skill = sorted(net.skills(2))[0]
        overlay, q = apply_perturbations(net, query, [RemoveSkill(2, skill)])
        engine = ProbeEngine(target, overlay)
        assert engine.base is net
        assert engine.accepts(overlay)
        first = engine.probe(0, q, overlay)
        assert engine.probe(0, q, overlay) == first
        assert engine.hits == 1  # the overlay state itself is memoizable

    def test_explainer_accepts_overlay_network(self, setup, small_dataset):
        """End-to-end: beam search over a network that is itself an
        overlay (e.g. robustness probes on perturbed inputs)."""
        net, target, query = setup
        skill = sorted(net.skills(1))[0]
        overlay, q = apply_perturbations(net, query, [RemoveSkill(1, skill)])
        result = beam_search_counterfactuals(
            target, 0, q, overlay,
            [RemoveSkill(0, sorted(net.skills(0))[0])],
            BeamConfig(beam_size=2, n_candidates=1, max_size=1),
            "skill_removal",
        )
        assert result.n_probes >= 2
