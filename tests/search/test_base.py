"""Ranking interface tests (RankedResults, RelevanceJudge, tie-breaking)."""

import numpy as np
import pytest

from repro.datasets import toy_network
from repro.graph import CollaborationNetwork
from repro.search import ExpertSearchSystem, RelevanceJudge
from repro.search.base import RankedResults, query_match_vector


class FixedScoreRanker(ExpertSearchSystem):
    """Returns a canned score vector (for interface tests)."""

    def __init__(self, score_vector):
        self._scores = np.asarray(score_vector, dtype=float)

    def scores(self, query, network):
        return self._scores


@pytest.fixture
def net4():
    net = CollaborationNetwork()
    for i in range(4):
        net.add_person(f"p{i}", {"a"} if i % 2 == 0 else {"b"})
    return net


class TestRankedResults:
    def test_order_score_descending(self, net4):
        ranker = FixedScoreRanker([0.1, 0.9, 0.5, 0.3])
        results = ranker.evaluate(["a"], net4)
        assert list(results.order) == [1, 2, 3, 0]

    def test_ties_break_by_id(self, net4):
        ranker = FixedScoreRanker([0.5, 0.5, 0.9, 0.5])
        results = ranker.evaluate(["a"], net4)
        assert list(results.order) == [2, 0, 1, 3]

    def test_rank_of_one_based(self, net4):
        results = FixedScoreRanker([0.1, 0.9, 0.5, 0.3]).evaluate(["a"], net4)
        assert results.rank_of(1) == 1
        assert results.rank_of(0) == 4

    def test_top_k_and_relevance(self, net4):
        results = FixedScoreRanker([0.1, 0.9, 0.5, 0.3]).evaluate(["a"], net4)
        assert results.top_k(2) == [1, 2]
        assert results.is_relevant(2, 2)
        assert not results.is_relevant(3, 2)

    def test_wrong_shape_rejected(self, net4):
        ranker = FixedScoreRanker([0.1, 0.2])
        with pytest.raises(ValueError, match="shape"):
            ranker.evaluate(["a"], net4)


class TestRelevanceJudge:
    def test_judge_matches_rank(self, net4):
        ranker = FixedScoreRanker([0.1, 0.9, 0.5, 0.3])
        judge = RelevanceJudge(ranker, k=2)
        assert judge(1, ["a"], net4) is True
        assert judge(0, ["a"], net4) is False

    def test_with_rank_consistent(self, net4):
        ranker = FixedScoreRanker([0.1, 0.9, 0.5, 0.3])
        judge = RelevanceJudge(ranker, k=2)
        relevant, rank = judge.with_rank(2, ["a"], net4)
        assert relevant and rank == 2

    def test_invalid_k(self, net4):
        with pytest.raises(ValueError):
            RelevanceJudge(FixedScoreRanker([1, 2, 3, 4]), k=0)


class TestQueryMatchVector:
    def test_fraction_of_terms(self, net4):
        vec = query_match_vector(frozenset({"a", "b"}), net4)
        np.testing.assert_allclose(vec, [0.5, 0.5, 0.5, 0.5])

    def test_empty_query(self, net4):
        assert query_match_vector(frozenset(), net4).sum() == 0.0

    def test_unknown_terms(self, net4):
        assert query_match_vector(frozenset({"zz"}), net4).sum() == 0.0
