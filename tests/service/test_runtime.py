"""Unit tests for the resilience runtime's mechanism and policy layers.

Mechanism (:mod:`repro.runtime`): cooperative budgets, the thread-local
budget scope, the delta-bypass switch, and the fault-point hooks.  Policy
(:mod:`repro.service.runtime` / :mod:`repro.service.faults`): admission
control, circuit breakers, stats, and the deterministic fault injector.
Everything here is exercised in isolation — no networks, no rankers — so
the contracts the chaos suite leans on are pinned cheaply.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.runtime import (
    Budget,
    BudgetExceeded,
    active_budget,
    budget_scope,
    check_budget,
    delta_bypass,
    delta_bypassed,
    fault_injection,
    fault_point,
)
from repro.service import (
    AdmissionControl,
    CircuitBreaker,
    ExplainError,
    FaultInjector,
    FaultPlan,
    InjectedSessionError,
    InjectedStaleBaseError,
    ResilienceConfig,
    ServiceStats,
)


# ---------------------------------------------------------------------------
# Budget
# ---------------------------------------------------------------------------


class TestBudget:
    def test_unlimited_budget_never_trips(self):
        budget = Budget()
        budget.charge(10_000)
        budget.check()
        assert budget.tripped is None
        assert budget.remaining_seconds() is None

    def test_probe_limit_trips_with_reason(self):
        budget = Budget(probe_limit=5)
        budget.charge(4)
        with pytest.raises(BudgetExceeded) as exc_info:
            budget.charge(1)
        assert exc_info.value.reason == "probe_budget"
        assert budget.tripped == "probe_budget"

    def test_charge_is_before_work(self):
        # The charge lands even though the check raises: the overshoot is
        # bounded by the single flush that was about to run.
        budget = Budget(probe_limit=2)
        with pytest.raises(BudgetExceeded):
            budget.charge(10)
        assert budget.probes == 10

    def test_deadline_trips_with_reason(self):
        budget = Budget(timeout_seconds=0.005)
        time.sleep(0.01)
        with pytest.raises(BudgetExceeded) as exc_info:
            budget.check()
        assert exc_info.value.reason == "deadline"
        assert budget.tripped == "deadline"

    def test_poll_records_without_raising(self):
        budget = Budget(probe_limit=1)
        budget.probes = 1
        assert budget.poll() == "probe_budget"
        assert budget.tripped == "probe_budget"

    def test_tripped_keeps_first_reason(self):
        budget = Budget(timeout_seconds=0.001, probe_limit=1)
        budget.probes = 5
        first = budget.poll()
        time.sleep(0.005)
        budget.poll()
        assert budget.tripped == first

    def test_remaining_seconds_counts_down(self):
        budget = Budget(timeout_seconds=60.0)
        remaining = budget.remaining_seconds()
        assert remaining is not None and 0 < remaining <= 60.0


class TestBudgetScope:
    def test_no_scope_means_noop_checks(self):
        assert active_budget() is None
        check_budget()  # must not raise
        check_budget(10_000)

    def test_scope_installs_and_restores(self):
        budget = Budget(probe_limit=100)
        with budget_scope(budget):
            assert active_budget() is budget
            check_budget(3)
        assert active_budget() is None
        assert budget.probes == 3

    def test_scopes_nest_innermost_wins(self):
        outer, inner = Budget(probe_limit=10), Budget(probe_limit=10)
        with budget_scope(outer):
            with budget_scope(inner):
                check_budget(2)
            check_budget(5)
        assert inner.probes == 2
        assert outer.probes == 5

    def test_check_budget_raises_through_scope(self):
        with budget_scope(Budget(probe_limit=1)):
            with pytest.raises(BudgetExceeded):
                check_budget(2)

    def test_scope_is_thread_local(self):
        budget = Budget(probe_limit=1)
        seen = {}

        def other_thread():
            seen["budget"] = active_budget()

        with budget_scope(budget):
            t = threading.Thread(target=other_thread)
            t.start()
            t.join()
        assert seen["budget"] is None


class TestDeltaBypass:
    def test_off_by_default(self):
        assert not delta_bypassed()

    def test_scoped_and_restored(self):
        with delta_bypass():
            assert delta_bypassed()
            with delta_bypass():
                assert delta_bypassed()
            assert delta_bypassed()
        assert not delta_bypassed()

    def test_thread_local(self):
        seen = {}

        def other_thread():
            seen["bypassed"] = delta_bypassed()

        with delta_bypass():
            t = threading.Thread(target=other_thread)
            t.start()
            t.join()
        assert seen["bypassed"] is False


# ---------------------------------------------------------------------------
# AdmissionControl
# ---------------------------------------------------------------------------


class TestAdmissionControl:
    def test_admits_until_max_in_flight(self):
        admission = AdmissionControl(max_in_flight=2, session_share=1.0)
        assert admission.try_acquire("a") is None
        assert admission.try_acquire("b") is None
        assert admission.try_acquire("c") == "load_shed:max_in_flight"
        assert admission.in_flight == 2

    def test_release_frees_a_slot(self):
        admission = AdmissionControl(max_in_flight=1, session_share=1.0)
        assert admission.try_acquire("a") is None
        assert admission.try_acquire("b") is not None
        admission.release("a")
        assert admission.try_acquire("b") is None
        assert admission.in_flight == 1

    def test_session_fair_share(self):
        # cap = max(1, int(4 * 0.5)) = 2: one session cannot hog the pool.
        admission = AdmissionControl(max_in_flight=4, session_share=0.5)
        assert admission.try_acquire("greedy") is None
        assert admission.try_acquire("greedy") is None
        assert admission.try_acquire("greedy") == "load_shed:session_share"
        assert admission.try_acquire("other") is None

    def test_session_cap_floor_is_one(self):
        admission = AdmissionControl(max_in_flight=1, session_share=0.1)
        assert admission.session_cap == 1
        assert admission.try_acquire("a") is None

    def test_release_cleans_up_session_counts(self):
        admission = AdmissionControl(max_in_flight=4, session_share=0.5)
        admission.try_acquire("a")
        admission.release("a")
        assert admission._per_session == {}


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


KEY = ("relevance", 1, 0)


class TestCircuitBreaker:
    def test_closed_allows_delta(self):
        breaker = CircuitBreaker(failure_threshold=3)
        assert breaker.allows_delta(KEY)
        assert not breaker.is_open(KEY)

    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(2):
            breaker.record_failure(KEY)
            assert breaker.allows_delta(KEY)
        breaker.record_failure(KEY)
        assert breaker.is_open(KEY)
        assert not breaker.allows_delta(KEY)
        assert breaker.opened == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure(KEY)
        breaker.record_success(KEY)
        breaker.record_failure(KEY)
        assert not breaker.is_open(KEY)

    def test_half_open_admits_exactly_one_trial(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=10.0, clock=clock
        )
        breaker.record_failure(KEY)
        assert not breaker.allows_delta(KEY)
        clock.advance(10.0)
        assert breaker.allows_delta(KEY)  # the trial slot
        assert not breaker.allows_delta(KEY)  # trial already in flight

    def test_trial_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=10.0, clock=clock
        )
        breaker.record_failure(KEY)
        clock.advance(10.0)
        assert breaker.allows_delta(KEY)
        breaker.record_success(KEY)
        assert not breaker.is_open(KEY)
        assert breaker.allows_delta(KEY)

    def test_trial_failure_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=10.0, clock=clock
        )
        breaker.record_failure(KEY)
        clock.advance(10.0)
        assert breaker.allows_delta(KEY)
        breaker.record_failure(KEY)
        clock.advance(5.0)  # cooldown restarted: 5s is not enough
        assert not breaker.allows_delta(KEY)
        clock.advance(5.0)
        assert breaker.allows_delta(KEY)

    def test_trial_inconclusive_frees_the_slot(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=10.0, clock=clock
        )
        breaker.record_failure(KEY)
        clock.advance(10.0)
        assert breaker.allows_delta(KEY)
        breaker.trial_inconclusive(KEY)
        assert breaker.is_open(KEY)  # still open ...
        assert breaker.allows_delta(KEY)  # ... but the next caller may try

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(failure_threshold=1, clock=FakeClock())
        breaker.record_failure(KEY)
        other = ("membership", 3, 7, 1)
        assert breaker.allows_delta(other)
        assert not breaker.is_open(other)


# ---------------------------------------------------------------------------
# ServiceStats / configs
# ---------------------------------------------------------------------------


class TestServiceStats:
    def test_bump_get_snapshot(self):
        stats = ServiceStats()
        stats.bump("outcome.ok")
        stats.bump("outcome.ok", 2)
        stats.bump("delta_failure")
        assert stats.get("outcome.ok") == 3
        assert stats.get("missing") == 0
        assert stats.snapshot() == {"outcome.ok": 3, "delta_failure": 1}

    def test_snapshot_is_a_copy(self):
        stats = ServiceStats()
        stats.bump("x")
        snap = stats.snapshot()
        snap["x"] = 99
        assert stats.get("x") == 1


class TestResilienceConfig:
    def test_defaults_are_inert(self):
        config = ResilienceConfig()
        assert config.max_in_flight is None
        assert config.full_rebuild_retry

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_in_flight": 0},
            {"session_share": 0.0},
            {"session_share": 1.5},
            {"breaker_failure_threshold": 0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ResilienceConfig(**kwargs)


class TestExplainError:
    def test_str_is_kind_and_message(self):
        error = ExplainError(kind="ValueError", message="bad seed")
        assert str(error) == "ValueError: bad seed"

    def test_traceback_excluded_from_equality(self):
        a = ExplainError(kind="E", message="m", traceback="trace-a")
        b = ExplainError(kind="E", message="m", traceback="trace-b")
        assert a == b


# ---------------------------------------------------------------------------
# FaultPlan / FaultInjector
# ---------------------------------------------------------------------------


class FakeEngine:
    def __init__(self):
        self._memo = {"k": 1}
        self._score_memo = {"k": 2}


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(session_error_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(memo_evict_rate=-0.1)


class TestFaultInjector:
    def test_zero_rates_never_fire(self):
        injector = FaultInjector(FaultPlan(), seed=0)
        for i in range(50):
            injector.fire("session.scores", key=(("q",), i))
        assert injector.total_fired() == 0

    def test_full_rate_always_raises_session_error(self):
        injector = FaultInjector(FaultPlan(session_error_rate=1.0), seed=0)
        with pytest.raises(InjectedSessionError):
            injector.fire("session.scores", key=(("q",),))
        assert injector.fired == {"session.scores/error": 1}

    def test_stale_base_effect(self):
        injector = FaultInjector(FaultPlan(stale_base_rate=1.0), seed=0)
        with pytest.raises(InjectedStaleBaseError):
            injector.fire("session.scores", key=(("q",),))

    def test_team_site_uses_team_rate(self):
        # session_error_rate must not leak onto the team site and vice
        # versa — the two families degrade independently.
        injector = FaultInjector(FaultPlan(session_error_rate=1.0), seed=0)
        injector.fire("team.form", key=(("q",), 3))  # must not raise
        injector = FaultInjector(FaultPlan(team_error_rate=1.0), seed=0)
        with pytest.raises(InjectedSessionError):
            injector.fire("team.form", key=(("q",), 3))

    def test_eviction_clears_engine_memos(self):
        injector = FaultInjector(FaultPlan(memo_evict_rate=1.0), seed=0)
        engine = FakeEngine()
        injector.fire("session.scores", key=(("q",),), engine=engine)
        assert engine._memo == {} and engine._score_memo == {}
        assert injector.fired == {"session.scores/evict": 1}

    def test_deterministic_across_call_order(self):
        plan = FaultPlan(session_error_rate=0.3, stale_base_rate=0.2)
        keys = [(("q", i), ("f", j)) for i in range(10) for j in range(3)]

        def outcomes(key_order):
            injector = FaultInjector(plan, seed=7)
            result = {}
            for key in key_order:
                try:
                    injector.fire("session.scores", key=key)
                    result[key] = None
                except InjectedSessionError:
                    result[key] = "error"
                except InjectedStaleBaseError:
                    result[key] = "stale"
            return result

        forward = outcomes(keys)
        backward = outcomes(list(reversed(keys)))
        assert forward == backward
        assert set(forward.values()) > {None}  # some keys actually fault

    def test_seed_changes_the_fault_set(self):
        plan = FaultPlan(session_error_rate=0.3)
        keys = [(("q", i),) for i in range(40)]

        def faulted(seed):
            injector = FaultInjector(plan, seed=seed)
            hits = set()
            for key in keys:
                try:
                    injector.fire("session.scores", key=key)
                except InjectedSessionError:
                    hits.add(key)
            return hits

        assert faulted(1) != faulted(2)

    def test_rate_roughly_respected(self):
        plan = FaultPlan(session_error_rate=0.25)
        injector = FaultInjector(plan, seed=3)
        errors = 0
        for i in range(400):
            try:
                injector.fire("session.scores", key=(("q", i),))
            except InjectedSessionError:
                errors += 1
        assert 0.15 < errors / 400 < 0.35


class TestFaultPoint:
    def test_noop_without_injector(self):
        fault_point("session.scores", key=(("q",),))  # must not raise

    def test_scoped_injection(self):
        injector = FaultInjector(FaultPlan(session_error_rate=1.0), seed=0)
        with fault_injection(injector):
            with pytest.raises(InjectedSessionError):
                fault_point("session.scores", key=(("q",),))
        fault_point("session.scores", key=(("q",),))  # uninstalled again
