"""Chaos suite: seeded fault injection against the full service stack.

The resilience contract under test (the PR's acceptance invariant):

1. **Typed termination** — with faults injected into delta sessions and
   memos, every request in ``explain_many`` comes back as a typed
   :class:`ExplainResponse` (an outcome from :data:`OUTCOMES`, an error
   object iff not ok) — no hung shards, no raw exceptions.
2. **Parity under faults** — every *completed* explanation is
   bit-identical to the full-rebuild reference
   (:func:`explanation_signature`): the degradation ladder may change
   *how* an answer is computed, never *what* it is.
3. **Bounded latency** — every request carrying ``timeout_seconds=t``
   returns within ``t + 0.25s`` (cooperative checks at probe-flush
   granularity bound the overshoot to one flush).

Faults are deterministic (seeded BLAKE2 rolls on probe-state keys), so
each grid cell replays identically; the quick grid runs by default and
the full sweep rides the ``slow`` marker.
"""

from __future__ import annotations

import dataclasses
import threading
import time

import pytest

from repro.datasets import toy_network
from repro.graph import NetworkOverlay, network_from_dict, network_to_dict
from repro.embeddings import train_ppmi_embedding
from repro.explain import BeamConfig, FactualConfig
from repro.linkpred import HeuristicLinkPredictor
from repro.search import (
    DocumentExpertRanker,
    HitsExpertRanker,
    PageRankExpertRanker,
)
from repro.service import (
    EXPLANATION_KINDS,
    OUTCOMES,
    EngineRegistry,
    ExplanationService,
    FaultInjector,
    FaultPlan,
    FlushBus,
    ResilienceConfig,
    explanation_signature,
    fault_injection,
    make_requests,
)
from repro.service.runtime import CircuitBreaker
from repro.team import CoverTeamFormer

K = 3
FACTUAL = FactualConfig(
    n_samples=16, max_samples=32, selection_samples=8, exact_limit=5
)
BEAM = BeamConfig(beam_size=3, n_candidates=4, max_size=2, n_explanations=1)

_RANKERS = {
    "pagerank": PageRankExpertRanker,
    "hits": HitsExpertRanker,
    "tfidf": DocumentExpertRanker,
}


@pytest.fixture(scope="module")
def net():
    return toy_network(n_people=16, seed=3)


@pytest.fixture(scope="module")
def embedding(net):
    profiles = [sorted(net.skills(p)) for p in net.people()] * 2
    return train_ppmi_embedding(profiles, dim=8, min_count=1)


@pytest.fixture(scope="module")
def predictor(net):
    return HeuristicLinkPredictor("common_neighbors").fit(net)


def _service(net, embedding, predictor, ranker_name="pagerank", resilience=None):
    """A fresh service over a fresh ranker and registry — chaos runs must
    not share memos across tests (a warm memo absorbs probe charges and
    hides the behavior under test)."""
    ranker = _RANKERS[ranker_name]()
    return ExplanationService(
        network=net,
        ranker=ranker,
        embedding=embedding,
        link_predictor=predictor,
        former=CoverTeamFormer(ranker),
        k=K,
        factual_config=FACTUAL,
        beam_config=BEAM,
        registry=EngineRegistry(),
        resilience=resilience,
    )


def _workload(service, net, kinds=EXPLANATION_KINDS):
    """Every kind over both decision families: an expert and a
    non-expert for two queries (relevance), plus a team member and the
    seed's closest non-member (membership)."""
    skills = sorted(net.skill_universe())
    requests = []
    for query in (tuple(skills[:3]), tuple(skills[3:6])):
        order = service.ranker.evaluate(query, net).order
        expert, non_expert = int(order[0]), int(order[K])
        requests.extend(make_requests(kinds, expert, query, tag="expert"))
        requests.extend(make_requests(kinds, non_expert, query, tag="non_expert"))
    query = tuple(skills[:3])
    order = service.ranker.evaluate(query, net).order
    seed_member = int(order[0])
    team = service.former.form(query, net, seed_member=seed_member)
    others = sorted(team.members - {seed_member})
    if others:
        requests.extend(
            make_requests(
                kinds, others[0], query,
                team=True, seed_member=seed_member, tag="member",
            )
        )
    return requests


def _reference_signatures(service, requests):
    """Full-rebuild reference signatures, computed *before* any injector
    is installed — the parity target every chaos cell is judged against."""
    service.set_full_rebuild(True)
    try:
        responses = service.explain_many(requests, max_workers=1)
    finally:
        service.set_full_rebuild(False)
    signatures = {}
    for response in responses:
        assert response.ok, response.error
        signatures[response.request] = explanation_signature(
            response.request, response.explanation
        )
    return signatures


def _assert_chaos_invariants(responses, reference, injector):
    assert injector.total_fired() > 0, "chaos run injected nothing"
    completed = 0
    for response in responses:
        assert response.outcome in OUTCOMES
        assert response.ok == (response.error is None)
        if response.outcome in ("ok", "degraded"):
            assert response.explanation is not None
        else:
            assert response.error is not None
        if response.outcome == "ok":
            completed += 1
            assert (
                explanation_signature(response.request, response.explanation)
                == reference[response.request]
            ), f"parity broken under faults for {response.request}"
    assert completed > 0, "chaos run completed nothing"


MIXED_PLAN = FaultPlan(
    session_error_rate=0.15,
    stale_base_rate=0.05,
    memo_evict_rate=0.10,
    team_error_rate=0.15,
)
EVICT_SLOW_PLAN = FaultPlan(
    memo_evict_rate=0.30,
    slow_probe_rate=0.10,
    slow_probe_seconds=0.002,
)

QUICK_GRID = [
    ("pagerank", MIXED_PLAN, 11, 1),
    ("pagerank", EVICT_SLOW_PLAN, 12, 4),
]
FULL_GRID = [
    (ranker, plan, seed, workers)
    for ranker in ("pagerank", "hits", "tfidf")
    for plan in (MIXED_PLAN, EVICT_SLOW_PLAN)
    for seed in (11, 12, 13)
    for workers in (1, 4)
]


class TestChaosInvariants:
    @pytest.mark.parametrize("ranker_name,plan,seed,workers", QUICK_GRID)
    def test_quick_grid(
        self, net, embedding, predictor, ranker_name, plan, seed, workers
    ):
        self._run_cell(net, embedding, predictor, ranker_name, plan, seed, workers)

    @pytest.mark.slow
    @pytest.mark.parametrize("ranker_name,plan,seed,workers", FULL_GRID)
    def test_full_sweep(
        self, net, embedding, predictor, ranker_name, plan, seed, workers
    ):
        self._run_cell(net, embedding, predictor, ranker_name, plan, seed, workers)

    @staticmethod
    def _run_cell(net, embedding, predictor, ranker_name, plan, seed, workers):
        service = _service(net, embedding, predictor, ranker_name)
        requests = _workload(service, net)
        reference = _reference_signatures(service, requests)
        injector = FaultInjector(plan, seed=seed)
        with fault_injection(injector):
            responses = service.explain_many(requests, max_workers=workers)
        _assert_chaos_invariants(responses, reference, injector)
        # Injected faults are retryable by construction: the reference
        # tier never reaches the fault sites, so every faulted request is
        # rescued and the whole batch completes.
        assert all(r.outcome == "ok" for r in responses)
        if service.stats.get("delta_failure"):
            assert service.stats.get("fallback.full_rebuild") > 0


class TestFusedFlushChaos:
    """Faults around fused probe flushes must stay scoped to their own
    request.  Budget charges and fault points fire on each participant's
    thread *before* it joins a bus group, so a faulted participant never
    contaminates the merged kernel call it would have ridden — its
    group-mates complete parity-exact, and the faulted request degrades
    (and is rescued) exactly as it would have flushing alone."""

    @pytest.mark.parametrize("seed", (21, 22))
    def test_fault_mid_fused_flush_degrades_only_faulted(
        self, net, embedding, predictor, seed
    ):
        service = _service(net, embedding, predictor)
        # A wide batching window so concurrent shards' flushes actually
        # merge while the injector is firing.
        service.registry.flush_bus = FlushBus(window=0.02)
        requests = _workload(service, net)
        reference = _reference_signatures(service, requests)
        injector = FaultInjector(MIXED_PLAN, seed=seed)
        with fault_injection(injector):
            responses = service.explain_many(requests, max_workers=4)
        _assert_chaos_invariants(responses, reference, injector)
        # Retryable faults are rescued per-request: a fault landing on
        # one fused-flush participant leaves the whole batch completing.
        assert all(r.outcome == "ok" for r in responses)
        # The bus was live during the chaos run (probe flushes routed
        # through it), not silently bypassed.
        assert service.stats.get("bus.flushes") > 0


class TestTimeoutBound:
    def test_deadline_bound_holds_under_faults(self, net, embedding, predictor):
        """Every request with ``timeout_seconds=t`` answers within
        ``t + 0.25s`` even while probes stall and sessions fail."""
        timeout = 0.05
        service = _service(net, embedding, predictor)
        requests = [
            dataclasses.replace(r, timeout_seconds=timeout)
            for r in _workload(service, net)
        ]
        plan = FaultPlan(
            session_error_rate=0.10,
            slow_probe_rate=0.30,
            slow_probe_seconds=0.01,
        )
        injector = FaultInjector(plan, seed=5)
        with fault_injection(injector):
            responses = service.explain_many(requests, max_workers=1)
        assert injector.total_fired() > 0
        for response in responses:
            assert response.outcome in OUTCOMES
            assert response.elapsed_seconds <= timeout + 0.25, (
                f"{response.request.kind} took {response.elapsed_seconds:.3f}s "
                f"against a {timeout}s deadline"
            )
            if response.outcome == "timed_out":
                assert response.error.kind == "BudgetExceeded"
                assert response.error.retryable
                assert response.degraded_reason == "deadline"

    def test_probe_budget_degrades_or_times_out(self, net, embedding, predictor):
        """A probe allowance mid-flight expiry is deterministic: the
        request lands in ``degraded`` (partial salvaged) or ``timed_out``
        (nothing to salvage), reasoned ``probe_budget``."""
        service = _service(net, embedding, predictor)
        query = tuple(sorted(net.skill_universe())[:3])
        expert = int(service.ranker.evaluate(query, net).order[0])
        # Size the allowance off an unbudgeted run on a *fresh* stack so
        # the budgeted run cannot be answered from warm memos.
        probe = _service(net, embedding, predictor)
        full = probe.explain(
            make_requests(("skills",), expert, query)[0]
        ).explanation.n_evaluations
        assert full > 4
        limited = make_requests(
            ("skills",), expert, query, probe_limit=max(4, full // 2)
        )[0]
        response = service.explain_many([limited], max_workers=1)[0]
        assert response.outcome in ("degraded", "timed_out")
        assert response.degraded_reason == "probe_budget"
        if response.outcome == "degraded":
            assert response.explanation.method.endswith("-partial")


class TestAdmissionControl:
    def test_saturated_pool_sheds_typed_rejections(
        self, net, embedding, predictor
    ):
        service = _service(
            net, embedding, predictor,
            resilience=ResilienceConfig(max_in_flight=1, session_share=1.0),
        )
        requests = _workload(service, net, kinds=("skills", "query"))
        service.admission.try_acquire("hog")  # saturate the pool
        try:
            responses = service.explain_many(requests, max_workers=1)
        finally:
            service.admission.release("hog")
        for response in responses:
            assert response.outcome == "rejected"
            assert response.error.kind == "Rejected"
            assert response.error.retryable
            assert response.error.message == "load_shed:max_in_flight"
            assert not response.coalesced  # sheds are never coalesced
        # Shedding is stateless back-pressure: the same batch succeeds
        # once the pool frees up.
        responses = service.explain_many(requests, max_workers=1)
        assert all(r.outcome == "ok" for r in responses)

    def test_session_fair_share_sheds_one_tenant(self, net, embedding, predictor):
        service = _service(
            net, embedding, predictor,
            resilience=ResilienceConfig(max_in_flight=4, session_share=0.25),
        )
        query = tuple(sorted(net.skill_universe())[:3])
        expert = int(service.ranker.evaluate(query, net).order[0])
        service.admission.try_acquire("alice")  # alice's fair share (cap 1)
        try:
            alice, bob = (
                make_requests(("skills",), expert, query, session=name)[0]
                for name in ("alice", "bob")
            )
            responses = service.explain_many([alice, bob], max_workers=1)
        finally:
            service.admission.release("alice")
        by_session = {r.request.session: r for r in responses}
        assert by_session["alice"].outcome == "rejected"
        assert by_session["alice"].error.message == "load_shed:session_share"
        assert by_session["bob"].outcome == "ok"


class TestDegradationLadder:
    def test_full_rebuild_rescues_a_poisoned_delta_path(
        self, net, embedding, predictor
    ):
        """Every delta flush fails, yet every answer completes — on the
        reference tier, parity-exact."""
        service = _service(net, embedding, predictor)
        requests = _workload(service, net, kinds=("skills", "query"))
        reference = _reference_signatures(service, requests)
        injector = FaultInjector(FaultPlan(session_error_rate=1.0), seed=0)
        with fault_injection(injector):
            responses = service.explain_many(requests, max_workers=1)
        _assert_chaos_invariants(responses, reference, injector)
        assert all(r.outcome == "ok" for r in responses)
        assert all(r.fallback == "full_rebuild" for r in responses if not r.coalesced)
        assert service.stats.get("fallback.full_rebuild") > 0

    def test_retry_disabled_surfaces_typed_failures(
        self, net, embedding, predictor
    ):
        service = _service(
            net, embedding, predictor,
            resilience=ResilienceConfig(full_rebuild_retry=False),
        )
        query = tuple(sorted(net.skill_universe())[:3])
        expert = int(service.ranker.evaluate(query, net).order[0])
        request = make_requests(("skills",), expert, query)[0]
        with fault_injection(FaultInjector(FaultPlan(session_error_rate=1.0))):
            response = service.explain_many([request], max_workers=1)[0]
        assert response.outcome == "failed"
        assert response.error.kind == "InjectedSessionError"
        assert response.error.retryable
        assert "injected session fault" in response.error.message
        assert response.error.traceback  # truncated trace travels along

    def test_breaker_opens_then_recovers_after_cooldown(
        self, net, embedding, predictor
    ):
        """Repeated delta failures open the circuit (requests route
        straight to the reference tier, skipping the doomed delta path);
        after the cooldown one healthy trial closes it again."""
        service = _service(
            net, embedding, predictor,
            resilience=ResilienceConfig(breaker_failure_threshold=2),
        )
        clock_now = [0.0]
        service.breaker = CircuitBreaker(
            failure_threshold=2, cooldown_seconds=30.0,
            clock=lambda: clock_now[0],
        )
        skills = sorted(net.skill_universe())
        requests = []
        for query in (tuple(skills[:3]), tuple(skills[3:6])):
            expert = int(service.ranker.evaluate(query, net).order[0])
            requests.append(make_requests(("skills",), expert, query)[0])
        request = requests[0]
        bkey = service._breaker_key(request)  # shared: one relevance target

        # Two *distinct* requests (a rescue warms the memos, so a repeat
        # would be served delta-side from cache and reset the count).
        with fault_injection(FaultInjector(FaultPlan(session_error_rate=1.0))):
            for failing in requests:  # two consecutive delta failures -> open
                response = service.explain(failing)
                assert response.outcome == "ok"
                assert response.fallback == "full_rebuild"
        assert service.breaker.is_open(bkey)

        # Open circuit: the delta tier is skipped outright — no injector
        # needed to keep it on the reference path.
        response = service.explain(request)
        assert response.fallback == "full_rebuild"
        assert service.stats.get("breaker_reroute") >= 1

        # Cooldown elapses; the half-open trial runs a healthy delta
        # dispatch and closes the circuit.
        clock_now[0] = 30.0
        response = service.explain(request)
        assert response.outcome == "ok"
        assert response.fallback is None
        assert not service.breaker.is_open(bkey)


class TestCommitChaos:
    """Base commits racing live ``explain_many`` shards.

    The version gate's contract: a commit waits out the in-flight
    requests, lands atomically, and every response is computed — and
    stamped — against exactly one base version, never a mix.  The check
    is post-hoc and exact: the commit chain is replayed onto a pre-storm
    snapshot to rebuild the network at every stamped version, and each
    response must be bit-identical to the full-rebuild reference computed
    at *its own* version — an answer straddling two bases matches
    neither."""

    @staticmethod
    def _private_stack():
        """A private network (module fixtures are shared read-only —
        commits mutate the base in place) plus its trained components."""
        net = toy_network(n_people=16, seed=3)
        profiles = [sorted(net.skills(p)) for p in net.people()] * 2
        embedding = train_ppmi_embedding(profiles, dim=8, min_count=1)
        predictor = HeuristicLinkPredictor("common_neighbors").fit(net)
        return net, embedding, predictor

    @pytest.mark.parametrize("workers,fused", ((4, False), (4, True)))
    def test_commits_racing_shards(self, workers, fused):
        net, embedding, predictor = self._private_stack()
        service = _service(net, embedding, predictor, "pagerank")
        if fused:
            service.registry.flush_bus = FlushBus(window=0.02)
        requests = _workload(service, net)
        v0 = service.network.version
        snap0 = network_to_dict(net)
        target = net.n_people - 1

        commits = []
        stop = threading.Event()

        def storm():
            i = 0
            while not stop.is_set():
                overlay = NetworkOverlay(service.network)
                skill = f"__chaos{i}"
                done = (
                    overlay.remove_skill(target, skill)
                    if skill in service.network.skills(target)
                    else overlay.add_skill(target, skill)
                )
                if done:
                    commits.append(service.commit(overlay))
                i += 1
                stop.wait(0.005)

        thread = threading.Thread(target=storm, daemon=True)
        thread.start()
        try:
            responses = service.explain_many(requests, max_workers=workers)
        finally:
            stop.set()
            thread.join(timeout=10)
        assert not thread.is_alive()
        assert commits, "no commit landed while the batch ran"
        assert service.stats.get("commits") == len(commits)

        valid_versions = {v0} | {c.new_version for c in commits}
        for response in responses:
            assert response.outcome in OUTCOMES
            assert response.ok == (response.error is None)
            # One base version per response — stamped from the gate, a
            # member of the actually-committed version chain.
            assert response.base_version in valid_versions
        assert all(r.outcome == "ok" for r in responses)

        # Replay the commit chain onto the pre-storm snapshot to rebuild
        # the network at every stamped version, then hold each response to
        # the full-rebuild reference *at its own version*.
        states = {v0: snap0}
        replay = network_from_dict(snap0)
        for commit in commits:
            replay.apply_delta(commit.delta.skill_flips, commit.delta.edge_flips)
            states[commit.new_version] = network_to_dict(replay)
        by_version = {}
        for response in responses:
            by_version.setdefault(response.base_version, []).append(response)
        for version, members in sorted(by_version.items()):
            ref_net = network_from_dict(states[version])
            ref_service = _service(ref_net, embedding, predictor, "pagerank")
            reference = _reference_signatures(
                ref_service, [r.request for r in members]
            )
            for response in members:
                assert (
                    explanation_signature(response.request, response.explanation)
                    == reference[response.request]
                ), f"answer does not match its stamped base v{version}"

    def test_flush_bus_refuses_cross_version_fusion(self):
        """Two concurrent flushes on the same session and query fuse into
        one merged kernel call — unless a commit boundary moved the
        session's base version between them, in which case the bus keys
        them apart and both flush unfused.  (In the live service the gate
        makes this window unreachable; the bus still refuses structurally.)"""
        net = toy_network(n_people=12, seed=5)
        ranker = PageRankExpertRanker()
        query = frozenset(sorted(net.skill_universe())[:2])

        def probe():
            overlay = NetworkOverlay(net)
            overlay.add_skill(1, "__fuse")
            return overlay

        def race(bump_version):
            session = ranker.delta_session(net)
            bus = FlushBus(window=0.3)
            barrier = threading.Barrier(2)
            results = {}

            def runner(tag, leader):
                with bus.armed():
                    barrier.wait(timeout=5)
                    if not leader:
                        # Let the leader open its group and start waiting
                        # out the window, then land the "commit".
                        time.sleep(0.1)
                        if bump_version:
                            session.base_version += 1
                    results[tag] = bus.submit_batch(session, query, [probe()])

            threads = [
                threading.Thread(target=runner, args=("a", True)),
                threading.Thread(target=runner, args=("b", False)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
            assert all(not t.is_alive() for t in threads)
            assert results["a"] is not None and results["b"] is not None
            return bus

        fused = race(bump_version=False)
        assert fused.merged_flushes == 1, "control run did not fuse"
        assert fused.fused_participants == 2
        split = race(bump_version=True)
        assert split.flushes == 2
        assert split.merged_flushes == 0, "fused across a version boundary"


class TestChaosOverTheWire:
    """The chaos grid driven through a live server connection: the same
    seeded :class:`FaultPlan` fires inside the in-process service while
    the requests arrive (and the responses leave) over a real socket.
    The invariants are exactly the in-process grid's — typed outcome
    taxonomy, parity-exact ``ok`` answers against the fault-free
    full-rebuild reference — proving the process boundary neither
    launders outcomes nor perturbs answers."""

    @pytest.mark.parametrize("seed,workers", ((31, 1), (32, 4)))
    def test_faulted_batch_over_live_connection(
        self, net, embedding, predictor, seed, workers
    ):
        import asyncio

        from repro.serve import ExplanationServer, ServeClient, ServeConfig

        service = _service(net, embedding, predictor)
        # Stamp the session client-side so the wire round-trip returns
        # *equal* requests (the server stamps unstamped requests with
        # the connection session, which would shift request identity).
        requests = [
            dataclasses.replace(r, session="chaos")
            for r in _workload(service, net)
        ]
        reference = _reference_signatures(service, requests)
        injector = FaultInjector(MIXED_PLAN, seed=seed)

        async def scenario():
            server = await ExplanationServer(service, ServeConfig(port=0)).start()
            client = await ServeClient.connect(
                "127.0.0.1", server.port, session="chaos"
            )
            responses, summary = await client.explain_many(
                requests, max_workers=workers
            )
            await client.close()
            await server.shutdown()
            return responses, summary

        with fault_injection(injector):
            responses, summary = asyncio.run(
                asyncio.wait_for(scenario(), timeout=120)
            )
        _assert_chaos_invariants(responses, reference, injector)
        # The injected faults are retryable; the ladder rescues them all,
        # and the wire summary agrees with the per-response taxonomy.
        assert all(r.outcome == "ok" for r in responses)
        assert summary["outcomes"] == {"ok": len(requests)}
        if service.stats.get("delta_failure"):
            assert service.stats.get("fallback.full_rebuild") > 0
