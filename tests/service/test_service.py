"""The explanation service: typed requests, the engine registry, and the
concurrent ``explain_many`` front door.

Parity contract under test: ``explain_many`` in deterministic single-
thread mode produces **bit-identical** explanations to per-call facade
invocation, and the sharded (thread-pool) mode matches the deterministic
mode — across all four rankers and both decision families.
"""

from __future__ import annotations

import pytest

from repro import ExES
from repro.datasets import toy_network
from repro.embeddings import train_ppmi_embedding
from repro.eval import (
    ExplanationSubjects,
    TeamSubjects,
    run_workload_experiment,
    search_requests,
    team_requests,
)
from repro.explain import BeamConfig, FactualConfig
from repro.explain.explanation import CounterfactualExplanation, FactualExplanation
from repro.linkpred import HeuristicLinkPredictor
from repro.search import (
    DocumentExpertRanker,
    GcnExpertRanker,
    GcnRankerConfig,
    HitsExpertRanker,
    PageRankExpertRanker,
)
from repro.service import (
    EXPLANATION_KINDS,
    FACADE_METHODS,
    EngineRegistry,
    ExplainRequest,
    ExplanationService,
    explanation_signature,
    make_requests,
)
from repro.team import CoverTeamFormer

K = 3
FACTUAL = FactualConfig(
    n_samples=24, max_samples=48, selection_samples=12, exact_limit=5
)
BEAM = BeamConfig(beam_size=4, n_candidates=4, max_size=3, n_explanations=2)


@pytest.fixture(scope="module")
def net():
    return toy_network(n_people=16, seed=3)


@pytest.fixture(scope="module")
def embedding(net):
    profiles = [sorted(net.skills(p)) for p in net.people()] * 2
    return train_ppmi_embedding(profiles, dim=8, min_count=1)


@pytest.fixture(scope="module")
def predictor(net):
    return HeuristicLinkPredictor("common_neighbors").fit(net)


@pytest.fixture(scope="module")
def gcn_ranker(net, embedding):
    return GcnExpertRanker(
        embedding, GcnRankerConfig(epochs=3, n_train_queries=4, seed=0)
    ).fit(net)


def _make_ranker(name, net, embedding, gcn_ranker):
    if name == "gcn":
        return gcn_ranker
    return {
        "pagerank": PageRankExpertRanker,
        "hits": HitsExpertRanker,
        "tfidf": DocumentExpertRanker,
    }[name]()


def _service(net, ranker, embedding, predictor, registry=None):
    return ExplanationService(
        network=net,
        ranker=ranker,
        embedding=embedding,
        link_predictor=predictor,
        former=CoverTeamFormer(ranker),
        k=K,
        factual_config=FACTUAL,
        beam_config=BEAM,
        registry=registry or EngineRegistry(),
    )


def _facade(net, ranker, embedding, predictor, registry=None):
    return ExES(
        network=net,
        ranker=ranker,
        embedding=embedding,
        link_predictor=predictor,
        former=CoverTeamFormer(ranker),
        k=K,
        factual_config=FACTUAL,
        beam_config=BEAM,
        registry=registry or EngineRegistry(),
    )


def _subjects(ranker, net, query):
    """(expert, non-expert) for the query — deterministic, guaranteed
    non-None on the toy network."""
    order = ranker.evaluate(query, net).order
    return int(order[0]), int(order[K])


def _signature(response):
    """A bit-exact digest of one response's explanation content (the
    canonical ``explanation_signature`` contract, after asserting the
    response succeeded)."""
    assert response.ok, response.error
    return explanation_signature(response.request, response.explanation)


# ---------------------------------------------------------------------------
# requests
# ---------------------------------------------------------------------------


class TestExplainRequest:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown explanation kind"):
            ExplainRequest(kind="nope", person=0, query=("a",))

    def test_negative_person_rejected(self):
        with pytest.raises(ValueError, match="person"):
            ExplainRequest(kind="skills", person=-1, query=("a",))

    def test_seed_member_requires_team(self):
        with pytest.raises(ValueError, match="seed_member"):
            ExplainRequest(kind="skills", person=0, query=("a",), seed_member=1)

    def test_query_canonicalized(self):
        """Order- and duplicate-insensitive: same terms -> equal requests
        (so hot requests coalesce and shard ordering is deterministic)."""
        request = ExplainRequest(kind="skills", person=0, query=["b", "a", "b"])
        assert request.query == ("a", "b")
        assert request.query_key == frozenset({"a", "b"})
        assert request == ExplainRequest(kind="skills", person=0, query={"a", "b"})

    def test_target_key_splits_families(self):
        plain = ExplainRequest(kind="skills", person=0, query=("a",))
        team = ExplainRequest(
            kind="skills", person=0, query=("a",), team=True, seed_member=2
        )
        assert plain.target_key != team.target_key

    def test_make_requests_one_per_kind(self):
        requests = make_requests(EXPLANATION_KINDS, 1, ("a", "b"), tag="x")
        assert len(requests) == len(EXPLANATION_KINDS)
        assert {r.kind for r in requests} == set(EXPLANATION_KINDS)
        assert all(r.tag == "x" for r in requests)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


class TestEngineRegistry:
    def test_engine_reused_for_equal_targets(self, net, embedding, predictor):
        service = _service(net, PageRankExpertRanker(), embedding, predictor)
        assert service.engine() is service.engine()
        assert service.registry.engine_builds == 1

    def test_engines_split_by_seed_member(self, net, embedding, predictor):
        service = _service(net, PageRankExpertRanker(), embedding, predictor)
        a = service.engine(team=True, seed_member=0)
        b = service.engine(team=True, seed_member=1)
        assert a is not b
        assert service.engine(team=True, seed_member=0) is a

    def test_lru_bound_on_engines(self, net, embedding, predictor):
        """The unbounded ``ExES._engines`` leak is gone: engine count can
        never exceed the registry capacity, whatever the target churn."""
        registry = EngineRegistry(capacity=2)
        service = _service(
            net, PageRankExpertRanker(), embedding, predictor, registry=registry
        )
        for seed in range(6):
            service.engine(team=True, seed_member=seed)
        assert registry.n_engines <= 2

    def test_facades_share_engines_through_registry(
        self, net, embedding, predictor
    ):
        """Two facades wrapping the same deployed system answer from the
        same engine — the cross-facade reuse the service layer exists for."""
        ranker = PageRankExpertRanker()
        registry = EngineRegistry()
        former = CoverTeamFormer(ranker)
        kwargs = dict(
            network=net, ranker=ranker, embedding=embedding,
            link_predictor=predictor, former=former, k=K, registry=registry,
        )
        one, two = ExES(**kwargs), ExES(**kwargs)
        assert one.probe_engine() is two.probe_engine()
        assert one.probe_engine(team=True, seed_member=0) is two.probe_engine(
            team=True, seed_member=0
        )

    def test_drop_network_evicts(self, net, embedding, predictor):
        service = _service(net, PageRankExpertRanker(), embedding, predictor)
        engine = service.engine()
        assert service.registry.drop_network(net) >= 1
        assert service.engine() is not engine

    def test_version_drift_rebuilds_engine(self, embedding, predictor):
        mutable = toy_network(n_people=12, seed=1)
        service = _service(mutable, PageRankExpertRanker(), embedding, predictor)
        engine = service.engine()
        mutable.add_skill(0, "fresh-skill")
        fresh = service.engine()
        assert fresh is not engine
        assert fresh.base_version == mutable.version

    def test_registry_owns_ranker_sessions(self, net, embedding, predictor):
        """Installing the registry reroutes ``_session_for``: the session
        is registry-owned and stable across lookups."""
        ranker = PageRankExpertRanker()
        service = _service(net, ranker, embedding, predictor)
        assert ranker._session_store is service.registry
        first = ranker._session_for(net)
        assert first is not None
        assert ranker._session_for(net) is first
        assert service.registry.n_sessions >= 1

    def test_score_memo_shared_across_targets(self, net, embedding, predictor):
        """Score vectors are person- and target-independent: a forward
        computed under the relevance target must serve a membership
        engine's probe of the same (query, flips) state without another
        ranker evaluation."""
        service = _service(net, PageRankExpertRanker(), embedding, predictor)
        query = frozenset(sorted(net.skill_universe())[:3])
        relevance = service.engine()
        relevance.probe(0, query, net)  # computes + memoizes the vector
        membership = service.engine(team=True, seed_member=0)
        assert membership is not relevance
        before = membership.score_hits
        membership.probe(1, query, net)
        assert membership.score_hits == before + 1  # served from shared memo

    def test_set_full_rebuild_drops_engines(self, net, embedding, predictor):
        service = _service(net, PageRankExpertRanker(), embedding, predictor)
        engine = service.engine()
        service.set_full_rebuild(True)
        try:
            assert service.ranker.full_rebuild
            assert service.former.full_rebuild
            assert service.engine() is not engine
        finally:
            service.set_full_rebuild(False)


# ---------------------------------------------------------------------------
# dispatch
# ---------------------------------------------------------------------------


class TestDispatch:
    @pytest.fixture(scope="class")
    def service(self, net, embedding, predictor):
        return _service(net, PageRankExpertRanker(), embedding, predictor)

    @pytest.fixture(scope="class")
    def query(self, net):
        return tuple(sorted(net.skill_universe())[:3])

    @pytest.mark.parametrize("kind", EXPLANATION_KINDS)
    def test_every_kind_resolves(self, service, net, query, kind):
        expert, _ = _subjects(service.ranker, net, query)
        response = service.explain(
            ExplainRequest(kind=kind, person=expert, query=query)
        )
        assert response.ok
        expected = (
            FactualExplanation if response.request.is_factual
            else CounterfactualExplanation
        )
        assert isinstance(response.explanation, expected)
        assert response.elapsed_seconds >= 0

    def test_team_request_resolves(self, service, net, query):
        expert, _ = _subjects(service.ranker, net, query)
        team = service.former.form(query, net, seed_member=expert)
        member = sorted(team.members)[0]
        response = service.explain(
            ExplainRequest(
                kind="skills", person=member, query=query,
                team=True, seed_member=expert,
            )
        )
        assert response.ok
        assert isinstance(response.explanation, FactualExplanation)

    def test_localized_request_stamps_summary(self, service, net, query):
        """A ``localized=True`` request runs its probes under a per-request
        scope and stamps the plan summary on the response; the answer
        itself matches the plain request's explanation exactly."""
        expert, _ = _subjects(service.ranker, net, query)
        plain = service.explain(
            ExplainRequest(kind="skills", person=expert, query=query)
        )
        localized = service.explain(
            ExplainRequest(
                kind="skills", person=expert, query=query,
                localized=True, epsilon=1e-6,
            )
        )
        assert plain.ok and localized.ok
        assert plain.localized is None
        summary = localized.localized
        assert summary is not None
        assert summary["epsilon"] == 1e-6
        assert summary["exact"] + summary["sampled"] + summary["global"] > 0
        assert summary["max_residual_bound"] <= 1e-6 + 1e-9
        assert _signature(localized) == _signature(plain)

    def test_localized_epsilon_validation(self):
        with pytest.raises(ValueError, match="localized"):
            ExplainRequest(kind="skills", person=0, query=("a",), epsilon=1e-6)
        with pytest.raises(ValueError, match="epsilon"):
            ExplainRequest(
                kind="skills", person=0, query=("a",),
                localized=True, epsilon=0.0,
            )

    def test_localized_round_trips_the_wire(self, service, net, query):
        from repro.explain.serialize import (
            request_from_dict,
            request_to_dict,
            response_from_dict,
            response_to_dict,
        )

        expert, _ = _subjects(service.ranker, net, query)
        request = ExplainRequest(
            kind="skills", person=expert, query=query,
            localized=True, epsilon=1e-5,
        )
        assert request_from_dict(request_to_dict(request)) == request
        response = service.explain(request)
        revived = response_from_dict(response_to_dict(response))
        assert revived.request == request
        assert revived.localized == response.localized

    def test_explain_raises_without_former(self, net, embedding, predictor):
        service = ExplanationService(
            network=net, ranker=PageRankExpertRanker(), embedding=embedding,
            link_predictor=predictor, former=None, k=K,
            registry=EngineRegistry(),
        )
        with pytest.raises(ValueError, match="team formation"):
            service.explain(
                ExplainRequest(kind="skills", person=0, query=("a",), team=True)
            )

    def test_explain_many_captures_per_request_errors(
        self, net, embedding, predictor, query
    ):
        """One bad request degrades to ``response.error``; the rest of the
        batch still answers."""
        service = ExplanationService(
            network=net, ranker=PageRankExpertRanker(), embedding=embedding,
            link_predictor=predictor, former=None, k=K,
            factual_config=FACTUAL, beam_config=BEAM,
            registry=EngineRegistry(),
        )
        good = ExplainRequest(kind="query", person=0, query=query)
        bad = ExplainRequest(kind="query", person=0, query=query, team=True)
        responses = service.explain_many([good, bad, good], max_workers=1)
        assert responses[0].ok and responses[2].ok
        assert not responses[1].ok
        assert responses[1].outcome == "failed"
        assert responses[1].error.kind == "ValueError"
        assert "team formation" in responses[1].error.message
        assert not responses[1].error.retryable  # validation never retries
        with pytest.raises(RuntimeError):
            responses[1].unwrap()

    def test_responses_in_request_order(self, service, net, query):
        expert, nonexpert = _subjects(service.ranker, net, query)
        requests = [
            ExplainRequest(kind="query", person=nonexpert, query=query),
            ExplainRequest(kind="skills", person=expert, query=query),
            ExplainRequest(kind="query", person=expert, query=query),
        ]
        responses = service.explain_many(requests, max_workers=2)
        assert [r.request for r in responses] == requests

    def test_empty_batch(self, service):
        assert service.explain_many([]) == []

    def test_identical_requests_coalesced(self, service, net, query):
        """Hot (repeated) requests are answered once per batch and
        re-served bit-identically; ``coalesce=False`` recomputes."""
        expert, _ = _subjects(service.ranker, net, query)
        request = ExplainRequest(kind="skills", person=expert, query=query)
        first, second = service.explain_many([request, request], max_workers=1)
        assert not first.coalesced and second.coalesced
        assert second.explanation is first.explanation
        assert _signature(first) == _signature(second)
        plain = service.explain_many([request, request], coalesce=False)
        assert not any(r.coalesced for r in plain)
        assert plain[0].explanation is not plain[1].explanation
        assert _signature(plain[0]) == _signature(first)


# ---------------------------------------------------------------------------
# explain_many parity: per-call facade == single-thread == sharded
# ---------------------------------------------------------------------------

def _per_call_responses(facade, requests):
    """The seed-facade reference: one method call per request."""
    out = []
    for request in requests:
        explanation = getattr(facade, FACADE_METHODS[request.kind])(
            request.person,
            request.query,
            team=request.team,
            seed_member=request.seed_member,
        )
        out.append(
            type("R", (), {
                "request": request, "explanation": explanation,
                "ok": True, "error": None,
            })()
        )
    return out


def _parity_requests(ranker, former, net):
    query = tuple(sorted(net.skill_universe())[:3])
    expert, nonexpert = _subjects(ranker, net, query)
    kinds = ("skills", "query", "cf_skills", "cf_query")
    requests = list(
        make_requests(kinds, expert, query)
        + make_requests(kinds, nonexpert, query)
    )
    team = former.form(query, net, seed_member=expert)
    member = sorted(team.members)[0]
    requests += make_requests(
        ("skills", "cf_skills"), member, query, team=True, seed_member=expert
    )
    outside = sorted(set(net.people()) - team.members)[0]
    requests += make_requests(
        ("cf_skills",), outside, query, team=True, seed_member=expert
    )
    return requests


@pytest.mark.parametrize("ranker_name", ["pagerank", "hits", "tfidf", "gcn"])
def test_explain_many_parity(
    ranker_name, net, embedding, predictor, gcn_ranker
):
    """Deterministic service mode == per-call facade, bit for bit; the
    sharded mode == the deterministic mode — for every ranker, over mixed
    relevance + membership requests."""
    ranker = _make_ranker(ranker_name, net, embedding, gcn_ranker)
    former = CoverTeamFormer(ranker)
    requests = _parity_requests(ranker, former, net)

    facade = _facade(net, ranker, embedding, predictor)
    reference = [_signature(r) for r in _per_call_responses(facade, requests)]

    single = _service(net, ranker, embedding, predictor)
    got_single = [
        _signature(r) for r in single.explain_many(requests, max_workers=1)
    ]
    assert got_single == reference

    sharded = _service(net, ranker, embedding, predictor)
    got_sharded = [
        _signature(r) for r in sharded.explain_many(requests, max_workers=4)
    ]
    assert got_sharded == reference


class TestCrossRequestReuse:
    def test_shared_engine_answers_from_memo(self, net, embedding, predictor):
        """The second subject of the same query must hit the engine's
        person-independent score memo — the cross-request reuse that makes
        ``explain_many`` beat per-call invocation."""
        service = _service(net, PageRankExpertRanker(), embedding, predictor)
        query = tuple(sorted(net.skill_universe())[:3])
        expert, nonexpert = _subjects(service.ranker, net, query)
        requests = list(
            make_requests(("query",), expert, query)
            + make_requests(("query",), nonexpert, query)
        )
        service.explain_many(requests, max_workers=1)
        engine = service.engine()
        assert engine.hits + engine.score_hits > 0

    def test_team_base_runs_warm_across_facades(self, net, embedding, predictor):
        """Traced team base runs live in the registry-owned session: a
        second facade sharing the former starts with the trace warm."""
        ranker = PageRankExpertRanker()
        former = CoverTeamFormer(ranker)
        registry = EngineRegistry()
        kwargs = dict(
            network=net, ranker=ranker, embedding=embedding,
            link_predictor=predictor, former=former, k=K,
            factual_config=FACTUAL, beam_config=BEAM, registry=registry,
        )
        one = ExES(**kwargs)
        query = tuple(sorted(net.skill_universe())[:3])
        expert, _ = _subjects(ranker, net, query)
        team = former.form(query, net, seed_member=expert)
        member = sorted(team.members)[0]
        one.explain_many(
            make_requests(("cf_skills",), member, query, team=True, seed_member=expert),
            max_workers=1,
        )
        session = former._session_for(net)
        assert len(session._run_cache) >= 1

        two = ExES(**kwargs)
        assert two.former._session_for(net) is session  # trace stays warm


# ---------------------------------------------------------------------------
# workload builders + harness
# ---------------------------------------------------------------------------


class TestWorkloads:
    def test_search_requests_shape(self):
        subjects = [
            ExplanationSubjects(query=("a", "b"), expert=1, non_expert=2),
            ExplanationSubjects(query=("c",), expert=None, non_expert=4),
        ]
        requests = search_requests(subjects, kinds=("skills", "cf_query"))
        assert len(requests) == 2 * 2 + 1 * 2
        assert {r.tag for r in requests} == {"expert", "non_expert"}
        assert not any(r.team for r in requests)

    def test_team_requests_shape(self):
        subjects = [
            TeamSubjects(query=("a",), seed_member=0, member=1, non_member=None),
            TeamSubjects(query=("b",), seed_member=2, member=3, non_member=4),
        ]
        requests = team_requests(subjects, kinds=("skills",))
        assert len(requests) == 3
        assert all(r.team for r in requests)
        assert {r.seed_member for r in requests} == {0, 2}

    def test_run_workload_experiment(self, net, embedding, predictor):
        service = _service(net, PageRankExpertRanker(), embedding, predictor)
        query = tuple(sorted(net.skill_universe())[:3])
        expert, nonexpert = _subjects(service.ranker, net, query)
        subjects = [
            ExplanationSubjects(query=query, expert=expert, non_expert=nonexpert)
        ]
        requests = search_requests(subjects, kinds=("query", "cf_query"))
        report = run_workload_experiment(service, requests, max_workers=1)
        assert report.n_requests == len(requests)
        assert report.n_errors == 0
        assert report.requests_per_second > 0
        assert {row.kind for row in report.rows} == {"query", "cf_query"}
        assert all(row.latency_mean is not None for row in report.rows)
        # Probe flushes happened and were surfaced; single-thread mode
        # keeps the flush bus disarmed, so nothing may be bus-merged.
        flushes = report.fusion["multi_flushes"] + report.fusion["batch_flushes"]
        assert flushes > 0
        assert report.fusion["flushed_probes"] >= flushes
        assert report.fusion["bus_merged_flushes"] == 0
