"""The numeric backend seam and the cross-request flush bus.

Three layers under test:

* **conformance** — the fused :class:`NumpyBackend` kernels agree with the
  naive-loop :class:`ReferenceBackend` to the repo-wide 1e-9 band on
  random sparse inputs (the contract any third-party backend must meet);
* **resolution** — ``get_backend``/``set_backend``/``register_backend``
  and ``REPRO_BACKEND`` behave as documented, and sessions capture the
  active backend at construction;
* **cost hints** — the backend-owned break-even thresholds (not module
  constants any more) are what pick the sequential-vs-fused kernel path,
  pinned with a spy backend: small probe-engine flushes still take the
  sequential fallback under the default hints.

Plus unit tests for :class:`FlushBus` itself: merging, slicing, disarmed
pass-through, merged-call failure fallback, and the fused-size cap.
"""

from __future__ import annotations

import threading
import time
from collections import Counter

import numpy as np
import pytest
import scipy.sparse as sp

import repro.backend as backend_mod
from repro.backend import (
    NumpyBackend,
    ReferenceBackend,
    get_backend,
    register_backend,
    set_backend,
)
from repro.datasets import toy_network
from repro.graph import NetworkOverlay
from repro.search import DocumentExpertRanker, PageRankExpertRanker
from repro.service import FlushBus

ATOL = 1e-9


@pytest.fixture(autouse=True)
def _restore_backend():
    """Every test leaves the process-wide backend as it found it."""
    previous = set_backend(None)
    set_backend(previous)
    yield
    set_backend(previous)


def _random_csr(rng, n, m, density=0.3):
    mat = sp.random(
        n, m, density=density, format="csr", random_state=np.random.RandomState(
            int(rng.integers(0, 2**31))
        )
    )
    return mat.astype(np.float64)


def _random_rows(rng, n_rows, n_cols):
    rows = []
    for _ in range(n_rows):
        size = int(rng.integers(0, max(2, n_cols // 3)))
        cols = np.sort(
            rng.choice(n_cols, size=size, replace=False).astype(np.int64)
        )
        rows.append((cols, rng.standard_normal(size)))
    return rows


# ----------------------------------------------------------------------
# conformance: fused kernels vs naive reference loops
# ----------------------------------------------------------------------
class TestBackendConformance:
    """NumpyBackend and ReferenceBackend agree to 1e-9 on every kernel."""

    @pytest.mark.parametrize("seed", range(3))
    def test_linear_kernels(self, seed):
        rng = np.random.default_rng(1000 + seed)
        fused, naive = NumpyBackend(), ReferenceBackend()
        mat = _random_csr(rng, 17, 11)
        vec = rng.standard_normal(11)
        dense = rng.standard_normal((11, 5))
        np.testing.assert_allclose(
            fused.spmv(mat, vec), naive.spmv(mat, vec), rtol=0, atol=ATOL
        )
        np.testing.assert_allclose(
            fused.spmm(mat, dense), naive.spmm(mat, dense), rtol=0, atol=ATOL
        )
        a, b = rng.standard_normal((7, 11)), rng.standard_normal((11, 3))
        np.testing.assert_allclose(
            fused.matmul(a, b), naive.matmul(a, b), rtol=0, atol=ATOL
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_gather_kernels(self, seed):
        rng = np.random.default_rng(2000 + seed)
        fused, naive = NumpyBackend(), ReferenceBackend()
        rows = _random_rows(rng, 9, 30)
        weights = rng.standard_normal(30)
        gathered_f = fused.gather_rows(rows, 30)
        gathered_n = naive.gather_rows(rows, 30)
        np.testing.assert_allclose(
            gathered_f.toarray(), gathered_n.toarray(), rtol=0, atol=ATOL
        )
        np.testing.assert_allclose(
            fused.gather_dots(rows, weights),
            naive.gather_dots(rows, weights),
            rtol=0,
            atol=ATOL,
        )
        for cols, vals in rows:
            assert fused.row_dot(vals, weights[cols]) == pytest.approx(
                naive.row_dot(vals, weights[cols]), abs=ATOL
            )

    def test_gather_rows_edge_shapes(self):
        fused, naive = NumpyBackend(), ReferenceBackend()
        for backend in (fused, naive):
            empty = backend.gather_rows([], 7)
            assert empty.shape == (0, 7)
            hollow = backend.gather_rows(
                [(np.zeros(0, np.int64), np.zeros(0))] * 3, 7
            )
            assert hollow.shape == (3, 7)
            assert hollow.nnz == 0
        assert fused.row_dot(np.zeros(0), np.zeros(0)) == 0.0

    @pytest.mark.parametrize("seed", range(3))
    def test_power_iteration_kernels(self, seed):
        rng = np.random.default_rng(3000 + seed)
        fused, naive = NumpyBackend(), ReferenceBackend()
        n, k = 13, 4
        adj = _random_csr(rng, n, n, density=0.25)
        out_degree = np.asarray(adj.sum(axis=1)).ravel()
        restarts = np.abs(rng.standard_normal((n, k))) + 1e-3
        restarts /= restarts.sum(axis=0)
        kwargs = dict(damping=0.5, max_iterations=50, tolerance=1e-10)
        sol_f, conv_f = fused.power_iteration_stacked(
            restarts, adj, out_degree, **kwargs
        )
        sol_n, conv_n = naive.power_iteration_stacked(
            restarts, adj, out_degree, **kwargs
        )
        np.testing.assert_array_equal(conv_f, conv_n)
        np.testing.assert_allclose(sol_f, sol_n, rtol=0, atol=ATOL)
        # Composition insensitivity (the flush-bus contract): each stacked
        # column is bitwise the lone power iteration over its restart.
        for j in range(k):
            lone, lone_conv = fused.power_iteration(
                restarts[:, j], adj, out_degree, **kwargs
            )
            assert lone_conv == bool(conv_f[j])
            np.testing.assert_array_equal(lone, sol_f[:, j])

    @pytest.mark.parametrize("seed", range(3))
    def test_ppr_delta_push(self, seed):
        """Fused and reference push kernels agree on delta, residual, and
        solve-set size — and the certified l1 bound actually holds
        against the dense exact solve of the correction system."""
        rng = np.random.default_rng(6000 + seed)
        fused, naive = NumpyBackend(), ReferenceBackend()
        n = 30
        adj = _random_csr(rng, n, n, density=0.2)
        out_degree = np.asarray(adj.sum(axis=1)).ravel()
        seed_idx = np.sort(
            rng.choice(n, size=5, replace=False).astype(np.int64)
        )
        seed_vals = rng.standard_normal(5) * 1e-3
        restart = np.abs(rng.standard_normal(n)) + 1e-3
        restart /= restart.sum()
        r_idx = np.arange(n, dtype=np.int64)
        damping, epsilon = 0.5, 1e-8
        kwargs = dict(
            damping=damping, epsilon=epsilon, max_sweeps=500, max_nodes=n
        )
        out_f = fused.ppr_delta_push(
            seed_idx, seed_vals, adj, out_degree, r_idx, restart, **kwargs
        )
        out_n = naive.ppr_delta_push(
            seed_idx, seed_vals, adj, out_degree, r_idx, restart, **kwargs
        )
        assert out_f is not None and out_n is not None
        delta_f, l1_f, cone_f = out_f
        delta_n, l1_n, cone_n = out_n
        assert cone_f == cone_n
        assert l1_f == pytest.approx(l1_n, abs=ATOL)
        np.testing.assert_allclose(delta_f, delta_n, rtol=0, atol=ATOL)
        # Certificate vs the dense exact solve: delta = s + d * M @ delta
        # with M x = adj.T @ (x / deg) + dangling_mass(x) * restart.
        inv_deg = np.divide(
            1.0,
            out_degree,
            out=np.zeros_like(out_degree),
            where=out_degree > 0,
        )
        m = adj.toarray().T * inv_deg[None, :]
        m[:, out_degree == 0] += restart[:, None]
        s = np.zeros(n)
        s[seed_idx] = seed_vals
        exact = np.linalg.solve(np.eye(n) - damping * m, s)
        assert np.abs(exact - delta_f).sum() <= l1_f / (1 - damping) + ATOL
        assert l1_f / (1 - damping) <= epsilon

    @pytest.mark.parametrize("seed", range(3))
    def test_ppr_delta_push_row_overrides(self, seed):
        """Per-row overrides answer exactly like a fully materialized
        patched CSR, on both backends — the O(Δ) operator view the
        localized PageRank path relies on."""
        rng = np.random.default_rng(7000 + seed)
        n = 30
        base = _random_csr(rng, n, n, density=0.2)
        patched = base.copy().tolil()
        touched = sorted(
            int(i) for i in rng.choice(n, size=3, replace=False)
        )
        for u in touched:
            v = int(rng.integers(0, n))
            patched[u, v] = patched[u, v] + 1.0
        patched = patched.tocsr()
        overrides = {
            u: (
                patched.indices[
                    patched.indptr[u] : patched.indptr[u + 1]
                ].astype(np.int64),
                patched.data[patched.indptr[u] : patched.indptr[u + 1]],
            )
            for u in touched
        }
        out_degree = np.asarray(patched.sum(axis=1)).ravel()
        seed_idx = np.sort(
            rng.choice(n, size=4, replace=False).astype(np.int64)
        )
        seed_vals = rng.standard_normal(4) * 1e-3
        restart = np.abs(rng.standard_normal(n)) + 1e-3
        restart /= restart.sum()
        r_idx = np.arange(n, dtype=np.int64)
        kwargs = dict(
            damping=0.5, epsilon=1e-8, max_sweeps=500, max_nodes=n
        )
        for backend in (NumpyBackend(), ReferenceBackend()):
            full = backend.ppr_delta_push(
                seed_idx, seed_vals, patched, out_degree, r_idx, restart,
                **kwargs,
            )
            view = backend.ppr_delta_push(
                seed_idx, seed_vals, base, out_degree, r_idx, restart,
                row_overrides=overrides, **kwargs,
            )
            assert full is not None and view is not None
            np.testing.assert_allclose(
                view[0], full[0], rtol=0, atol=ATOL
            )
            assert view[2] == full[2]

    def test_ppr_delta_push_solve_set_cap(self):
        """A seed whose decay needs more nodes than ``max_nodes`` makes
        both backends report None — the caller's global-fallback signal."""
        rng = np.random.default_rng(8000)
        n = 40
        adj = _random_csr(rng, n, n, density=0.3)
        out_degree = np.asarray(adj.sum(axis=1)).ravel()
        seed_idx = np.arange(8, dtype=np.int64)
        seed_vals = np.full(8, 0.1)
        restart = np.full(n, 1.0 / n)
        r_idx = np.arange(n, dtype=np.int64)
        kwargs = dict(
            damping=0.5, epsilon=1e-10, max_sweeps=500, max_nodes=2
        )
        for backend in (NumpyBackend(), ReferenceBackend()):
            assert (
                backend.ppr_delta_push(
                    seed_idx, seed_vals, adj, out_degree, r_idx, restart,
                    **kwargs,
                )
                is None
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_authority_iteration(self, seed):
        rng = np.random.default_rng(4000 + seed)
        fused, naive = NumpyBackend(), ReferenceBackend()
        adj = _random_csr(rng, 12, 9, density=0.3)
        np.testing.assert_allclose(
            fused.authority_iteration(adj, 9, max_iterations=60, tolerance=1e-12),
            naive.authority_iteration(adj, 9, max_iterations=60, tolerance=1e-12),
            rtol=0,
            atol=ATOL,
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_gcn_forward_blocks(self, seed):
        """Block-diag stacked forwards equal per-block forwards — bitwise,
        through a linear stand-in scorer (adj @ features @ w)."""
        rng = np.random.default_rng(5000 + seed)

        class _Out:
            def __init__(self, arr):
                self._arr = arr

            def numpy(self):
                return self._arr

        class _LinearScorer:
            def __init__(self, w):
                self.w = w

            def forward(self, features, adj):
                return _Out(np.asarray(adj @ (features @ self.w)).ravel())

        scorer = _LinearScorer(rng.standard_normal(6))
        n = 10
        feats = [rng.standard_normal((n, 6)) for _ in range(3)]
        adjs = [_random_csr(rng, n, n, density=0.3) for _ in range(3)]
        fused, naive = NumpyBackend(), ReferenceBackend()
        out_f = fused.gcn_forward_blocks(scorer, feats, adjs)
        out_n = naive.gcn_forward_blocks(scorer, feats, adjs)
        for block_f, block_n, f, a in zip(out_f, out_n, feats, adjs):
            np.testing.assert_array_equal(block_f, block_n)
            np.testing.assert_array_equal(
                block_f, fused.gcn_forward(scorer, f, a)
            )
        np.testing.assert_allclose(
            fused.block_diag_csr([a.tocsr() for a in adjs]).toarray(),
            naive.block_diag_csr([a.tocsr() for a in adjs]).toarray(),
            rtol=0,
            atol=0,
        )


# ----------------------------------------------------------------------
# resolution: get/set/register + REPRO_BACKEND
# ----------------------------------------------------------------------
class TestBackendResolution:
    def test_set_backend_by_name_and_instance(self):
        previous = set_backend("reference")
        assert get_backend().name == "reference"
        instance = NumpyBackend()
        assert isinstance(set_backend(instance), ReferenceBackend)
        assert get_backend() is instance
        set_backend(previous)

    def test_unknown_name_raises_and_lists_known(self):
        with pytest.raises(ValueError, match="reference"):
            set_backend("no-such-backend")

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv(backend_mod._ENV_VAR, "reference")
        previous = set_backend(None)  # force re-resolution
        try:
            assert get_backend().name == "reference"
            monkeypatch.setenv(backend_mod._ENV_VAR, "bogus")
            set_backend(None)
            with pytest.raises(ValueError, match="bogus"):
                get_backend()
        finally:
            set_backend(previous)

    def test_register_backend(self):
        class _Custom(NumpyBackend):
            name = "custom-test"

        register_backend("custom-test", _Custom)
        try:
            previous = set_backend("custom-test")
            assert get_backend().name == "custom-test"
            set_backend(previous)
        finally:
            backend_mod._registry.pop("custom-test", None)

    def test_sessions_capture_backend_at_construction(self, toy_net):
        marked = NumpyBackend()
        previous = set_backend(marked)
        try:
            session = DocumentExpertRanker().delta_session(toy_net)
            assert session.backend is marked
            set_backend(NumpyBackend())
            assert session.backend is marked  # swap does not retarget it
        finally:
            set_backend(previous)


# ----------------------------------------------------------------------
# cost hints: backend-owned thresholds drive the kernel-path choice
# ----------------------------------------------------------------------
class _SpyBackend(NumpyBackend):
    """Counts kernel calls; hints overridable per instance."""

    name = "spy"

    def __init__(self, **hints):
        self.calls = Counter()
        for hint, value in hints.items():
            setattr(self, hint, value)

    def row_dot(self, vals, weights):
        self.calls["row_dot"] += 1
        return super().row_dot(vals, weights)

    def gather_dots(self, rows, weights):
        self.calls["gather_dots"] += 1
        return super().gather_dots(rows, weights)

    def power_iteration(self, *args, **kwargs):
        self.calls["power_iteration"] += 1
        return super().power_iteration(*args, **kwargs)

    def power_iteration_stacked(self, *args, **kwargs):
        self.calls["power_iteration_stacked"] += 1
        return super().power_iteration_stacked(*args, **kwargs)


def _skill_flip_overlays(net, rng, n_overlays):
    skills = sorted(net.skill_universe())
    overlays = []
    for _ in range(n_overlays):
        overlay = NetworkOverlay(net)
        p = int(rng.integers(0, net.n_people))
        s = skills[int(rng.integers(0, len(skills)))]
        if not overlay.add_skill(p, s):
            overlay.remove_skill(p, s)
        overlays.append(overlay)
    return overlays


class TestCostHints:
    """The former module constants live on the backend now; the spy pins
    that the *hint value* is what routes a flush, and that the default
    hints keep small probe-engine flushes on the sequential fallback."""

    def test_default_hint_values(self):
        assert NumpyBackend().tfidf_gather_min_rows == 96
        assert NumpyBackend().pagerank_stack_min_people == 192
        # The constants really are gone from the engine module.
        import repro.search.engine as engine_mod

        assert not hasattr(engine_mod, "_TFIDF_GATHER_MIN_ROWS")
        assert not hasattr(engine_mod, "_PAGERANK_STACK_MIN_PEOPLE")

    def test_tfidf_small_flush_takes_sequential_fallback(self, toy_net):
        rng = np.random.default_rng(7)
        query = frozenset(sorted(toy_net.skill_universe())[:3])
        overlays = _skill_flip_overlays(toy_net, rng, 6)

        spy = _SpyBackend()  # default hints: 6 rows < 96 -> sequential
        previous = set_backend(spy)
        try:
            session = DocumentExpertRanker().delta_session(toy_net)
            sequential = session.scores_batch(query, overlays)
        finally:
            set_backend(previous)
        assert spy.calls["gather_dots"] == 0
        assert spy.calls["row_dot"] > 0

        fused_spy = _SpyBackend(tfidf_gather_min_rows=1)
        previous = set_backend(fused_spy)
        try:
            session = DocumentExpertRanker().delta_session(toy_net)
            fused = session.scores_batch(query, overlays)
        finally:
            set_backend(previous)
        assert fused_spy.calls["gather_dots"] == 1
        # Both routes produce bitwise-identical flush results.
        for seq_vec, fused_vec in zip(sequential, fused):
            np.testing.assert_array_equal(seq_vec, fused_vec)

    def test_pagerank_small_network_stays_sequential(self, toy_net):
        rng = np.random.default_rng(11)
        query = frozenset(sorted(toy_net.skill_universe())[:3])
        overlays = _skill_flip_overlays(toy_net, rng, 4)

        spy = _SpyBackend()  # 12 people < 192 -> sequential walks
        previous = set_backend(spy)
        try:
            session = PageRankExpertRanker().delta_session(toy_net)
            sequential = session.scores_batch(query, overlays)
        finally:
            set_backend(previous)
        assert spy.calls["power_iteration"] > 0
        assert spy.calls["power_iteration_stacked"] == 0

        stacked_spy = _SpyBackend(pagerank_stack_min_people=1)
        previous = set_backend(stacked_spy)
        try:
            session = PageRankExpertRanker().delta_session(toy_net)
            stacked = session.scores_batch(query, overlays)
        finally:
            set_backend(previous)
        assert stacked_spy.calls["power_iteration_stacked"] > 0
        for seq_vec, stacked_vec in zip(sequential, stacked):
            np.testing.assert_array_equal(seq_vec, stacked_vec)


# ----------------------------------------------------------------------
# FlushBus unit behavior
# ----------------------------------------------------------------------
class _Ov(float):
    """Overlay stand-in: the float value doubles as the flip-set
    identity the bus dedupes in-flight items by."""

    def flips(self):
        return ("flip", float(self))


def _ovs(*values):
    return [_Ov(v) for v in values]


class _FakeSession:
    """A session double whose batched kernels tag results with call
    shape, so tests can see exactly which merged call served a slice."""

    base_version = 0

    def __init__(self, fail=False):
        self.fail = fail
        self.batch_calls = []

    def scores_batch(self, query, overlays):
        if self.fail:
            raise RuntimeError("kernel exploded")
        self.batch_calls.append(len(overlays))
        return [np.full(3, float(ov)) for ov in overlays]


class TestFlushBus:
    def test_disarmed_is_pass_through(self):
        bus = FlushBus(window=0.0)
        session = _FakeSession()
        assert bus.submit_batch(session, ("q",), _ovs(1, 2)) is None
        assert session.batch_calls == []
        assert bus.counters()["flushes"] == 0

    def test_armed_single_participant_executes_directly(self):
        bus = FlushBus(window=0.0)
        session = _FakeSession()
        with bus.armed():
            results = bus.submit_batch(session, ("q",), _ovs(1, 2, 3))
        assert [vec[0] for vec in results] == [1.0, 2.0, 3.0]
        assert session.batch_calls == [3]
        counters = bus.counters()
        assert counters["flushes"] == 1
        assert counters["merged_flushes"] == 0  # nothing to fuse with

    def test_lone_armed_scope_skips_window(self):
        # A huge window would wedge this test if a lone shard paid it;
        # with no other armed scope live the flush runs immediately.
        bus = FlushBus(window=5.0)
        session = _FakeSession()
        with bus.armed():
            start = time.perf_counter()
            results = bus.submit_batch(session, ("q",), _ovs(1))
            elapsed = time.perf_counter() - start
        assert [vec[0] for vec in results] == [1.0]
        assert elapsed < 1.0

    def test_concurrent_submissions_merge_and_slice(self):
        bus = FlushBus(window=0.05)
        session = _FakeSession()
        results = {}
        barrier = threading.Barrier(3)

        def submit(name, items):
            barrier.wait()
            with bus.armed():
                results[name] = bus.submit_batch(session, ("q",), items)

        threads = [
            threading.Thread(target=submit, args=(name, items))
            for name, items in (
                ("a", _ovs(1, 2)), ("b", _ovs(3)), ("c", _ovs(4, 5))
            )
        ]
        # The outer armed scope keeps the leader's crowd check satisfied
        # even if its submit lands before the other workers arm.
        with bus.armed():
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # One merged kernel call served all five items...
        assert session.batch_calls == [5]
        # ...and every participant got exactly its own slice back.
        assert [vec[0] for vec in results["a"]] == [1.0, 2.0]
        assert [vec[0] for vec in results["b"]] == [3.0]
        assert [vec[0] for vec in results["c"]] == [4.0, 5.0]
        counters = bus.counters()
        assert counters["flushes"] == 3
        assert counters["merged_flushes"] == 1
        assert counters["fused_participants"] == 3
        assert counters["fused_items"] == 5
        assert counters["max_fused"] == 3
        assert counters["deduped_items"] == 0

    def test_duplicate_in_flight_items_computed_once(self):
        bus = FlushBus(window=0.05)
        session = _FakeSession()
        results = {}
        barrier = threading.Barrier(2)

        def submit(name, items):
            barrier.wait()
            with bus.armed():
                results[name] = bus.submit_batch(session, ("q",), items)

        threads = [
            threading.Thread(target=submit, args=(name, items))
            for name, items in (("a", _ovs(1, 2)), ("b", _ovs(2, 3)))
        ]
        with bus.armed():
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # Both participants wanted item 2: the merged kernel call ran
        # only the three distinct items, and both slices still line up.
        assert session.batch_calls == [3]
        assert [vec[0] for vec in results["a"]] == [1.0, 2.0]
        assert [vec[0] for vec in results["b"]] == [2.0, 3.0]
        counters = bus.counters()
        assert counters["merged_flushes"] == 1
        assert counters["fused_items"] == 4  # as submitted
        assert counters["deduped_items"] == 1  # one collapsed duplicate

    def test_merged_failure_falls_back_to_none(self):
        bus = FlushBus(window=0.0)
        session = _FakeSession(fail=True)
        with bus.armed():
            assert bus.submit_batch(session, ("q",), _ovs(1)) is None

    def test_max_items_overflow_starts_new_group(self):
        bus = FlushBus(window=0.05, max_items=3)
        session = _FakeSession()
        results = {}
        barrier = threading.Barrier(2)

        def submit(name, items):
            barrier.wait()
            with bus.armed():
                results[name] = bus.submit_batch(session, ("q",), items)

        threads = [
            threading.Thread(target=submit, args=(name, items))
            for name, items in (("a", _ovs(1, 2)), ("b", _ovs(3, 4)))
        ]
        with bus.armed():
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # 2 + 2 items over a cap of 3: two separate kernel calls, both
        # participants still answered correctly.
        assert sorted(session.batch_calls) == [2, 2]
        assert [vec[0] for vec in results["a"]] == [1.0, 2.0]
        assert [vec[0] for vec in results["b"]] == [3.0, 4.0]
        assert bus.counters()["merged_flushes"] == 0

    def test_armed_is_reentrant(self):
        bus = FlushBus(window=0.0)
        session = _FakeSession()
        with bus.armed():
            with bus.armed():
                assert bus.submit_batch(session, ("q",), _ovs(1)) is not None
            # still armed after the inner scope exits
            assert bus.submit_batch(session, ("q",), _ovs(2)) is not None
        assert bus.submit_batch(session, ("q",), _ovs(3)) is None
