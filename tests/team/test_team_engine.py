"""The team-formation delta session: exact team parity, cached-run reuse,
tie-break pinning, and invalidation."""

import numpy as np
import pytest

from repro.explain import MembershipTarget
from repro.graph import CollaborationNetwork
from repro.graph.perturbations import (
    AddEdge,
    AddSkill,
    RemoveEdge,
    RemoveSkill,
    apply_perturbations,
)
from repro.search import CoverageExpertRanker, ProbeEngine
from repro.team import CoverTeamDeltaSession, CoverTeamFormer


@pytest.fixture
def net():
    """A hub-and-spokes network with room for frontier choices: seed 0 is
    connected to 1..4; 5 hangs off 4; skills are spread so multi-step
    growth happens."""
    net = CollaborationNetwork()
    net.add_person("seed", {"graph"})
    net.add_person("m1", {"mining"})
    net.add_person("m2", {"vision"})
    net.add_person("m3", {"privacy"})
    net.add_person("m4", {"systems"})
    net.add_person("far", {"quantum"})
    for v in (1, 2, 3, 4):
        net.add_edge(0, v)
    net.add_edge(4, 5)
    return net


@pytest.fixture
def former():
    return CoverTeamFormer(CoverageExpertRanker())


def _reference(former, query, overlay, seed_member=None):
    former.full_rebuild = True
    former.ranker.full_rebuild = True
    try:
        return former.form(query, overlay, seed_member=seed_member)
    finally:
        former.full_rebuild = False
        former.ranker.full_rebuild = False


class TestDeltaDispatch:
    def test_overlay_forms_without_materializing(self, net, former):
        query = ["graph", "mining", "quantum"]
        overlay, q = apply_perturbations(net, query, [AddSkill(2, "extra")])
        team = former.form(q, overlay, seed_member=0)
        assert overlay._mat is None
        ref = _reference(former, q, overlay, seed_member=0)
        assert team.members == ref.members
        assert team.build_order == ref.build_order

    def test_session_cached_and_versioned(self, net, former):
        query = frozenset(["graph", "mining"])
        overlay, q = apply_perturbations(net, query, [AddSkill(2, "x")])
        former.form(q, overlay, seed_member=0)
        session = former._session
        assert isinstance(session, CoverTeamDeltaSession)
        assert session.valid_for(net)
        overlay2, q2 = apply_perturbations(net, query, [AddSkill(3, "y")])
        former.form(q2, overlay2, seed_member=0)
        assert former._session is session  # same base version: reused

        net.add_skill(5, "post-mutation")
        assert not session.valid_for(net)
        overlay3, q3 = apply_perturbations(net, query, [AddSkill(1, "z")])
        former.form(q3, overlay3, seed_member=0)
        assert former._session is not session  # version drift: rebuilt

    def test_full_rebuild_escape_hatch_skips_session(self, net, former):
        query = frozenset(["graph", "mining"])
        overlay, q = apply_perturbations(net, query, [AddSkill(2, "x")])
        former.full_rebuild = True
        try:
            former.form(q, overlay, seed_member=0)
        finally:
            former.full_rebuild = False
        assert getattr(former, "_session", None) is None

    def test_plain_network_skips_session(self, net, former):
        former.form(["graph", "mining"], net, seed_member=0)
        assert getattr(former, "_session", None) is None


class TestCachedRunFastPath:
    """Flips that provably miss the base run's support are answered with
    the cached team; everything else re-forms on the overlay."""

    def test_irrelevant_flip_hits_fast_path(self, net, former):
        query = frozenset(["graph", "mining"])  # base team: {0, 1}
        # Flip a non-member's skill far from the run's witnesses' reads:
        # person 5 is never a frontier of {0, 1}... it *is* reachable only
        # through 4, which IS a frontier — so flip a non-query skill
        # influence-free for coverage but visible to scores?  Coverage
        # ranker scores only move with query-term coverage, so a non-query
        # skill flip on a frontier person keeps every witness score equal.
        overlay, q = apply_perturbations(net, query, [AddSkill(5, "irrelevant")])
        team = former.form(q, overlay, seed_member=0)
        session = former._session
        assert session.fast_hits == 1 and session.reforms == 0
        assert team.members == {0, 1}
        ref = _reference(former, q, overlay, seed_member=0)
        assert team.members == ref.members

    def test_query_skill_flip_on_witness_reforms(self, net, former):
        query = frozenset(["graph", "mining"])
        # Person 2 is in the frontier of the base run: giving them a query
        # term must re-form (they now cover "mining" too).
        overlay, q = apply_perturbations(net, query, [AddSkill(2, "mining")])
        team = former.form(q, overlay, seed_member=0)
        session = former._session
        assert session.reforms == 1
        ref = _reference(former, q, overlay, seed_member=0)
        assert team.members == ref.members
        assert team.build_order == ref.build_order

    def test_edge_flip_on_member_reforms(self, net, former):
        query = frozenset(["graph", "quantum"])
        overlay, q = apply_perturbations(net, query, [AddEdge(0, 5)])
        team = former.form(q, overlay, seed_member=0)
        session = former._session
        assert session.reforms == 1
        ref = _reference(former, q, overlay, seed_member=0)
        assert team.members == ref.members
        assert 5 in team.members  # the new edge made quantum reachable

    def test_edge_flip_between_nonmembers_fast_paths(self, net, former):
        query = frozenset(["graph", "mining"])  # team {0, 1}; 2-3 outside
        overlay, q = apply_perturbations(net, query, [AddEdge(2, 3)])
        team = former.form(q, overlay, seed_member=0)
        session = former._session
        assert session.fast_hits == 1
        ref = _reference(former, q, overlay, seed_member=0)
        assert team.members == ref.members

    def test_auto_seed_change_reforms(self, net, former):
        """Without a pinned seed, a flip that changes the top-ranked person
        must abandon the cached run."""
        query = frozenset(["graph", "mining"])
        # Make person 3 the clear top scorer by handing them both terms.
        overlay, q = apply_perturbations(
            net, query, [AddSkill(3, "graph"), AddSkill(3, "mining")]
        )
        team = former.form(q, overlay)  # seed_member=None
        session = former._session
        assert session.reforms >= 1
        ref = _reference(former, q, overlay)
        assert team.seed == ref.seed == 3
        assert team.members == ref.members

    def test_membership_target_uses_delta_path(self, net, former):
        query = frozenset(["graph", "mining"])
        target = MembershipTarget(former, seed_member=0)
        engine = ProbeEngine(target, net)
        overlay, q = apply_perturbations(net, query, [RemoveSkill(1, "mining")])
        decision, _ = engine.probe(1, q, overlay)
        assert overlay._mat is None, "membership probe materialized the overlay"
        assert decision == (1 in _reference(former, q, overlay, seed_member=0))


class TestTieBreakPinning:
    """Two candidates covering equally with equal scores: the greedy must
    pick the lower id on every path — delta, re-formed, and reference —
    so team parity is exact, not merely score-parity."""

    @pytest.fixture
    def tie_net(self):
        net = CollaborationNetwork()
        net.add_person("seed", {"anchor"})
        net.add_person("low", {"target"})   # id 1
        net.add_person("high", {"target"})  # id 2: same cover, same score
        net.add_person("spare", set())
        net.add_edge(0, 1)
        net.add_edge(0, 2)
        net.add_edge(0, 3)
        return net

    def test_equal_cover_equal_score_picks_lower_id(self, tie_net, former):
        team = former.form(["anchor", "target"], tie_net, seed_member=0)
        assert team.members == {0, 1}
        assert team.build_order == (0, 1)

    def test_tie_break_identical_on_delta_and_reference_paths(
        self, tie_net, former
    ):
        query = frozenset(["anchor", "target"])
        # An irrelevant flip keeps the tie intact; both paths must still
        # resolve it to the lower id.
        overlay, q = apply_perturbations(tie_net, query, [AddSkill(3, "noise")])
        fast = former.form(q, overlay, seed_member=0)
        assert overlay._mat is None
        ref = _reference(former, q, overlay, seed_member=0)
        assert fast.members == ref.members == {0, 1}
        assert fast.build_order == ref.build_order == (0, 1)

    def test_tie_break_after_reform_matches_reference(self, tie_net, former):
        query = frozenset(["anchor", "target"])
        # Remove the chosen tied candidate's term: the re-formed run must
        # now pick the other, identically on both paths.
        overlay, q = apply_perturbations(tie_net, query, [RemoveSkill(1, "target")])
        fast = former.form(q, overlay, seed_member=0)
        ref = _reference(former, q, overlay, seed_member=0)
        assert fast.members == ref.members == {0, 2}
        assert fast.build_order == ref.build_order == (0, 2)


class TestWitnessSoundness:
    """Chains of flips that interact with the run's support must never be
    fast-pathed into a stale team."""

    def test_removing_covering_members_skill(self, net, former):
        query = frozenset(["graph", "mining"])
        overlay, q = apply_perturbations(net, query, [RemoveSkill(1, "mining")])
        team = former.form(q, overlay, seed_member=0)
        ref = _reference(former, q, overlay, seed_member=0)
        assert team.members == ref.members
        assert team.uncovered_terms == ref.uncovered_terms

    def test_edge_removal_disconnecting_member(self, net, former):
        query = frozenset(["graph", "mining"])
        overlay, q = apply_perturbations(net, query, [RemoveEdge(0, 1)])
        team = former.form(q, overlay, seed_member=0)
        ref = _reference(former, q, overlay, seed_member=0)
        assert team.members == ref.members
        assert 1 not in team.members

    def test_chained_flips_flattened_once(self, net, former):
        query = frozenset(["graph", "mining", "vision"])
        overlay, q = apply_perturbations(net, query, [AddSkill(1, "vision")])
        branched = overlay.branch()
        branched.add_skill(2, "transient")
        branched.remove_skill(2, "transient")  # annihilates
        team = former.form(q, branched, seed_member=0)
        flat_team = former.form(q, overlay, seed_member=0)
        assert team.members == flat_team.members
        ref = _reference(former, q, branched, seed_member=0)
        assert team.members == ref.members
