"""Team formation system tests."""

import pytest

from repro.graph import CollaborationNetwork
from repro.search import CoverageExpertRanker
from repro.team import CoverTeamFormer, MstTeamFormer, Team


@pytest.fixture
def net():
    """A path a--b--c--d with complementary skills, plus a far expert e
    connected only to d."""
    net = CollaborationNetwork()
    net.add_person("a", {"graph"})
    net.add_person("b", {"mining"})
    net.add_person("c", {"vision"})
    net.add_person("d", {"privacy"})
    net.add_person("e", {"quantum"})
    for u, v in [(0, 1), (1, 2), (2, 3), (3, 4)]:
        net.add_edge(u, v)
    return net


@pytest.fixture
def former():
    return CoverTeamFormer(CoverageExpertRanker())


class TestCoverTeamFormer:
    def test_grows_until_covered(self, net, former):
        team = former.form(["graph", "mining"], net, seed_member=0)
        assert team.members == {0, 1}
        assert team.covers_query
        assert team.seed == 0

    def test_team_is_connected_chain(self, net, former):
        team = former.form(["graph", "vision"], net, seed_member=0)
        # Must walk through b to reach c.
        assert team.members == {0, 1, 2}
        assert team.covers_query

    def test_seed_defaults_to_top_ranked(self, net, former):
        team = former.form(["graph"], net)
        assert team.seed == 0
        assert 0 in team.members

    def test_max_size_respected(self, net):
        former = CoverTeamFormer(CoverageExpertRanker(), max_size=2)
        team = former.form(["graph", "mining", "vision", "privacy"], net, seed_member=0)
        assert team.size <= 2
        assert not team.covers_query

    def test_uncoverable_terms_reported(self, net, former):
        team = former.form(["graph", "nonexistent"], net, seed_member=0)
        assert "nonexistent" in team.uncovered_terms
        assert "graph" in team.covered_terms

    def test_membership_contract(self, net, former):
        assert former.membership(1, ["graph", "mining"], net, seed_member=0)
        assert not former.membership(4, ["graph", "mining"], net, seed_member=0)

    def test_build_order_starts_with_seed(self, net, former):
        team = former.form(["graph", "privacy"], net, seed_member=0)
        assert team.build_order[0] == 0

    def test_connector_budget_limits_wandering(self, net):
        """With zero connectors allowed, the team cannot bridge through
        non-covering nodes."""
        former = CoverTeamFormer(CoverageExpertRanker(), max_connectors=0)
        team = former.form(["graph", "privacy"], net, seed_member=0)
        assert not team.covers_query

    def test_invalid_max_size(self):
        with pytest.raises(ValueError):
            CoverTeamFormer(CoverageExpertRanker(), max_size=0)

    def test_team_contains_dunder(self, net, former):
        team = former.form(["graph"], net, seed_member=0)
        assert 0 in team
        assert 4 not in team


class TestMstTeamFormer:
    def test_covers_query(self, net):
        team = MstTeamFormer().form(["graph", "vision"], net)
        assert team.covers_query

    def test_connects_through_paths(self, net):
        team = MstTeamFormer().form(["graph", "privacy"], net)
        # Path a..d requires b and c as connectors.
        assert {0, 1, 2, 3} <= team.members

    def test_rarest_first_prefers_scarce_skill_holder(self):
        net = CollaborationNetwork()
        net.add_person("gen1", {"common"})
        net.add_person("gen2", {"common"})
        net.add_person("rare", {"rare", "common"})
        net.add_edge(0, 2)
        net.add_edge(1, 2)
        team = MstTeamFormer().form(["rare", "common"], net)
        # One person covers both: minimal team.
        assert team.members == {2}

    def test_seed_member_kept(self, net):
        team = MstTeamFormer().form(["vision"], net, seed_member=0)
        assert 0 in team.members

    def test_disconnected_holder_kept_as_island(self):
        net = CollaborationNetwork()
        net.add_person("a", {"x"})
        net.add_person("b", {"y"})  # no edges at all
        team = MstTeamFormer().form(["x", "y"], net)
        assert team.members == {0, 1}

    def test_invalid_max_size(self):
        with pytest.raises(ValueError):
            MstTeamFormer(max_size=0)


class TestTeamOnTrainedStack:
    def test_former_builds_around_expert(
        self, small_dataset, small_former, small_query
    ):
        net = small_dataset.network
        seed = small_former.ranker.top_k(small_query, net, 5)[0]
        team = small_former.form(small_query, net, seed_member=seed)
        assert seed in team.members
        assert team.size >= 1
        # Team members form a connected subgraph around the seed.
        for m in team.members:
            if m != seed:
                assert any(
                    net.has_edge(m, other) for other in team.members if other != m
                )
