"""Candidate-generator tests (Pruning Strategies 1, 4, 5)."""

import pytest

from repro.embeddings import train_ppmi_embedding
from repro.explain import RelevanceTarget
from repro.explain.candidates import (
    link_addition_candidates,
    link_removal_candidates,
    query_augmentation_candidates,
    skill_addition_candidates,
    skill_removal_candidates,
)
from repro.graph import CollaborationNetwork
from repro.graph.perturbations import (
    AddEdge,
    AddQueryTerm,
    AddSkill,
    RemoveEdge,
    RemoveSkill,
)
from repro.linkpred import HeuristicLinkPredictor
from repro.search import CoverageExpertRanker


@pytest.fixture
def net():
    net = CollaborationNetwork()
    net.add_person("a", {"graph", "mining"})
    net.add_person("b", {"graph"})
    net.add_person("c", {"vision", "mining"})
    net.add_person("d", {"privacy"})
    net.add_person("e", {"stream"})
    for u, v in [(0, 1), (0, 2), (1, 3), (2, 4)]:
        net.add_edge(u, v)
    return net


@pytest.fixture
def embedding(net):
    profiles = [sorted(net.skills(p)) for p in net.people()] * 3
    return train_ppmi_embedding(profiles, dim=4, min_count=1)


@pytest.fixture
def target():
    return RelevanceTarget(CoverageExpertRanker(), k=2)


QUERY = frozenset({"graph", "mining"})


class TestSkillRemoval:
    def test_only_existing_assignments(self, net, embedding):
        for cand in skill_removal_candidates(0, QUERY, net, embedding, t=4, radius=1):
            assert isinstance(cand, RemoveSkill)
            assert net.has_skill(cand.person, cand.skill)

    def test_respects_neighborhood(self, net, embedding):
        cands = skill_removal_candidates(0, QUERY, net, embedding, t=4, radius=1)
        people = {c.person for c in cands}
        assert people <= {0, 1, 2}  # N(0, 1)

    def test_query_skills_among_candidates(self, net, embedding):
        cands = skill_removal_candidates(0, QUERY, net, embedding, t=4, radius=1)
        skills = {c.skill for c in cands}
        assert "graph" in skills or "mining" in skills


class TestSkillAddition:
    def test_only_missing_assignments(self, net, embedding):
        for cand in skill_addition_candidates(3, QUERY, net, embedding, t=4, radius=1):
            assert isinstance(cand, AddSkill)
            assert not net.has_skill(cand.person, cand.skill)

    def test_skills_come_from_universe(self, net, embedding):
        cands = skill_addition_candidates(3, QUERY, net, embedding, t=4, radius=1)
        universe = net.skill_universe()
        assert all(c.skill in universe for c in cands)

    def test_lexical_fallback_covers_oov_queries(self, net, embedding):
        """Query terms absent from the embedding still yield candidates."""
        cands = skill_addition_candidates(
            3, frozenset({"zzz-unknown"}), net, embedding, t=3, radius=1
        )
        assert cands  # fallback fills from the pool deterministically


class TestQueryAugmentation:
    def test_promote_excludes_query_terms(self, net, embedding):
        cands = query_augmentation_candidates(
            3, QUERY, net, embedding, t=4, promote=True
        )
        assert all(isinstance(c, AddQueryTerm) for c in cands)
        assert all(c.term not in QUERY for c in cands)

    def test_evict_excludes_own_skills(self, net, embedding):
        cands = query_augmentation_candidates(
            0, QUERY, net, embedding, t=4, promote=False
        )
        own = net.skills(0)
        assert all(c.term not in own for c in cands)

    def test_bounded_by_t(self, net, embedding):
        cands = query_augmentation_candidates(
            0, QUERY, net, embedding, t=2, promote=False
        )
        assert len(cands) <= 2


class TestLinkAddition:
    def test_only_missing_edges(self, net, embedding, target):
        predictor = HeuristicLinkPredictor("common_neighbors").fit(net)
        cands = link_addition_candidates(
            3, QUERY, net, predictor, target, t=5, radius=1
        )
        for c in cands:
            assert isinstance(c, AddEdge)
            assert not net.has_edge(c.u, c.v)

    def test_person_anchored_edges_first(self, net, embedding, target):
        predictor = HeuristicLinkPredictor("common_neighbors").fit(net)
        cands = link_addition_candidates(
            3, QUERY, net, predictor, target, t=3, radius=1
        )
        assert cands
        assert 3 in (cands[0].u, cands[0].v)

    def test_bounded_by_t(self, net, target):
        predictor = HeuristicLinkPredictor("jaccard").fit(net)
        cands = link_addition_candidates(
            3, QUERY, net, predictor, target, t=2, radius=1
        )
        assert len(cands) <= 2


class TestLinkRemoval:
    def test_only_existing_edges(self, net, target):
        cands, probes = link_removal_candidates(0, QUERY, net, target, t=3, radius=2)
        for c in cands:
            assert isinstance(c, RemoveEdge)
            assert net.has_edge(c.u, c.v)
        assert probes > 0

    def test_most_damaging_edge_first(self, net, target):
        """For expert 0, losing (0,2) costs the 'mining' neighbor bonus —
        it must rank above edges not touching 0's score."""
        cands, _ = link_removal_candidates(0, QUERY, net, target, t=4, radius=2)
        assert cands[0] in (RemoveEdge(0, 2), RemoveEdge(0, 1))

    def test_probe_cap(self, net, target):
        cands, probes = link_removal_candidates(
            0, QUERY, net, target, t=2, radius=2, max_probe_edges=2
        )
        assert probes <= 3  # base + capped edges
        assert len(cands) <= 2

    def test_no_edges_case(self, target):
        lonely = CollaborationNetwork()
        lonely.add_person("x", {"graph"})
        lonely.add_person("y")
        cands, probes = link_removal_candidates(
            0, frozenset({"graph"}), lonely, target, t=2, radius=2
        )
        assert cands == [] and probes == 0
