"""JSON round-trip tests for explanation serialization."""

import json

import pytest

from repro.explain import (
    Counterfactual,
    CounterfactualExplanation,
    EdgeFeature,
    FactualExplanation,
    FeatureAttribution,
    QueryTermFeature,
    SkillAssignmentFeature,
)
from repro.explain.serialize import (
    counterfactual_from_dict,
    counterfactual_to_dict,
    factual_from_dict,
    factual_to_dict,
    feature_from_dict,
    feature_to_dict,
    perturbation_from_dict,
    perturbation_to_dict,
)
from repro.graph.perturbations import (
    AddEdge,
    AddQueryTerm,
    AddSkill,
    RemoveEdge,
    RemoveQueryTerm,
    RemoveSkill,
)


class TestFeatureRoundTrip:
    @pytest.mark.parametrize(
        "feature",
        [
            QueryTermFeature("graph"),
            SkillAssignmentFeature(3, "mining"),
            EdgeFeature(1, 7),
        ],
    )
    def test_roundtrip(self, feature):
        payload = feature_to_dict(feature)
        json.dumps(payload)  # must be JSON-safe
        assert feature_from_dict(payload) == feature

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            feature_from_dict({"type": "nope"})


class TestPerturbationRoundTrip:
    @pytest.mark.parametrize(
        "perturbation",
        [
            AddSkill(2, "graph"),
            RemoveSkill(0, "mining"),
            AddEdge(4, 9),
            RemoveEdge(1, 2),
            AddQueryTerm("vision"),
            RemoveQueryTerm("privacy"),
        ],
    )
    def test_roundtrip(self, perturbation):
        payload = perturbation_to_dict(perturbation)
        json.dumps(payload)
        assert perturbation_from_dict(payload) == perturbation

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            perturbation_from_dict({"type": "nope"})


class TestExplanationRoundTrip:
    def test_factual(self):
        fx = FactualExplanation(
            person=5,
            query=frozenset({"graph", "mining"}),
            attributions=[
                FeatureAttribution(SkillAssignmentFeature(5, "graph"), 0.7),
                FeatureAttribution(QueryTermFeature("mining"), -0.1),
            ],
            base_value=0.0,
            full_value=1.0,
            n_evaluations=64,
            elapsed_seconds=0.5,
            method="kernel",
            pruned=True,
            kind="skills",
        )
        payload = factual_to_dict(fx)
        json.dumps(payload)
        back = factual_from_dict(payload)
        assert back.person == fx.person
        assert back.query == fx.query
        assert back.attributions == fx.attributions
        assert back.size == fx.size

    def test_counterfactual(self):
        cf = CounterfactualExplanation(
            person=3,
            query=frozenset({"graph"}),
            counterfactuals=[
                Counterfactual((AddSkill(3, "mining"), AddEdge(3, 7)), 4.0),
            ],
            initial_decision=False,
            n_probes=42,
            elapsed_seconds=1.5,
            kind="skill_addition",
            pruned=True,
            timed_out=False,
            candidate_count=12,
        )
        payload = counterfactual_to_dict(cf)
        json.dumps(payload)
        back = counterfactual_from_dict(payload)
        assert back.counterfactuals == cf.counterfactuals
        assert back.initial_decision is False
        assert back.candidate_count == 12

    def test_wrong_payload_types_rejected(self):
        with pytest.raises(ValueError):
            factual_from_dict({"type": "counterfactual"})
        with pytest.raises(ValueError):
            counterfactual_from_dict({"type": "factual"})


class TestServiceRoundTrip:
    """Requests, structured errors, and outcome-tagged responses — the
    wire format a deployed service ships to its frontend."""

    def _request(self, **overrides):
        from repro.service import ExplainRequest

        kwargs = dict(
            kind="cf_skills",
            person=4,
            query=("graph", "mining"),
            team=True,
            seed_member=2,
            tag="expert",
            timeout_seconds=1.5,
            probe_limit=500,
            session="alice",
        )
        kwargs.update(overrides)
        return ExplainRequest(**kwargs)

    def test_request(self):
        from repro.explain.serialize import request_from_dict, request_to_dict

        request = self._request()
        payload = request_to_dict(request)
        json.dumps(payload)
        assert request_from_dict(payload) == request

    def test_request_defaults(self):
        from repro.explain.serialize import request_from_dict, request_to_dict

        request = self._request(
            team=False, seed_member=None,
            timeout_seconds=None, probe_limit=None, session="",
        )
        assert request_from_dict(request_to_dict(request)) == request

    def test_error(self):
        from repro.explain.serialize import (
            explain_error_from_dict,
            explain_error_to_dict,
        )
        from repro.service import ExplainError

        error = ExplainError(
            kind="InjectedSessionError",
            message="injected session fault",
            retryable=True,
            traceback="Traceback (most recent call last): ...",
        )
        payload = explain_error_to_dict(error)
        json.dumps(payload)
        back = explain_error_from_dict(payload)
        assert back == error
        assert back.traceback == error.traceback  # excluded from ==, so check

    def test_failed_response(self):
        from repro.explain.serialize import response_from_dict, response_to_dict
        from repro.service import ExplainError, ExplainResponse

        response = ExplainResponse(
            request=self._request(),
            elapsed_seconds=0.25,
            error=ExplainError(kind="Rejected", message="load_shed:max_in_flight",
                               retryable=True),
            outcome="rejected",
        )
        payload = response_to_dict(response)
        json.dumps(payload)
        back = response_from_dict(payload)
        assert back == response
        assert not back.ok

    def test_degraded_response_with_explanation(self):
        from repro.explain.serialize import response_from_dict, response_to_dict
        from repro.service import ExplainResponse

        explanation = FactualExplanation(
            person=4,
            query=frozenset({"graph", "mining"}),
            attributions=[
                FeatureAttribution(SkillAssignmentFeature(4, "graph"), 0.4),
            ],
            base_value=0.0,
            full_value=1.0,
            n_evaluations=12,
            elapsed_seconds=0.1,
            method="exact-partial",
            pruned=True,
            kind="skills",
        )
        response = ExplainResponse(
            request=self._request(kind="skills"),
            explanation=explanation,
            elapsed_seconds=0.5,
            coalesced=True,
            outcome="degraded",
            degraded_reason="probe_budget",
            fallback="full_rebuild",
        )
        payload = response_to_dict(response)
        json.dumps(payload)
        back = response_from_dict(payload)
        assert back.outcome == "degraded"
        assert back.degraded_reason == "probe_budget"
        assert back.fallback == "full_rebuild"
        assert back.coalesced
        assert back.explanation.attributions == explanation.attributions
        assert back.ok and back.degraded
