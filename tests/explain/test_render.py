"""Renderer tests: content, not just smoke."""

import pytest

from repro.explain import (
    Counterfactual,
    CounterfactualExplanation,
    FactualExplanation,
    FeatureAttribution,
    EdgeFeature,
    QueryTermFeature,
    SkillAssignmentFeature,
    render_collaboration_graph,
    render_counterfactuals,
    render_force_plot,
    render_skill_summary,
    render_team,
)
from repro.graph import CollaborationNetwork
from repro.graph.perturbations import AddQueryTerm, RemoveSkill
from repro.team.base import Team


@pytest.fixture
def net():
    net = CollaborationNetwork()
    net.add_person("Ada", {"graph"})
    net.add_person("Bob", {"mining"})
    net.add_edge(0, 1)
    return net


def _factual(attrs, kind="skills"):
    return FactualExplanation(
        person=0,
        query=frozenset({"graph"}),
        attributions=attrs,
        base_value=0.0,
        full_value=1.0,
        n_evaluations=8,
        elapsed_seconds=0.01,
        method="exact",
        pruned=True,
        kind=kind,
    )


class TestForcePlot:
    def test_contains_person_query_and_features(self, net):
        fx = _factual([
            FeatureAttribution(SkillAssignmentFeature(0, "graph"), 0.8),
            FeatureAttribution(SkillAssignmentFeature(1, "mining"), -0.2),
        ])
        out = render_force_plot(fx, net)
        assert "Ada" in out and "graph" in out
        assert "+0.800" in out and "-0.200" in out
        assert "++" in out and "-" in out  # bars with signs

    def test_empty_explanation(self, net):
        out = render_force_plot(_factual([]), net)
        assert "(no features)" in out

    def test_top_limits_rows(self, net):
        attrs = [
            FeatureAttribution(SkillAssignmentFeature(0, f"s{i}"), 0.1 * (i + 1))
            for i in range(10)
        ]
        out = render_force_plot(_factual(attrs), net, top=3)
        assert out.count("\n") <= 6


class TestCollaborationGraph:
    def test_lists_edges_with_signs(self, net):
        fx = _factual(
            [FeatureAttribution(EdgeFeature(0, 1), 0.5)], kind="collaborations"
        )
        out = render_collaboration_graph(fx, net)
        assert "Ada -- Bob" in out
        assert "supports" in out

    def test_empty(self, net):
        out = render_collaboration_graph(_factual([], kind="collaborations"), net)
        assert "none" in out


class TestCounterfactualRendering:
    def test_eviction_phrasing(self, net):
        cf = CounterfactualExplanation(
            person=0,
            query=frozenset({"graph"}),
            counterfactuals=[
                Counterfactual((RemoveSkill(0, "graph"),), 5.0),
            ],
            initial_decision=True,
            n_probes=12,
            elapsed_seconds=0.02,
            kind="skill_removal",
            pruned=True,
        )
        out = render_counterfactuals(cf, net)
        assert "would no longer be selected" in out
        assert "remove skill 'graph' from Ada" in out
        assert "new rank 5" in out

    def test_promotion_phrasing(self, net):
        cf = CounterfactualExplanation(
            person=1,
            query=frozenset({"graph"}),
            counterfactuals=[Counterfactual((AddQueryTerm("mining"),), 2.0)],
            initial_decision=False,
            n_probes=3,
            elapsed_seconds=0.01,
            kind="query_augmentation",
            pruned=True,
        )
        out = render_counterfactuals(cf, net)
        assert "would become selected" in out
        assert "add 'mining' to the query" in out

    def test_empty_and_timeout(self, net):
        cf = CounterfactualExplanation(
            person=0,
            query=frozenset({"graph"}),
            counterfactuals=[],
            initial_decision=True,
            n_probes=1,
            elapsed_seconds=0.01,
            kind="skill_removal",
            pruned=True,
            timed_out=True,
        )
        out = render_counterfactuals(cf, net)
        assert "no counterfactual found" in out
        assert "timed out" in out


class TestTeamRendering:
    def test_team_view(self, net):
        team = Team(
            members=frozenset({0, 1}),
            seed=0,
            covered_terms=frozenset({"graph"}),
            uncovered_terms=frozenset(),
            build_order=(0, 1),
        )
        out = render_team(team, net)
        assert "[seed] Ada" in out
        assert "[member] Bob" in out
        assert "covers the full query" in out

    def test_uncovered_listed(self, net):
        team = Team(
            members=frozenset({0}),
            seed=0,
            covered_terms=frozenset({"graph"}),
            uncovered_terms=frozenset({"quantum"}),
        )
        assert "uncovered: quantum" in render_team(team, net)


class TestSkillSummary:
    def test_splits_positive_negative(self, net):
        fx = _factual([
            FeatureAttribution(SkillAssignmentFeature(0, "graph"), 0.8),
            FeatureAttribution(SkillAssignmentFeature(1, "mining"), -0.2),
        ])
        out = render_skill_summary(fx, net)
        assert "supporting skills: graph" in out
        assert "opposing skills:   mining" in out
