"""SHAP exactness through the shared multi-query probe sessions.

The biased-assessment literature (Decorte et al.) insists explanation
pipelines be validated against exact references.  This suite does that for
the PR-4 shared-session machinery: the KernelSHAP estimator, with its
value function routed through one :class:`ProbeEngine` (shared multi-query
contexts + batched delta forwards + the two-level score memo), must agree
with exhaustive Shapley enumeration on small networks — for **every
ranker** — and every produced :class:`ShapResult` must satisfy the
efficiency axiom.

KernelSHAP recovers exact Shapley values whenever its coalition budget
enumerates every non-trivial coalition and no L1 sparsification is applied
(the constrained weighted regression is then fully determined); the tests
pick feature counts small enough for that regime.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import toy_network
from repro.explain import FactualConfig, FactualExplainer, RelevanceTarget
from repro.explain.features import QueryTermFeature
from repro.explain.shap import exact_shap, kernel_shap
from repro.search import (
    DocumentExpertRanker,
    HitsExpertRanker,
    PageRankExpertRanker,
    ProbeEngine,
)

RANKERS = {
    "pagerank": PageRankExpertRanker,
    "hits": HitsExpertRanker,
    "tfidf": DocumentExpertRanker,
}


def _query_for(net, n_terms=4, seed=3):
    skills = sorted(net.skill_universe())
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(skills), size=min(n_terms, len(skills)), replace=False)
    return frozenset(skills[int(i)] for i in picks)


def _explainer(ranker, net, k=5):
    target = RelevanceTarget(ranker, k=k)
    engine = ProbeEngine(target, net)
    return FactualExplainer(target, FactualConfig(), engine=engine), engine


def _subject(ranker, net, query):
    """Someone mid-ranking, so coalitions actually flip the decision."""
    return ranker.rank(query, net)[2]


class TestKernelEqualsExactThroughSharedSessions:
    """``kernel_shap`` (full enumeration budget, no L1) == ``exact_shap``
    when both route through the shared multi-query context."""

    @pytest.mark.parametrize("ranker_name", sorted(RANKERS))
    def test_query_features(self, ranker_name):
        net = toy_network(n_people=14, seed=5)
        ranker = RANKERS[ranker_name]()
        query = _query_for(net)
        explainer, engine = _explainer(ranker, net)
        person = _subject(ranker, net, query)
        features = [QueryTermFeature(t) for t in sorted(query)]
        fn = explainer._value_function(person, query, net, features)
        m = len(features)
        exact = exact_shap(fn, m)
        kernel = kernel_shap(fn, m, n_samples=2 ** m + 2 * m, l1_regularization=None)
        np.testing.assert_allclose(kernel.values, exact.values, atol=1e-6)
        assert kernel.base_value == exact.base_value
        assert kernel.full_value == exact.full_value
        # The sweep really went through the shared machinery: the engine
        # served multi-query flushes and/or memoized score vectors.
        assert engine.multi_flushes > 0 or engine.score_hits > 0

    @pytest.mark.parametrize("ranker_name", sorted(RANKERS))
    def test_skill_features(self, ranker_name):
        net = toy_network(n_people=14, seed=7)
        ranker = RANKERS[ranker_name]()
        query = _query_for(net, seed=11)
        explainer, _ = _explainer(ranker, net)
        person = _subject(ranker, net, query)
        features = explainer.skill_features(person, net)[:6]
        if not features:
            pytest.skip("no skill features in the neighborhood")
        fn = explainer._value_function(person, query, net, features)
        m = len(features)
        exact = exact_shap(fn, m)
        kernel = kernel_shap(fn, m, n_samples=2 ** m + 2 * m, l1_regularization=None)
        np.testing.assert_allclose(kernel.values, exact.values, atol=1e-6)

    @pytest.mark.slow
    @pytest.mark.parametrize("ranker_name", sorted(RANKERS))
    @pytest.mark.parametrize("seed", range(5))
    def test_query_features_sweep(self, ranker_name, seed):
        net = toy_network(n_people=int(12 + seed), seed=seed)
        ranker = RANKERS[ranker_name]()
        query = _query_for(net, seed=seed + 50)
        explainer, _ = _explainer(ranker, net)
        person = _subject(ranker, net, query)
        features = [QueryTermFeature(t) for t in sorted(query)]
        fn = explainer._value_function(person, query, net, features)
        m = len(features)
        exact = exact_shap(fn, m)
        kernel = kernel_shap(fn, m, n_samples=2 ** m + 2 * m, l1_regularization=None)
        np.testing.assert_allclose(kernel.values, exact.values, atol=1e-6)


class TestEfficiencyAxiomEveryRanker:
    """Σφ == f(full) − f(∅) for every ranker and every factual kind —
    through the full explainer entry points (prefetch + shared engine)."""

    @pytest.mark.parametrize("ranker_name", sorted(RANKERS))
    def test_efficiency_holds(self, ranker_name):
        net = toy_network(n_people=14, seed=5)
        ranker = RANKERS[ranker_name]()
        query = _query_for(net)
        explainer, _ = _explainer(ranker, net)
        person = _subject(ranker, net, query)
        for method in ("explain_query", "explain_skills", "explain_collaborations"):
            result = getattr(explainer, method)(person, query, net)
            if result.method == "empty":
                # No influential edges (e.g. the graph-blind TF-IDF ranker
                # attributes nothing to collaborations): the sentinel
                # explanation carries no SHAP decomposition to check.
                continue
            total = sum(a.value for a in result.attributions)
            assert (
                abs(total - (result.full_value - result.base_value)) < 1e-6
            ), f"{ranker_name}.{method} violated efficiency"

    def test_efficiency_holds_gcn(self, small_gcn_ranker, small_dataset, small_query):
        net = small_dataset.network
        explainer, _ = _explainer(small_gcn_ranker, net, k=10)
        person = _subject(small_gcn_ranker, net, frozenset(small_query))
        result = explainer.explain_query(person, frozenset(small_query), net)
        total = sum(a.value for a in result.attributions)
        assert abs(total - (result.full_value - result.base_value)) < 1e-6


class TestSharedContextConsistency:
    """The value function's bulk (prefetch) path and its scalar path must
    produce identical coalition values — the shared context cannot drift
    from per-probe evaluation."""

    @pytest.mark.parametrize("ranker_name", sorted(RANKERS))
    def test_prefetched_equals_sequential(self, ranker_name):
        net = toy_network(n_people=14, seed=9)
        ranker = RANKERS[ranker_name]()
        query = _query_for(net, seed=21)
        person = _subject(ranker, net, query)
        features = [QueryTermFeature(t) for t in sorted(query)]
        target = RelevanceTarget(ranker, k=5)

        shared_explainer = FactualExplainer(
            target, FactualConfig(), engine=ProbeEngine(target, net)
        )
        shared_fn = shared_explainer._value_function(person, query, net, features)
        plain_engine = ProbeEngine(target, net, memoize=False, full_rebuild=True)
        plain_explainer = FactualExplainer(target, FactualConfig(), engine=plain_engine)
        plain_fn = plain_explainer._value_function(person, query, net, features)

        rng = np.random.default_rng(0)
        masks = [rng.random(len(features)) < 0.5 for _ in range(16)]
        shared_fn.prefetch(masks)  # bulk path first: fills the memos
        for mask in masks:
            assert shared_fn(mask) == plain_fn(mask)
