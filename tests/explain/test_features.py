"""Feature masking semantics tests."""

import numpy as np
import pytest

from repro.datasets import toy_network
from repro.explain import EdgeFeature, QueryTermFeature, SkillAssignmentFeature
from repro.explain.features import masked_inputs, validate_features


@pytest.fixture
def net():
    return toy_network(n_people=8, seed=2)


class TestFeatureObjects:
    def test_edge_feature_canonical(self):
        assert EdgeFeature(5, 2) == EdgeFeature(2, 5)
        assert EdgeFeature(5, 2).u == 2

    def test_labels_are_readable(self, net):
        skill = sorted(net.skills(0))[0]
        assert skill in SkillAssignmentFeature(0, skill).label(net)
        assert "query:" in QueryTermFeature("x").label(net)
        u, v = sorted(net.edges())[0]
        assert "--" in EdgeFeature(u, v).label(net)

    def test_removal_perturbations_match_type(self, net):
        from repro.graph.perturbations import (
            RemoveEdge,
            RemoveQueryTerm,
            RemoveSkill,
        )

        assert isinstance(QueryTermFeature("x").removal(), RemoveQueryTerm)
        assert isinstance(SkillAssignmentFeature(0, "x").removal(), RemoveSkill)
        assert isinstance(EdgeFeature(0, 1).removal(), RemoveEdge)


class TestValidateFeatures:
    def test_valid_features_pass(self, net):
        skill = sorted(net.skills(1))[0]
        u, v = sorted(net.edges())[0]
        validate_features(
            [
                QueryTermFeature("graph"),
                SkillAssignmentFeature(1, skill),
                EdgeFeature(u, v),
            ],
            frozenset({"graph"}),
            net,
        )

    def test_absent_query_term_rejected(self, net):
        with pytest.raises(ValueError, match="not in query"):
            validate_features([QueryTermFeature("zz")], frozenset({"a"}), net)

    def test_absent_skill_rejected(self, net):
        with pytest.raises(ValueError, match="skill feature absent"):
            validate_features(
                [SkillAssignmentFeature(0, "not-a-skill")], frozenset(), net
            )

    def test_absent_edge_rejected(self, net):
        non_edge = None
        for u in net.people():
            for v in net.people():
                if u < v and not net.has_edge(u, v):
                    non_edge = (u, v)
                    break
            if non_edge:
                break
        with pytest.raises(ValueError, match="edge feature absent"):
            validate_features([EdgeFeature(*non_edge)], frozenset(), net)


class TestMaskedInputs:
    def test_all_on_returns_originals(self, net):
        features = [QueryTermFeature("a")]
        out_net, out_q = masked_inputs(
            features, np.array([True]), frozenset({"a"}), net
        )
        assert out_net is net
        assert out_q == {"a"}

    def test_query_mask_off(self, net):
        features = [QueryTermFeature("a"), QueryTermFeature("b")]
        out_net, out_q = masked_inputs(
            features, np.array([False, True]), frozenset({"a", "b"}), net
        )
        assert out_q == {"b"}
        assert out_net is net  # no graph copy for query-only masking

    def test_skill_mask_off_copies_network(self, net):
        skill = sorted(net.skills(3))[0]
        features = [SkillAssignmentFeature(3, skill)]
        out_net, _ = masked_inputs(features, np.array([False]), frozenset(), net)
        assert out_net is not net
        assert not out_net.has_skill(3, skill)
        assert net.has_skill(3, skill)

    def test_edge_mask_off(self, net):
        u, v = sorted(net.edges())[0]
        features = [EdgeFeature(u, v)]
        out_net, _ = masked_inputs(features, np.array([False]), frozenset(), net)
        assert not out_net.has_edge(u, v)
        assert net.has_edge(u, v)

    def test_mixed_masking(self, net):
        skill = sorted(net.skills(0))[0]
        u, v = sorted(net.edges())[0]
        features = [
            QueryTermFeature("q1"),
            SkillAssignmentFeature(0, skill),
            EdgeFeature(u, v),
        ]
        out_net, out_q = masked_inputs(
            features,
            np.array([False, False, False]),
            frozenset({"q1", "q2"}),
            net,
        )
        assert out_q == {"q2"}
        assert not out_net.has_skill(0, skill)
        assert not out_net.has_edge(u, v)

    def test_masking_absent_feature_raises(self, net):
        features = [SkillAssignmentFeature(0, "ghost-skill")]
        with pytest.raises(ValueError, match="absent skill"):
            masked_inputs(features, np.array([False]), frozenset(), net)

    def test_matches_perturbation_path(self, net):
        """The fast bulk path must agree with apply_perturbations."""
        from repro.graph.perturbations import apply_perturbations

        skill = sorted(net.skills(2))[0]
        u, v = sorted(net.edges())[-1]
        features = [SkillAssignmentFeature(2, skill), EdgeFeature(u, v)]
        mask = np.array([False, False])
        fast_net, _ = masked_inputs(features, mask, frozenset(), net)
        slow_net, _ = apply_perturbations(
            net, frozenset(), [f.removal() for f in features]
        )
        assert sorted(fast_net.edges()) == sorted(slow_net.edges())
        for p in net.people():
            assert fast_net.skills(p) == slow_net.skills(p)
