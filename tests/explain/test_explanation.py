"""Explanation dataclass tests (sizes, ordering, minimality filter)."""

import pytest

from repro.explain import (
    Counterfactual,
    CounterfactualExplanation,
    FactualExplanation,
    FeatureAttribution,
    QueryTermFeature,
    SkillAssignmentFeature,
    filter_minimal,
)
from repro.graph.perturbations import AddQueryTerm, AddSkill, RemoveSkill


def _factual(values):
    return FactualExplanation(
        person=0,
        query=frozenset({"q"}),
        attributions=[
            FeatureAttribution(SkillAssignmentFeature(0, f"s{i}"), v)
            for i, v in enumerate(values)
        ],
        base_value=0.0,
        full_value=1.0,
        n_evaluations=10,
        elapsed_seconds=0.1,
        method="exact",
        pruned=True,
        kind="skills",
    )


class TestFactualExplanation:
    def test_size_counts_nonzero(self):
        assert _factual([0.5, 0.0, -0.2, 1e-12]).size == 2

    def test_top_orders_by_magnitude(self):
        fx = _factual([0.1, -0.9, 0.5])
        top = fx.top(2)
        assert [a.value for a in top] == [-0.9, 0.5]

    def test_positive_negative_split(self):
        fx = _factual([0.3, -0.4, 0.0])
        assert [a.value for a in fx.positive()] == [0.3]
        assert [a.value for a in fx.negative()] == [-0.4]

    def test_value_of_lookup(self):
        fx = _factual([0.3, -0.4])
        assert fx.value_of(SkillAssignmentFeature(0, "s1")) == -0.4
        with pytest.raises(KeyError):
            fx.value_of(QueryTermFeature("missing"))


def _cf(perturbation_sets, initial=True):
    return CounterfactualExplanation(
        person=0,
        query=frozenset({"q"}),
        counterfactuals=[
            Counterfactual(tuple(ps), new_order_key=float(i + 2))
            for i, ps in enumerate(perturbation_sets)
        ],
        initial_decision=initial,
        n_probes=10,
        elapsed_seconds=0.1,
        kind="skill_removal",
        pruned=True,
    )


class TestCounterfactualExplanation:
    def test_minimal_and_mean_size(self):
        cf = _cf([
            [RemoveSkill(0, "a")],
            [RemoveSkill(0, "b"), RemoveSkill(1, "c")],
        ])
        assert cf.minimal_size == 1
        assert cf.mean_size == 1.5
        assert cf.found

    def test_empty_explanation(self):
        cf = _cf([])
        assert cf.minimal_size is None
        assert cf.mean_size is None
        assert not cf.found

    def test_sorted_by_size_then_effect(self):
        cf = _cf([
            [RemoveSkill(0, "a"), RemoveSkill(0, "b")],  # size 2, rank 2
            [RemoveSkill(0, "c")],  # size 1, rank 3
            [RemoveSkill(0, "d")],  # size 1, rank 4
        ], initial=True)
        ordered = cf.sorted_counterfactuals()
        assert [c.size for c in ordered] == [1, 1, 2]
        # Evictions: bigger rank (stronger demotion) first within a size.
        assert ordered[0].new_order_key == 4.0


class TestFilterMinimal:
    def test_supersets_removed(self):
        a = Counterfactual((RemoveSkill(0, "x"),), 2.0)
        b = Counterfactual((RemoveSkill(0, "x"), RemoveSkill(0, "y")), 3.0)
        assert filter_minimal([a, b]) == [a]

    def test_duplicates_removed(self):
        a = Counterfactual((RemoveSkill(0, "x"),), 2.0)
        b = Counterfactual((RemoveSkill(0, "x"),), 5.0)
        assert filter_minimal([a, b]) == [a]

    def test_order_of_perturbations_irrelevant_for_duplicates(self):
        a = Counterfactual((AddSkill(0, "x"), AddQueryTerm("y")), 2.0)
        b = Counterfactual((AddQueryTerm("y"), AddSkill(0, "x")), 3.0)
        assert len(filter_minimal([a, b])) == 1

    def test_incomparable_sets_kept(self):
        a = Counterfactual((RemoveSkill(0, "x"),), 2.0)
        b = Counterfactual((RemoveSkill(0, "y"),), 3.0)
        assert filter_minimal([a, b]) == [a, b]

    def test_empty(self):
        assert filter_minimal([]) == []
