"""Exhaustive baseline tests: ground-truth minimality and budget behavior.

Uses the same worked-out fixture as test_counterfactual.py (see its module
docstring for the score arithmetic): p2 is the boundary expert of a k=2
ranking and RemoveSkill(2,'mining') / AddQueryTerm('text') / RemoveEdge(0,2)
are verified single-perturbation flips.
"""

import pytest

from repro.embeddings import train_ppmi_embedding
from repro.explain import (
    ExhaustiveConfig,
    ExhaustiveCounterfactualExplainer,
    ExhaustiveFactualExplainer,
    RelevanceTarget,
)
from repro.graph import CollaborationNetwork
from repro.graph.perturbations import AddQueryTerm, RemoveSkill
from repro.search import CoverageExpertRanker

EXPERT = 2
NONEXPERT = 1
QUERY = ["graph", "mining"]


@pytest.fixture
def net():
    net = CollaborationNetwork()
    net.add_person("leader", {"graph", "mining"})
    net.add_person("second", {"graph", "text"})
    net.add_person("helper", {"mining"})
    net.add_person("side", {"vision"})
    net.add_person("filler", {"privacy"})
    net.add_edge(0, 2)
    net.add_edge(1, 3)
    net.add_edge(1, 4)
    net.add_edge(2, 3)
    return net


@pytest.fixture
def target():
    return RelevanceTarget(CoverageExpertRanker(), k=2)


class TestExhaustiveFactual:
    def test_skills_cover_whole_network(self, net, target):
        explainer = ExhaustiveFactualExplainer(target, ExhaustiveConfig(exact_limit=4))
        fx = explainer.explain_skills(EXPERT, QUERY, net)
        people = {a.feature.person for a in fx.attributions}
        assert people == {0, 1, 2, 3, 4}  # every node, not just N(2)
        assert not fx.pruned

    def test_collaborations_cover_all_edges(self, net, target):
        explainer = ExhaustiveFactualExplainer(target, ExhaustiveConfig(exact_limit=4))
        fx = explainer.explain_collaborations(EXPERT, QUERY, net)
        assert len(fx.attributions) == net.n_edges

    def test_query_features_identical_to_pruned(self, net, target):
        explainer = ExhaustiveFactualExplainer(target)
        fx = explainer.explain_query(EXPERT, QUERY, net)
        assert {a.feature.term for a in fx.attributions} == set(QUERY)


class TestExhaustiveCounterfactualSearch:
    def test_finds_global_minimal_removal(self, net, target):
        explainer = ExhaustiveCounterfactualExplainer(
            target, ExhaustiveConfig(n_explanations=3, timeout_seconds=10)
        )
        result = explainer.explain_skill_removal(EXPERT, QUERY, net)
        assert result.found
        assert result.minimal_size == 1
        first = result.sorted_counterfactuals()[0].perturbations[0]
        assert first == RemoveSkill(2, "mining")

    def test_query_augmentation_space_excludes_query(self, net, target):
        explainer = ExhaustiveCounterfactualExplainer(target)
        space = explainer.query_augmentation_space(frozenset(QUERY), net)
        terms = {p.term for p in space}
        assert terms == {"text", "vision", "privacy"}

    def test_query_augmentation_finds_eviction(self, net, target):
        explainer = ExhaustiveCounterfactualExplainer(
            target, ExhaustiveConfig(timeout_seconds=10)
        )
        result = explainer.explain_query_augmentation(EXPERT, QUERY, net)
        assert result.found
        assert result.minimal_size == 1
        minimal_terms = {
            c.perturbations[0].term
            for c in result.counterfactuals
            if c.size == 1
        }
        assert "text" in minimal_terms

    def test_link_removal_finds_eviction(self, net, target):
        explainer = ExhaustiveCounterfactualExplainer(
            target, ExhaustiveConfig(timeout_seconds=10)
        )
        result = explainer.explain_link_removal(EXPERT, QUERY, net)
        assert result.found
        assert result.minimal_size == 1

    def test_link_spaces(self, net, target):
        explainer = ExhaustiveCounterfactualExplainer(target)
        assert len(explainer.link_removal_space(net)) == net.n_edges
        n = net.n_people
        assert (
            len(explainer.link_addition_space(net))
            == n * (n - 1) // 2 - net.n_edges
        )

    def test_timeout_truncates_search(self, net, target):
        explainer = ExhaustiveCounterfactualExplainer(
            target,
            ExhaustiveConfig(timeout_seconds=0.0, n_explanations=5),
        )
        result = explainer.explain_skill_removal(EXPERT, QUERY, net)
        assert result.timed_out
        assert not result.found

    def test_skill_addition_neighborhood_space(self, net, target):
        """Baseline N: every node x pruned shortlist."""
        profiles = [sorted(net.skills(p)) for p in net.people()] * 3
        embedding = train_ppmi_embedding(profiles, dim=4, min_count=1)
        explainer = ExhaustiveCounterfactualExplainer(target)
        space = explainer.skill_addition_space_neighborhood(
            NONEXPERT, frozenset(QUERY), net, embedding, t=2
        )
        people = {p.person for p in space}
        assert len(people) > 2  # spans the whole network, not just N(1)
        skills = {p.skill for p in space}
        assert len(skills) <= 2  # but only t skills

    def test_skill_addition_skills_space(self, net, target):
        """Baseline S: neighborhood nodes x full universe."""
        explainer = ExhaustiveCounterfactualExplainer(target)
        space = explainer.skill_addition_space_skills(
            NONEXPERT, frozenset(QUERY), net, radius=1
        )
        people = {p.person for p in space}
        assert people <= {1, 3, 4}  # N(1, 1)
        skills = {p.skill for p in space}
        assert skills <= set(net.skill_universe())

    def test_skill_addition_n_baseline_promotes(self, net, target):
        profiles = [sorted(net.skills(p)) for p in net.people()] * 3
        embedding = train_ppmi_embedding(profiles, dim=4, min_count=1)
        explainer = ExhaustiveCounterfactualExplainer(
            target, ExhaustiveConfig(timeout_seconds=10)
        )
        result = explainer.explain_skill_addition_neighborhood(
            NONEXPERT, QUERY, net, embedding, t=3
        )
        assert result.kind == "skill_addition[N]"
        assert result.found

    def test_minimality_of_result_sets(self, net, target):
        explainer = ExhaustiveCounterfactualExplainer(
            target, ExhaustiveConfig(n_explanations=5, timeout_seconds=10)
        )
        result = explainer.explain_skill_removal(EXPERT, QUERY, net)
        sets = [frozenset(c.perturbations) for c in result.counterfactuals]
        for i, a in enumerate(sets):
            for j, b in enumerate(sets):
                assert i == j or not (a < b)
