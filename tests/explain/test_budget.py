"""Request budgets on the explainer paths: expiry, mid-flight trips,
and partial-result tagging for every explanation kind.

The cooperative contract (:mod:`repro.runtime`): a pre-expired budget
raises :class:`BudgetExceeded` at the first probe flush; a budget that
trips *mid-flight* is caught by the explainers that accumulate partial
state — SHAP estimators solve best-effort attributions from the
coalitions already evaluated (``*-partial`` methods, efficiency
Σφ = full − base preserved), selection loops keep the edges found so
far, and both beam search and the exhaustive subset search return their
``timed_out``-flagged best-so-far explanations.
"""

from __future__ import annotations

import time

import pytest

from repro.datasets import toy_network
from repro.embeddings import train_ppmi_embedding
from repro.explain import BeamConfig, FactualConfig
from repro.explain.exhaustive import (
    ExhaustiveConfig,
    ExhaustiveCounterfactualExplainer,
    ExhaustiveFactualExplainer,
)
from repro.explain.targets import RelevanceTarget
from repro.linkpred import HeuristicLinkPredictor
from repro.runtime import Budget, BudgetExceeded, budget_scope
from repro.search import PageRankExpertRanker
from repro.service import (
    EXPLANATION_KINDS,
    EngineRegistry,
    ExplanationService,
    make_requests,
)
from repro.team import CoverTeamFormer

K = 3
FACTUAL = FactualConfig(
    n_samples=16, max_samples=32, selection_samples=8, exact_limit=5
)
KERNEL = FactualConfig(
    n_samples=16, max_samples=32, selection_samples=8, exact_limit=1
)
BEAM = BeamConfig(beam_size=3, n_candidates=4, max_size=2, n_explanations=1)


@pytest.fixture(scope="module")
def net():
    return toy_network(n_people=16, seed=3)


@pytest.fixture(scope="module")
def embedding(net):
    profiles = [sorted(net.skills(p)) for p in net.people()] * 2
    return train_ppmi_embedding(profiles, dim=8, min_count=1)


@pytest.fixture(scope="module")
def predictor(net):
    return HeuristicLinkPredictor("common_neighbors").fit(net)


@pytest.fixture(scope="module")
def query(net):
    return tuple(sorted(net.skill_universe())[:3])


@pytest.fixture(scope="module")
def expert(net, query):
    return int(PageRankExpertRanker().evaluate(query, net).order[0])


def _service(net, embedding, predictor, factual=FACTUAL):
    """A fresh service over a fresh ranker and registry: budget tests
    must pay for their probes — warm memos absorb charges silently."""
    ranker = PageRankExpertRanker()
    return ExplanationService(
        network=net,
        ranker=ranker,
        embedding=embedding,
        link_predictor=predictor,
        former=CoverTeamFormer(ranker),
        k=K,
        factual_config=factual,
        beam_config=BEAM,
        registry=EngineRegistry(),
    )


def _expired_budget():
    budget = Budget(timeout_seconds=1e-4)
    time.sleep(1e-3)
    return budget


# ---------------------------------------------------------------------------
# factual / SHAP paths
# ---------------------------------------------------------------------------


class TestFactualBudgets:
    def test_pre_expired_deadline_raises(self, net, embedding, predictor, query, expert):
        explainer = _service(net, embedding, predictor).factual_explainer()
        with budget_scope(_expired_budget()) as budget:
            with pytest.raises(BudgetExceeded) as exc_info:
                explainer.explain_query(expert, query, net)
        assert exc_info.value.reason == "deadline"
        assert budget.tripped == "deadline"

    def test_probe_limit_one_raises_before_anchors(
        self, net, embedding, predictor, query, expert
    ):
        explainer = _service(net, embedding, predictor).factual_explainer()
        with budget_scope(Budget(probe_limit=1)):
            with pytest.raises(BudgetExceeded) as exc_info:
                explainer.explain_query(expert, query, net)
        assert exc_info.value.reason == "probe_budget"

    def test_exact_partial_mid_flight(self, net, embedding, predictor, query, expert):
        full = (
            _service(net, embedding, predictor)
            .factual_explainer()
            .explain_query(expert, query, net)
        )
        assert full.method == "exact"  # 3 features <= exact_limit
        explainer = _service(net, embedding, predictor).factual_explainer()
        with budget_scope(Budget(probe_limit=max(3, full.n_evaluations // 2))) as budget:
            partial = explainer.explain_query(expert, query, net)
        assert budget.tripped == "probe_budget"
        assert partial.method == "exact-partial"
        assert len(partial.attributions) == len(full.attributions)
        # Efficiency survives truncation: attributions still sum to Δ.
        delta = partial.full_value - partial.base_value
        assert abs(sum(a.value for a in partial.attributions) - delta) < 1e-6
        assert partial.base_value == full.base_value
        assert partial.full_value == full.full_value

    def test_kernel_partial_mid_flight(self, net, embedding, predictor, query, expert):
        full = (
            _service(net, embedding, predictor, factual=KERNEL)
            .factual_explainer()
            .explain_query(expert, query, net)
        )
        assert full.method == "kernel"  # exact_limit=1 forces the estimator
        explainer = _service(net, embedding, predictor, factual=KERNEL).factual_explainer()
        with budget_scope(Budget(probe_limit=max(3, full.n_evaluations // 2))) as budget:
            partial = explainer.explain_query(expert, query, net)
        assert budget.tripped == "probe_budget"
        assert partial.method == "kernel-partial"
        delta = partial.full_value - partial.base_value
        assert abs(sum(a.value for a in partial.attributions) - delta) < 1e-6

    def test_collaboration_selection_partial(
        self, net, embedding, predictor, query, expert
    ):
        full = (
            _service(net, embedding, predictor)
            .factual_explainer()
            .explain_collaborations(expert, query, net)
        )
        explainer = _service(net, embedding, predictor).factual_explainer()
        with budget_scope(Budget(probe_limit=max(3, full.n_evaluations // 3))) as budget:
            partial = explainer.explain_collaborations(expert, query, net)
        assert budget.tripped == "probe_budget"
        assert partial.method.endswith("-partial")
        assert partial.n_evaluations <= full.n_evaluations


# ---------------------------------------------------------------------------
# counterfactual / beam path
# ---------------------------------------------------------------------------


class TestCounterfactualBudgets:
    def test_pre_expired_deadline_raises(self, net, embedding, predictor, query, expert):
        explainer = _service(net, embedding, predictor).counterfactual_explainer()
        with budget_scope(_expired_budget()):
            with pytest.raises(BudgetExceeded) as exc_info:
                explainer.explain_query_augmentation(expert, query, net)
        assert exc_info.value.reason == "deadline"

    def test_mid_flight_trip_marks_timed_out(
        self, net, embedding, predictor, query, expert
    ):
        full = (
            _service(net, embedding, predictor)
            .counterfactual_explainer()
            .explain_skill_removal(expert, query, net)
        )
        assert not full.timed_out
        explainer = _service(net, embedding, predictor).counterfactual_explainer()
        with budget_scope(Budget(probe_limit=max(2, full.n_probes // 2))) as budget:
            partial = explainer.explain_skill_removal(expert, query, net)
        assert budget.tripped == "probe_budget"
        assert partial.timed_out
        assert partial.initial_decision == full.initial_decision


# ---------------------------------------------------------------------------
# exhaustive baselines
# ---------------------------------------------------------------------------


class TestExhaustiveBudgets:
    def test_factual_partial(self, net, query, expert):
        config = ExhaustiveConfig(n_samples=16, max_samples=32, exact_limit=5)
        target = RelevanceTarget(PageRankExpertRanker(), K)
        full = ExhaustiveFactualExplainer(target, config).explain_query(
            expert, query, net
        )
        assert full.method == "exact"
        with budget_scope(Budget(probe_limit=max(3, full.n_evaluations // 2))) as budget:
            partial = ExhaustiveFactualExplainer(target, config).explain_query(
                expert, query, net
            )
        assert budget.tripped == "probe_budget"
        assert partial.method == "exact-partial"
        delta = partial.full_value - partial.base_value
        assert abs(sum(a.value for a in partial.attributions) - delta) < 1e-6

    def test_subset_search_trips_to_timed_out(self, net, query, expert):
        config = ExhaustiveConfig(n_explanations=1, max_size=2)
        target = RelevanceTarget(PageRankExpertRanker(), K)
        explainer = ExhaustiveCounterfactualExplainer(target, config)
        with budget_scope(Budget(probe_limit=3)) as budget:
            result = explainer.explain_skill_removal(expert, query, net)
        assert budget.tripped == "probe_budget"
        assert result.timed_out

    def test_pre_expired_deadline_raises(self, net, query, expert):
        target = RelevanceTarget(PageRankExpertRanker(), K)
        explainer = ExhaustiveCounterfactualExplainer(target, ExhaustiveConfig())
        with budget_scope(_expired_budget()):
            with pytest.raises(BudgetExceeded):
                explainer.explain_skill_removal(expert, query, net)


# ---------------------------------------------------------------------------
# per-kind partial tagging through the service
# ---------------------------------------------------------------------------


class TestEveryKindHonorsBudget:
    @pytest.mark.parametrize("kind", EXPLANATION_KINDS)
    def test_probe_budget_yields_typed_partial(
        self, net, embedding, predictor, query, expert, kind
    ):
        """Each of the six kinds, squeezed to a fraction of its probe
        needs, lands in ``degraded`` (tagged partial) or ``timed_out`` —
        never an exception, never an untyped answer."""
        full = (
            _service(net, embedding, predictor)
            .explain(make_requests((kind,), expert, query)[0])
            .explanation
        )
        cost = getattr(full, "n_evaluations", None) or full.n_probes
        limited = make_requests(
            (kind,), expert, query, probe_limit=max(2, cost // 3)
        )[0]
        response = _service(net, embedding, predictor).explain_many([limited])[0]
        assert response.outcome in ("degraded", "timed_out")
        assert response.degraded_reason == "probe_budget"
        if response.outcome == "degraded":
            explanation = response.explanation
            if limited.is_factual:
                assert explanation.method.endswith("-partial")
            else:
                assert explanation.timed_out
