"""Beam-search counterfactual tests (Algorithm 1) on transparent systems.

Fixture arithmetic (CoverageExpertRanker, neighbor_weight=0.5,
query = {graph, mining}, k=2):

    p0 "leader" {graph, mining}, edge to p2   -> 1.0 + 0.5*0.5  = 1.25  rank 1
    p2 "helper" {mining},        edge to p0,p3 -> 0.5 + 0.5*1.0 = 1.00  rank 2
    p1 "second" {graph, text},   edges to p3,p4 -> 0.5 + 0      = 0.50  rank 3

so p2 is the boundary expert (eviction target) and p1 the near-miss
non-expert (promotion target).  Single-perturbation flips verified by hand:

    RemoveSkill(2,'mining')  -> p2 = 0.5 ties p1, loses id tie-break: evicted
    AddSkill(1,'mining')     -> p1 = 1.0 ties p2, wins id tie-break: promoted
    AddQueryTerm('text')     -> p1 = 2/3 ties p2, wins: p2 evicted
    RemoveEdge(0,2)          -> p2 = 0.5 ties p1, loses: evicted
    AddEdge(0,1)             -> p1 = 1.0 ties p2, wins: promoted
"""

import pytest

from repro.embeddings import train_ppmi_embedding
from repro.explain import (
    BeamConfig,
    CounterfactualExplainer,
    RelevanceTarget,
    beam_search_counterfactuals,
)
from repro.graph import CollaborationNetwork
from repro.graph.perturbations import AddSkill, RemoveSkill
from repro.linkpred import HeuristicLinkPredictor
from repro.search import CoverageExpertRanker

EXPERT = 2  # boundary expert (rank 2 of k=2)
NONEXPERT = 1  # near miss (rank 3)
QUERY = ["graph", "mining"]


@pytest.fixture
def net():
    net = CollaborationNetwork()
    net.add_person("leader", {"graph", "mining"})
    net.add_person("second", {"graph", "text"})
    net.add_person("helper", {"mining"})
    net.add_person("side", {"vision"})
    net.add_person("filler", {"privacy"})
    net.add_edge(0, 2)
    net.add_edge(1, 3)
    net.add_edge(1, 4)
    net.add_edge(2, 3)
    return net


@pytest.fixture
def target():
    return RelevanceTarget(CoverageExpertRanker(), k=2)


@pytest.fixture
def embedding(net):
    profiles = [sorted(net.skills(p)) for p in net.people()] * 3
    return train_ppmi_embedding(profiles, dim=4, min_count=1)


@pytest.fixture
def explainer(net, target, embedding):
    predictor = HeuristicLinkPredictor("common_neighbors").fit(net)
    return CounterfactualExplainer(
        target, embedding, predictor, BeamConfig(beam_size=6, n_candidates=6)
    )


class TestBeamSearchCore:
    def test_finds_known_minimal_removal(self, net, target):
        candidates = [
            RemoveSkill(0, "graph"),
            RemoveSkill(0, "mining"),
            RemoveSkill(2, "mining"),
        ]
        result = beam_search_counterfactuals(
            target, EXPERT, QUERY, net, candidates,
            BeamConfig(beam_size=4, n_candidates=3, n_explanations=3),
            kind="skill_removal",
        )
        assert result.found
        assert result.minimal_size == 1
        assert result.initial_decision is True
        best = result.sorted_counterfactuals()[0]
        assert best.perturbations == (RemoveSkill(2, "mining"),)

    def test_respects_max_size(self, net, target):
        """Weak candidate + γ=1: no explanation reachable."""
        candidates = [RemoveSkill(3, "vision")]
        result = beam_search_counterfactuals(
            target, EXPERT, QUERY, net, candidates,
            BeamConfig(beam_size=4, n_candidates=1, max_size=1),
            kind="skill_removal",
        )
        assert not result.found

    def test_respects_n_explanations(self, net, target):
        candidates = [
            RemoveSkill(2, "mining"),
            RemoveSkill(0, "graph"),
            RemoveSkill(0, "mining"),
        ]
        result = beam_search_counterfactuals(
            target, EXPERT, QUERY, net, candidates,
            BeamConfig(beam_size=4, n_candidates=3, n_explanations=1),
            kind="skill_removal",
        )
        assert len(result.counterfactuals) == 1

    def test_no_supersets_of_found(self, net, target):
        candidates = [
            RemoveSkill(2, "mining"),
            RemoveSkill(0, "graph"),
            RemoveSkill(0, "mining"),
        ]
        result = beam_search_counterfactuals(
            target, EXPERT, QUERY, net, candidates,
            BeamConfig(beam_size=6, n_candidates=3, n_explanations=5),
            kind="skill_removal",
        )
        sets = [frozenset(c.perturbations) for c in result.counterfactuals]
        for i, a in enumerate(sets):
            for j, b in enumerate(sets):
                assert i == j or not (a < b)

    def test_promotion_direction(self, net, target):
        candidates = [AddSkill(1, "mining"), AddSkill(4, "graph")]
        result = beam_search_counterfactuals(
            target, NONEXPERT, QUERY, net, candidates,
            BeamConfig(beam_size=4, n_candidates=2),
            kind="skill_addition",
        )
        assert result.initial_decision is False
        assert result.found
        best = result.sorted_counterfactuals()[0]
        assert AddSkill(1, "mining") in best.perturbations

    def test_probe_count_positive(self, net, target):
        result = beam_search_counterfactuals(
            target, EXPERT, QUERY, net, [RemoveSkill(2, "mining")],
            BeamConfig(beam_size=2, n_candidates=1),
            kind="skill_removal",
        )
        assert result.n_probes >= 2  # initial + at least one expansion

    def test_timeout_flag(self, net, target):
        candidates = [RemoveSkill(3, "vision"), RemoveSkill(4, "privacy")]
        result = beam_search_counterfactuals(
            target, EXPERT, QUERY, net, candidates,
            BeamConfig(beam_size=2, n_candidates=2, timeout_seconds=0.0),
            kind="skill_removal",
        )
        assert result.timed_out

    def test_empty_candidates(self, net, target):
        result = beam_search_counterfactuals(
            target, EXPERT, QUERY, net, [],
            BeamConfig(beam_size=2, n_candidates=1),
            kind="skill_removal",
        )
        assert not result.found
        assert result.candidate_count == 0

    def test_inapplicable_states_skipped(self, net, target):
        """A candidate that's a no-op (skill the person lacks after another
        perturbation) must be skipped, not crash the search."""
        candidates = [RemoveSkill(2, "mining"), AddSkill(2, "mining")]
        result = beam_search_counterfactuals(
            target, EXPERT, QUERY, net, candidates,
            BeamConfig(beam_size=4, n_candidates=2, n_explanations=5),
            kind="skill_removal",
        )
        assert result.found  # the legitimate removal is still found


class TestExplainerMethods:
    def test_skill_removal_end_to_end(self, net, explainer):
        result = explainer.explain_skill_removal(EXPERT, QUERY, net)
        assert result.kind == "skill_removal"
        assert result.found
        assert result.minimal_size == 1

    def test_skill_addition_end_to_end(self, net, explainer):
        result = explainer.explain_skill_addition(NONEXPERT, QUERY, net)
        assert result.kind == "skill_addition"
        assert result.found
        assert result.minimal_size == 1

    def test_query_augmentation_evicts_expert(self, net, explainer):
        result = explainer.explain_query_augmentation(EXPERT, QUERY, net)
        assert result.kind == "query_augmentation"
        assert result.found

    def test_query_augmentation_promotes_nonexpert(self, net, explainer):
        result = explainer.explain_query_augmentation(NONEXPERT, QUERY, net)
        assert result.found
        assert result.initial_decision is False

    def test_link_removal_demotes(self, net, explainer):
        result = explainer.explain_link_removal(EXPERT, QUERY, net)
        assert result.kind == "link_removal"
        assert result.found
        assert result.minimal_size == 1

    def test_link_addition_promotes(self, net, explainer):
        result = explainer.explain_link_addition(NONEXPERT, QUERY, net)
        assert result.kind == "link_addition"
        assert result.found

    def test_with_config_override(self, explainer):
        narrow = explainer.with_config(beam_size=1, n_candidates=2)
        assert narrow.config.beam_size == 1
        assert narrow.config.n_candidates == 2
        assert explainer.config.beam_size == 6  # original untouched


class TestTimeoutBudget:
    """``timeout_seconds`` is one budget for candidate generation + beam
    search: a huge candidate space (the probing link-removal generator on
    a hub) must not blow past it before the beam even starts."""

    @pytest.fixture
    def hub_net(self):
        """A hub person whose 2-hop neighborhood holds every edge — the
        link-removal generator would probe ``max_probe_edges`` of them."""
        net = CollaborationNetwork()
        net.add_person("hub", {"graph", "mining"})
        for i in range(1, 40):
            net.add_person(f"p{i}", {"graph"} if i % 2 else {"mining"})
            net.add_edge(0, i)
        for i in range(1, 20):
            net.add_edge(i, i + 19)
        return net

    def test_tiny_timeout_caps_candidate_probing(self, hub_net, embedding):
        target = RelevanceTarget(CoverageExpertRanker(), k=2)
        predictor = HeuristicLinkPredictor("common_neighbors").fit(hub_net)
        explainer = CounterfactualExplainer(
            target, embedding, predictor,
            BeamConfig(beam_size=6, n_candidates=10, timeout_seconds=1e-9),
        )
        result = explainer.explain_link_removal(0, QUERY, hub_net)
        assert result.timed_out
        # The generator stopped at the deadline: at most the base probe
        # plus one in-flight edge probe, not the full 60-edge sweep.
        assert result.n_probes <= 3

    def test_generous_timeout_probes_normally(self, hub_net, embedding):
        target = RelevanceTarget(CoverageExpertRanker(), k=2)
        predictor = HeuristicLinkPredictor("common_neighbors").fit(hub_net)
        explainer = CounterfactualExplainer(
            target, embedding, predictor,
            BeamConfig(beam_size=6, n_candidates=10, timeout_seconds=60.0),
        )
        result = explainer.explain_link_removal(0, QUERY, hub_net)
        assert not result.timed_out
        # The candidate sweep alone probes dozens of single-removal states.
        assert result.n_probes > 10


class TestBeamConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"beam_size": 0},
            {"n_candidates": 0},
            {"max_size": 0},
            {"n_explanations": 0},
        ],
    )
    def test_invalid_values(self, kwargs):
        with pytest.raises(ValueError):
            BeamConfig(**kwargs)
