"""Factual explainer tests on a hand-built network with the transparent
coverage ranker, so every SHAP value can be reasoned about.

Fixture arithmetic (CoverageExpertRanker, neighbor_weight=0.5, k=1,
query = {graph, mining}; the explained expert is p1, which LOSES id
tie-breaks to the rival p0, making feature signs unambiguous):

    p0 "rival"  {graph}          -> own 0.5
    p1 "expert" {graph, hobby}, edge to p2 -> 0.5 + 0.5*0.5 = 0.75  rank 1
    p2 "collab" {mining}
    p3 "bystander" {vision}, edge to p0

Without p2's 'mining', p1 ties p0 at 0.5 and loses -> both the skill
(p2,'mining') and the edge (1,2) are pivotal with positive SHAP; 'hobby'
never changes any coalition's outcome -> exactly zero.
"""

import pytest

from repro.explain import (
    EdgeFeature,
    FactualConfig,
    FactualExplainer,
    RelevanceTarget,
    SkillAssignmentFeature,
)
from repro.graph import CollaborationNetwork
from repro.search import CoverageExpertRanker

EXPERT = 1
QUERY = ["graph", "mining"]


@pytest.fixture
def net():
    net = CollaborationNetwork()
    net.add_person("rival", {"graph"})
    net.add_person("expert", {"graph", "hobby"})
    net.add_person("collab", {"mining"})
    net.add_person("bystander", {"vision"})
    net.add_edge(1, 2)
    net.add_edge(0, 3)
    return net


@pytest.fixture
def target():
    return RelevanceTarget(CoverageExpertRanker(), k=1)


@pytest.fixture
def explainer(target):
    return FactualExplainer(target, FactualConfig(exact_limit=12, tau=0.05))


class TestSkillFactuals:
    def test_feature_space_is_neighborhood_assignments(self, net, explainer):
        features = explainer.skill_features(EXPERT, net)
        people = {f.person for f in features}
        assert people == {1, 2}  # N(1, 1)
        assert SkillAssignmentFeature(1, "graph") in features
        assert SkillAssignmentFeature(0, "graph") not in features

    def test_own_query_skill_is_most_important(self, net, explainer):
        fx = explainer.explain_skills(EXPERT, QUERY, net)
        top = fx.top(1)[0]
        assert top.feature == SkillAssignmentFeature(1, "graph")
        assert top.value > 0

    def test_collaborator_query_skill_positive(self, net, explainer):
        fx = explainer.explain_skills(EXPERT, QUERY, net)
        assert fx.value_of(SkillAssignmentFeature(2, "mining")) > 0

    def test_unrelated_own_skill_exactly_zero(self, net, explainer):
        fx = explainer.explain_skills(EXPERT, QUERY, net)
        assert fx.value_of(SkillAssignmentFeature(1, "hobby")) == pytest.approx(
            0.0, abs=1e-10
        )

    def test_radius_zero_restricts_to_own_skills(self, net, target):
        explainer = FactualExplainer(target, FactualConfig(radius=0, exact_limit=12))
        features = explainer.skill_features(EXPERT, net)
        assert {f.person for f in features} == {EXPERT}

    def test_metadata_recorded(self, net, explainer):
        fx = explainer.explain_skills(EXPERT, QUERY, net)
        assert fx.kind == "skills"
        assert fx.pruned
        assert fx.method == "exact"  # few features -> exact path
        assert fx.n_evaluations > 0
        assert fx.elapsed_seconds > 0
        assert fx.full_value == 1.0  # p1 is the top expert

    def test_size_counts_nonzero_only(self, net, explainer):
        fx = explainer.explain_skills(EXPERT, QUERY, net)
        assert fx.size < len(fx.attributions)  # 'hobby' contributes a zero


class TestQueryFactuals:
    def test_features_are_query_terms(self, net, explainer):
        fx = explainer.explain_query(EXPERT, QUERY, net)
        labels = {a.feature.term for a in fx.attributions}
        assert labels == set(QUERY)

    def test_exact_for_short_queries(self, net, explainer):
        fx = explainer.explain_query(EXPERT, QUERY, net)
        assert fx.method == "exact"
        assert fx.n_evaluations == 4  # 2^2 coalitions

    def test_mining_term_is_pivotal(self, net, explainer):
        """Dropping 'mining' from the query erases p1's propagation edge
        over the rival: positive SHAP on the 'mining' query term."""
        fx = explainer.explain_query(EXPERT, QUERY, net)
        mining = next(
            a.value for a in fx.attributions if a.feature.term == "mining"
        )
        assert mining > 0


class TestCollaborationFactuals:
    def test_influential_edges_include_query_collaborator(self, net, explainer):
        edges, evals = explainer.influential_edges(
            EXPERT, frozenset(QUERY), net
        )
        assert EdgeFeature(1, 2) in edges
        assert evals > 0

    def test_edge_to_query_collaborator_positive(self, net, explainer):
        fx = explainer.explain_collaborations(EXPERT, QUERY, net)
        assert fx.value_of(EdgeFeature(1, 2)) > 0

    def test_high_tau_shrinks_explanation(self, net, target):
        loose = FactualExplainer(target, FactualConfig(tau=0.01, exact_limit=12))
        strict = FactualExplainer(target, FactualConfig(tau=0.45, exact_limit=12))
        fx_loose = loose.explain_collaborations(EXPERT, QUERY, net)
        fx_strict = strict.explain_collaborations(EXPERT, QUERY, net)
        assert len(fx_strict.attributions) <= len(fx_loose.attributions)

    def test_no_influential_edges_yields_empty(self, net, target):
        explainer = FactualExplainer(target, FactualConfig(tau=10.0))
        fx = explainer.explain_collaborations(EXPERT, QUERY, net)
        assert fx.attributions == []
        assert fx.kind == "collaborations"

    def test_bfs_respects_radius(self, net, target):
        """Edge (0,3) lies outside N(1, d) for any d reachable here and must
        never be scored."""
        explainer = FactualExplainer(
            target, FactualConfig(collab_radius=2, tau=0.0, exact_limit=12)
        )
        edges, _ = explainer.influential_edges(EXPERT, frozenset(QUERY), net)
        assert EdgeFeature(0, 3) not in edges


class TestConfigValidation:
    def test_negative_radius(self):
        with pytest.raises(ValueError):
            FactualConfig(radius=-1)

    def test_negative_tau(self):
        with pytest.raises(ValueError):
            FactualConfig(tau=-0.1)
