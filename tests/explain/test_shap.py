"""SHAP estimator tests: axioms, analytic recovery, sparsity, budgets."""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explain import ShapExplainer, exact_shap, kernel_shap


def linear_fn(coef):
    return lambda mask: float(np.asarray(coef) @ mask)


class TestExactShap:
    def test_linear_recovery(self):
        coef = np.array([0.5, -1.2, 2.0])
        result = exact_shap(linear_fn(coef), 3)
        np.testing.assert_allclose(result.values, coef, atol=1e-10)

    def test_and_interaction_split_evenly(self):
        fn = lambda mask: float(mask[0] and mask[1])
        result = exact_shap(fn, 3)
        np.testing.assert_allclose(result.values, [0.5, 0.5, 0.0], atol=1e-10)

    def test_dummy_feature_gets_zero(self):
        fn = lambda mask: float(mask[0])
        result = exact_shap(fn, 4)
        np.testing.assert_allclose(result.values[1:], 0.0, atol=1e-12)

    def test_symmetry_axiom(self):
        """Interchangeable features receive equal values."""
        fn = lambda mask: float(mask[0]) + float(mask[1])
        result = exact_shap(fn, 2)
        assert result.values[0] == pytest.approx(result.values[1])

    def test_efficiency_axiom(self):
        rng = np.random.default_rng(0)
        table = rng.random(2 ** 4)  # arbitrary set function over 4 features

        def fn(mask):
            idx = int(np.dot(mask, 2 ** np.arange(4)))
            return float(table[idx])

        result = exact_shap(fn, 4)
        assert result.check_efficiency()

    def test_caches_duplicate_masks(self):
        calls = {"n": 0}

        def fn(mask):
            calls["n"] += 1
            return float(mask.sum())

        result = exact_shap(fn, 3)
        assert calls["n"] == 2 ** 3  # each coalition evaluated exactly once
        assert result.n_evaluations == 8

    def test_empty_feature_count_rejected(self):
        with pytest.raises(ValueError):
            exact_shap(lambda m: 0.0, 0)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_efficiency_property_random_functions(self, seed):
        rng = np.random.default_rng(seed)
        table = rng.normal(size=2 ** 3)

        def fn(mask):
            idx = int(np.dot(mask, 2 ** np.arange(3)))
            return float(table[idx])

        assert exact_shap(fn, 3).check_efficiency()


class TestKernelShap:
    def test_linear_recovery_dense(self):
        coef = np.arange(1.0, 9.0)
        result = kernel_shap(
            linear_fn(coef), 8, n_samples=400, l1_regularization=None
        )
        np.testing.assert_allclose(result.values, coef, atol=1e-8)

    def test_linear_recovery_sparse_l1(self):
        coef = np.zeros(12)
        coef[[1, 5]] = [2.0, -3.0]
        result = kernel_shap(linear_fn(coef), 12, n_samples=400)
        np.testing.assert_allclose(result.values, coef, atol=1e-6)
        assert set(result.nonzero_indices()) == {1, 5}

    def test_efficiency_always_holds(self):
        rng = np.random.default_rng(3)
        coef = rng.normal(size=30)
        fn = lambda mask: float(coef @ mask) + float(mask[0] and mask[7])
        result = kernel_shap(fn, 30, n_samples=200)
        assert result.check_efficiency()

    def test_matches_exact_on_small_interaction(self):
        fn = lambda mask: float(mask[0] and mask[1]) + 0.5 * float(mask[2])
        exact = exact_shap(fn, 4)
        kernel = kernel_shap(fn, 4, n_samples=100, l1_regularization=None)
        np.testing.assert_allclose(kernel.values, exact.values, atol=1e-8)

    def test_single_feature(self):
        fn = lambda mask: 3.0 * float(mask[0])
        result = kernel_shap(fn, 1)
        np.testing.assert_allclose(result.values, [3.0])

    def test_constant_function_all_zero(self):
        result = kernel_shap(lambda mask: 1.0, 20, n_samples=100)
        np.testing.assert_allclose(result.values, 0.0, atol=1e-9)

    def test_budget_respected(self):
        result = kernel_shap(
            linear_fn(np.ones(50)), 50, n_samples=120, max_samples=120
        )
        # +2 for the mandatory empty/full coalitions.
        assert result.n_evaluations <= 122

    def test_huge_feature_count_stays_cheap(self):
        """Shell enumeration must bail at the first oversized shell: a
        hub's neighborhood can put 1e4+ features in front of a 32-sample
        budget, and grinding C(m, s) for every size pair hangs for
        minutes at that scale."""
        m = 20_000
        calls = {"n": 0}

        def fn(mask):
            calls["n"] += 1
            return float(mask.sum())

        start = time.perf_counter()
        result = kernel_shap(
            fn, m, n_samples=16, max_samples=32, l1_regularization=None
        )
        assert time.perf_counter() - start < 10.0
        assert result.n_evaluations <= 34  # budget + empty/full
        assert calls["n"] <= 34
        # Efficiency still holds on the sampled regression.
        assert result.values.sum() == pytest.approx(
            result.full_value - result.base_value, abs=1e-6
        )

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(5)
        coef = rng.normal(size=25)
        a = kernel_shap(linear_fn(coef), 25, n_samples=150, seed=9)
        b = kernel_shap(linear_fn(coef), 25, n_samples=150, seed=9)
        np.testing.assert_allclose(a.values, b.values)

    def test_top_indices_ordering(self):
        coef = np.array([0.1, -5.0, 2.0])
        result = kernel_shap(linear_fn(coef), 3, n_samples=64)
        assert result.top_indices()[:2] == [1, 2]


class TestShapExplainer:
    def test_dispatches_exact_below_limit(self):
        explainer = ShapExplainer(exact_limit=5)
        result = explainer.explain(linear_fn(np.ones(4)), 4)
        assert result.method == "exact"

    def test_dispatches_kernel_above_limit(self):
        explainer = ShapExplainer(exact_limit=5, n_samples=64)
        result = explainer.explain(linear_fn(np.ones(12)), 12)
        assert result.method == "kernel"

    def test_empty_feature_space(self):
        result = ShapExplainer().explain(lambda m: 0.0, 0)
        assert result.method == "empty"
        assert result.n_features == 0


class TestCachingValueFunctionIsolation:
    """The memo key is an immutable digest of a *private copy* of the
    caller's mask — mutating the caller's array after evaluation must
    neither corrupt retained references nor poison the cache."""

    def test_caller_mutation_cannot_poison_cache(self):
        from repro.explain.shap import _CachingValueFunction

        received = []

        def fn(mask):
            received.append(mask)  # value functions may retain masks
            return float(mask.sum())

        f = _CachingValueFunction(fn, 3)
        mask = np.zeros(3, dtype=bool)
        assert f(mask) == 0.0
        mask[0] = True  # caller reuses its buffer between coalitions
        assert f(mask) == 1.0
        # The retained first mask must still describe the first coalition.
        assert not received[0].any()
        # And the cache still answers the original coalition correctly,
        # without re-evaluating.
        mask[:] = False
        assert f(mask) == 0.0
        assert f.n_evaluations == 2

    def test_prefetch_receives_detached_copies(self):
        from repro.explain.shap import _CachingValueFunction

        class BulkFn:
            def __init__(self):
                self.retained = []

            def __call__(self, mask):
                return float(mask.sum())

            def prefetch(self, masks):
                self.retained.extend(masks)

        bulk = BulkFn()
        f = _CachingValueFunction(bulk, 2)
        mask = np.array([True, False])
        f.prefetch([mask, mask, np.array([True, False])])  # dupes collapse
        assert len(bulk.retained) == 1
        mask[:] = False
        assert bulk.retained[0].tolist() == [True, False]

    def test_prefetch_skips_already_cached_masks(self):
        from repro.explain.shap import _CachingValueFunction

        class BulkFn:
            def __init__(self):
                self.bulk_calls = []

            def __call__(self, mask):
                return 1.0

            def prefetch(self, masks):
                self.bulk_calls.append(len(masks))

        bulk = BulkFn()
        f = _CachingValueFunction(bulk, 2)
        f(np.array([True, True]))
        f.prefetch([np.array([True, True]), np.array([False, True])])
        assert bulk.bulk_calls == [1]  # only the uncached mask went through
