"""Decision target tests (relevance and membership)."""

import pytest

from repro.graph import CollaborationNetwork
from repro.explain import MembershipTarget, RelevanceTarget
from repro.search import CoverageExpertRanker
from repro.team import CoverTeamFormer, MstTeamFormer


@pytest.fixture
def net():
    net = CollaborationNetwork()
    net.add_person("a", {"graph", "mining"})
    net.add_person("b", {"graph"})
    net.add_person("c", {"vision"})
    net.add_person("d", {"mining"})
    net.add_edge(0, 1)
    net.add_edge(1, 2)
    net.add_edge(2, 3)
    return net


class TestRelevanceTarget:
    def test_decide_matches_topk(self, net):
        target = RelevanceTarget(CoverageExpertRanker(), k=1)
        assert target.decide(0, ["graph", "mining"], net) is True
        assert target.decide(2, ["graph", "mining"], net) is False

    def test_decide_with_order_returns_rank(self, net):
        target = RelevanceTarget(CoverageExpertRanker(), k=2)
        relevant, rank = target.decide_with_order(0, ["graph"], net)
        assert relevant and rank == 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            RelevanceTarget(CoverageExpertRanker(), k=0)

    def test_ranker_property(self, net):
        ranker = CoverageExpertRanker()
        assert RelevanceTarget(ranker, k=3).ranker is ranker


class TestMembershipTarget:
    def test_decide_matches_team(self, net):
        former = CoverTeamFormer(CoverageExpertRanker())
        target = MembershipTarget(former, seed_member=0)
        assert target.decide(0, ["graph", "vision"], net) is True
        assert target.decide(3, ["graph", "vision"], net) is False

    def test_order_comes_from_ranker(self, net):
        former = CoverTeamFormer(CoverageExpertRanker())
        target = MembershipTarget(former, seed_member=0)
        _, order = target.decide_with_order(0, ["graph"], net)
        assert order == 1.0

    def test_rankerless_former_rejected(self, net):
        target = MembershipTarget(MstTeamFormer())
        with pytest.raises(AttributeError, match="ranker"):
            _ = target.ranker
