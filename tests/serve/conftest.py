"""Shared fixtures for the serving front-end suites: a toy system, a
service factory, and an in-event-loop server harness.

No pytest-asyncio here: each test owns one ``asyncio.run`` with the
server and real-socket clients living in the same loop — the exact
in-process deployment shape the CLI's ``serve`` command runs.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.datasets import toy_network
from repro.embeddings import train_ppmi_embedding
from repro.explain import BeamConfig, FactualConfig
from repro.linkpred import HeuristicLinkPredictor
from repro.search import PageRankExpertRanker
from repro.serve import ExplanationServer, ServeConfig
from repro.service import EngineRegistry, ExplanationService, make_requests
from repro.team import CoverTeamFormer

K = 3
FACTUAL = FactualConfig(
    n_samples=16, max_samples=32, selection_samples=8, exact_limit=5
)
BEAM = BeamConfig(beam_size=3, n_candidates=4, max_size=2, n_explanations=1)


@pytest.fixture(scope="package")
def serve_net():
    return toy_network(n_people=16, seed=3)


@pytest.fixture(scope="package")
def serve_embedding(serve_net):
    profiles = [sorted(serve_net.skills(p)) for p in serve_net.people()] * 2
    return train_ppmi_embedding(profiles, dim=8, min_count=1)


@pytest.fixture(scope="package")
def serve_predictor(serve_net):
    return HeuristicLinkPredictor("common_neighbors").fit(serve_net)


@pytest.fixture
def make_service(serve_net, serve_embedding, serve_predictor):
    """Fresh service + registry per test — server tests mutate admission
    and registry state, which must not leak across tests."""

    def build(resilience=None):
        ranker = PageRankExpertRanker()
        return ExplanationService(
            network=serve_net,
            ranker=ranker,
            embedding=serve_embedding,
            link_predictor=serve_predictor,
            former=CoverTeamFormer(ranker),
            k=K,
            factual_config=FACTUAL,
            beam_config=BEAM,
            registry=EngineRegistry(),
            resilience=resilience,
        )

    return build


def multi_shard_requests(service, net, n_queries=2, kinds=("skills", "cf_skills")):
    """Requests spanning several decision targets (relevance + two
    membership seeds), so sharded ``explain_many`` genuinely overlaps
    work and partial results exist to stream."""
    skills = sorted(net.skill_universe())
    queries = [tuple(skills[i : i + 3]) for i in range(0, 3 * n_queries, 3)]
    requests = []
    for query in queries:
        order = service.ranker.evaluate(query, net).order
        requests += make_requests(kinds, int(order[0]), query, tag="expert")
        requests += make_requests(kinds, int(order[K]), query, tag="non_expert")
    query = queries[0]
    order = service.ranker.evaluate(query, net).order
    seed_member = int(order[0])
    team = service.former.form(query, net, seed_member=seed_member)
    others = sorted(team.members - {seed_member})
    if others:
        requests += make_requests(
            ("cf_skills",), others[0], query, team=True, seed_member=seed_member
        )
    return requests


@pytest.fixture
def workload_for(serve_net):
    """``workload_for(service)`` -> a multi-shard request list."""

    def build(service, n_queries=2, kinds=("skills", "cf_skills")):
        return multi_shard_requests(service, serve_net, n_queries, kinds)

    return build


async def start_test_server(service, **overrides) -> ExplanationServer:
    config = ServeConfig(port=0, **overrides)
    return await ExplanationServer(service, config).start()


@pytest.fixture
def serve_harness():
    """``(start, run)``: an ephemeral-port server factory plus a
    hang-guarded ``asyncio.run`` wrapper."""

    def run(coro, timeout=120):
        return asyncio.run(asyncio.wait_for(coro, timeout=timeout))

    return start_test_server, run
