"""End-to-end server suite: an in-process :class:`ExplanationServer`
driven by real socket clients.

Covers the tentpole's contract surface: streamed partial results
arriving *before* batch completion, per-connection session mapping onto
the admission layer's keys, concurrent clients over one shared service,
backpressure pausing the read loop, and clean shutdown draining
in-flight batches.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import pickle

import pytest

from repro.datasets import toy_network
from repro.embeddings import train_ppmi_embedding
from repro.explain import BeamConfig, FactualConfig
from repro.linkpred import HeuristicLinkPredictor
from repro.search import PageRankExpertRanker
from repro.serve import ServeClient
from repro.service import (
    EngineRegistry,
    ExplanationService,
    ResilienceConfig,
    explanation_signature,
    make_requests,
)
from repro.team import CoverTeamFormer


def _signatures(responses):
    return [
        explanation_signature(r.request, r.explanation)
        if r.explanation is not None
        else (r.outcome, r.error.kind if r.error else None)
        for r in responses
    ]


class TestStreaming:
    def test_partials_arrive_before_batch_completion(
        self, make_service, workload_for, serve_harness
    ):
        """The acceptance invariant: under a multi-shard workload, at
        least one ``result`` frame is received while the server still
        has the batch in flight — results stream per shard, they are
        not buffered until ``batch_end``."""
        start_server, run = serve_harness
        service = make_service()
        requests = workload_for(service)

        async def scenario():
            server = await start_server(service)
            client = await ServeClient.connect("127.0.0.1", server.port)
            inflight_at_result = []
            frames = []
            async for frame in client.explain_stream(requests, max_workers=2):
                frames.append(frame["type"])
                if frame["type"] == "result":
                    inflight_at_result.append(server.inflight_batches)
            await client.close()
            await server.shutdown()
            return frames, inflight_at_result

        frames, inflight_at_result = run(scenario())
        assert frames.count("result") == len(requests)
        assert frames[-1] == "batch_end"
        assert frames.index("batch_end") == len(frames) - 1
        # The streaming claim: some result was on the client's side of
        # the wire while the server-side dispatch was still running.
        assert inflight_at_result[0] > 0, (
            "first result frame only arrived after the batch finished"
        )

    def test_batch_end_summary_carries_taxonomy_and_counters(
        self, make_service, workload_for, serve_harness
    ):
        start_server, run = serve_harness
        service = make_service()
        requests = workload_for(service, n_queries=1)

        async def scenario():
            server = await start_server(service)
            client = await ServeClient.connect("127.0.0.1", server.port)
            responses, summary = await client.explain_many(requests, max_workers=2)
            await client.close()
            await server.shutdown()
            return responses, summary

        responses, summary = run(scenario())
        assert summary["n_requests"] == len(requests)
        assert summary["outcomes"] == {"ok": len(requests)}
        assert summary["elapsed_seconds"] > 0
        # ServiceStats snapshot + flush-bus fusion counters ride along.
        assert any(key.startswith("outcome.") for key in summary["stats"])
        assert "bus_flushes" in summary["fusion"]
        assert all(r.outcome == "ok" for r in responses)


class TestSessionMapping:
    def test_hello_names_the_admission_session(
        self, make_service, workload_for, serve_harness
    ):
        """Requests without an explicit session inherit the connection's
        hello-declared one; explicit sessions are preserved."""
        start_server, run = serve_harness
        service = make_service()
        requests = workload_for(service, n_queries=1, kinds=("skills",))

        async def scenario():
            server = await start_server(service)
            named = await ServeClient.connect(
                "127.0.0.1", server.port, session="alice"
            )
            anon = await ServeClient.connect("127.0.0.1", server.port)
            named_responses, _ = await named.explain_many(requests)
            anon_responses, _ = await anon.explain_many(requests)
            sessions = (
                named.session,
                anon.session,
                {r.request.session for r in named_responses},
                {r.request.session for r in anon_responses},
            )
            await named.close()
            await anon.close()
            await server.shutdown()
            return sessions

        named_session, anon_session, named_stamps, anon_stamps = run(scenario())
        assert named_session == "alice"
        assert named_stamps == {"alice"}
        # Server-assigned sessions are per-connection and distinct.
        assert anon_session.startswith("conn-")
        assert anon_stamps == {anon_session}
        assert anon_session != named_session

    def test_explicit_request_session_wins_over_connection(
        self, make_service, workload_for, serve_harness
    ):
        import dataclasses

        start_server, run = serve_harness
        service = make_service()
        requests = [
            dataclasses.replace(r, session="explicit")
            for r in workload_for(service, n_queries=1, kinds=("skills",))
        ]

        async def scenario():
            server = await start_server(service)
            client = await ServeClient.connect(
                "127.0.0.1", server.port, session="bob"
            )
            responses, _ = await client.explain_many(requests)
            stamps = {r.request.session for r in responses}
            await client.close()
            await server.shutdown()
            return stamps

        assert run(scenario()) == {"explicit"}


class TestConcurrentClients:
    def test_two_clients_interleave_with_parity(
        self, make_service, workload_for, serve_harness
    ):
        """Two connections batching concurrently against one shared
        service: both get complete, request-ordered, parity-exact
        answers — frames never cross connections."""
        start_server, run = serve_harness
        service = make_service()
        requests_a = workload_for(service, n_queries=1)
        requests_b = list(reversed(workload_for(service, n_queries=2)))
        reference_a = _signatures(service.explain_many(requests_a, max_workers=1))
        reference_b = _signatures(service.explain_many(requests_b, max_workers=1))

        async def one_client(port, requests, session):
            client = await ServeClient.connect("127.0.0.1", port, session=session)
            try:
                responses, summary = await client.explain_many(
                    requests, max_workers=2
                )
            finally:
                await client.close()
            return responses, summary

        async def scenario():
            server = await start_server(service)
            (resp_a, sum_a), (resp_b, sum_b) = await asyncio.gather(
                one_client(server.port, requests_a, "a"),
                one_client(server.port, requests_b, "b"),
            )
            stats = dict(server.stats)
            await server.shutdown()
            return resp_a, resp_b, sum_a, sum_b, stats

        resp_a, resp_b, sum_a, sum_b, stats = run(scenario())
        assert _signatures(resp_a) == reference_a
        assert _signatures(resp_b) == reference_b
        assert sum_a["n_requests"] == len(requests_a)
        assert sum_b["n_requests"] == len(requests_b)
        assert stats["connections"] == 2
        assert stats["batches"] == 2


class TestBackpressure:
    def test_over_limit_pipelining_pauses_the_read_loop(
        self, make_service, workload_for, serve_harness
    ):
        """Three batches pipelined down one connection with
        ``max_inflight_batches=1``: the server stops reading past the
        limit (counted in ``read_pauses``) instead of buffering, and
        every batch still completes in order."""
        start_server, run = serve_harness
        service = make_service()
        requests = workload_for(service, n_queries=1, kinds=("skills",))

        async def scenario():
            server = await start_server(service, max_inflight_batches=1)
            client = await ServeClient.connect("127.0.0.1", server.port)
            # Raw pipelining: three batch frames written back-to-back
            # without awaiting any reply.
            from repro.explain.serialize import request_to_dict

            payload = [request_to_dict(r) for r in requests]
            for batch_id in (1, 2, 3):
                await client.send(
                    {"type": "batch", "id": batch_id, "requests": payload}
                )
            ends = []
            while len(ends) < 3:
                frame = await client.recv()
                assert frame is not None and frame["type"] != "error", frame
                if frame["type"] == "batch_end":
                    ends.append(frame["id"])
            stats = dict(server.stats)
            await client.close()
            await server.shutdown()
            return ends, stats

        ends, stats = run(scenario())
        assert ends == [1, 2, 3]  # one connection: strictly ordered
        assert stats["batches"] == 3
        assert stats["read_pauses"] >= 1, "backpressure gate never engaged"

    def test_admission_shed_drops_connection_to_drain_mode(
        self, make_service, workload_for, serve_harness
    ):
        """A batch that comes back load-shed (``rejected`` outcomes from
        admission control) marks the connection pressured: the next
        batch is not read until in-flight work drains."""
        start_server, run = serve_harness
        service = make_service(
            resilience=ResilienceConfig(max_in_flight=1, session_share=1.0)
        )
        requests = workload_for(service, n_queries=2)

        async def scenario():
            server = await start_server(service)
            client = await ServeClient.connect("127.0.0.1", server.port)
            responses, summary = await client.explain_many(requests, max_workers=4)
            # The shed happened (workers > max_in_flight), so the batch
            # summary flags pressure...
            first = (summary["outcomes"], summary["pressured"])
            # ...and the *next* batch on this connection goes through
            # drain-mode admission, then completes normally.
            responses2, summary2 = await client.explain_many(
                requests[:2], max_workers=1
            )
            stats = dict(server.stats)
            await client.close()
            await server.shutdown()
            return first, summary2, stats

        (outcomes, pressured), summary2, stats = run(scenario())
        assert outcomes.get("rejected", 0) > 0
        assert pressured is True
        assert summary2["outcomes"] == {"ok": 2}
        assert summary2["pressured"] is False  # pressure cleared


class TestShutdown:
    def test_shutdown_drains_in_flight_batches(
        self, make_service, workload_for, serve_harness
    ):
        """Shutdown called mid-batch: the client still receives every
        result frame and the ``batch_end`` summary, then a ``shutdown``
        frame, then EOF — in-flight work is drained, never dropped."""
        start_server, run = serve_harness
        service = make_service()
        requests = workload_for(service)

        async def scenario():
            server = await start_server(service)
            client = await ServeClient.connect("127.0.0.1", server.port)
            from repro.explain.serialize import request_to_dict

            await client.send(
                {
                    "type": "batch",
                    "id": 7,
                    "requests": [request_to_dict(r) for r in requests],
                    "max_workers": 2,
                }
            )
            # Wait until the batch is genuinely in flight, then shut down.
            while server.inflight_batches == 0:
                await asyncio.sleep(0.005)
            shutdown_task = asyncio.ensure_future(server.shutdown())
            frames = []
            while True:
                frame = await client.recv()
                if frame is None:
                    break
                frames.append(frame)
            await shutdown_task
            await client.close()
            return frames

        frames = run(scenario())
        kinds = [f["type"] for f in frames]
        assert kinds.count("result") == len(requests)
        assert "batch_end" in kinds
        assert kinds[-1] == "shutdown"
        assert kinds.index("batch_end") > kinds.index("result")
        end = next(f for f in frames if f["type"] == "batch_end")
        assert end["outcomes"] == {"ok": len(requests)}

    def test_new_batches_refused_while_draining(
        self, make_service, workload_for, serve_harness
    ):
        start_server, run = serve_harness
        service = make_service()
        requests = workload_for(service, n_queries=1, kinds=("skills",))

        async def scenario():
            server = await start_server(service)
            client = await ServeClient.connect("127.0.0.1", server.port)
            server._closing = True  # drain mode, connection still open
            from repro.explain.serialize import request_to_dict

            await client.send(
                {
                    "type": "batch",
                    "id": 1,
                    "requests": [request_to_dict(r) for r in requests],
                }
            )
            frame = await client.recv()
            await client.close()
            server._closing = False
            await server.shutdown()
            return frame

        frame = run(scenario())
        assert frame["type"] == "error"
        assert frame["error"]["kind"] == "ServerClosing"
        assert frame["error"]["retryable"] is True
        assert frame["id"] == 1


def _private_stack():
    """A private network plus trained components — commit tests mutate
    the base in place, so the package-scoped fixtures cannot be used."""
    net = toy_network(n_people=16, seed=3)
    profiles = [sorted(net.skills(p)) for p in net.people()] * 2
    embedding = train_ppmi_embedding(profiles, dim=8, min_count=1)
    predictor = HeuristicLinkPredictor("common_neighbors").fit(net)
    return net, embedding, predictor


def _private_service(net, embedding, predictor):
    ranker = PageRankExpertRanker()
    return ExplanationService(
        network=net,
        ranker=ranker,
        embedding=embedding,
        link_predictor=predictor,
        former=CoverTeamFormer(ranker),
        k=3,
        factual_config=FactualConfig(
            n_samples=16, max_samples=32, selection_samples=8, exact_limit=5
        ),
        beam_config=BeamConfig(
            beam_size=3, n_candidates=4, max_size=2, n_explanations=1
        ),
        registry=EngineRegistry(),
    )


def _private_workload(service, net, n_queries=2, kinds=("skills", "cf_skills")):
    skills = sorted(net.skill_universe())
    queries = [tuple(skills[i : i + 3]) for i in range(0, 3 * n_queries, 3)]
    requests = []
    for query in queries:
        order = service.ranker.evaluate(query, net).order
        requests += make_requests(kinds, int(order[0]), query, tag="expert")
        requests += make_requests(kinds, int(order[3]), query, tag="non_expert")
    return requests


class TestLiveCommits:
    """The ``commit`` wire frame: live base edits against a serving
    process, with single-version response stamping across the epoch
    boundary."""

    def test_commit_mid_batch_stamps_versions(self, serve_harness):
        """A commit landing mid-batch drains the in-flight requests on
        the old version and stamps everything dispatched after it with
        the new ``base_version``; a follow-up batch is entirely on the
        new version."""
        start_server, run = serve_harness
        net, embedding, predictor = _private_stack()
        service = _private_service(net, embedding, predictor)
        requests = _private_workload(service, net)
        v0 = service.network.version

        async def scenario():
            from repro.explain.serialize import request_to_dict, response_from_dict

            server = await start_server(service)
            worker = await ServeClient.connect("127.0.0.1", server.port)
            admin = await ServeClient.connect("127.0.0.1", server.port)
            await worker.send(
                {
                    "type": "batch",
                    "id": 1,
                    "requests": [request_to_dict(r) for r in requests],
                    "max_workers": 2,
                }
            )
            # The first result lands before the commit is even sent: it
            # must carry the old base version.
            frame = await worker.recv()
            while frame["type"] != "result":
                frame = await worker.recv()
            responses = [response_from_dict(frame["response"])]
            # Commit on a second connection while batch 1 is in flight.
            end = await admin.commit(
                skill_flips=[(net.n_people - 1, "__live", True)], commit_id="c1"
            )
            while True:
                frame = await worker.recv()
                if frame["type"] == "result":
                    responses.append(response_from_dict(frame["response"]))
                elif frame["type"] == "batch_end":
                    break
            # Everything after the epoch boundary is on the new base.
            responses2, summary2 = await worker.explain_many(
                requests[:4], max_workers=2
            )
            stats = dict(server.stats)
            await worker.close()
            await admin.close()
            await server.shutdown()
            return responses, end, responses2, summary2, stats

        responses, end, responses2, summary2, stats = run(scenario())
        assert end["type"] == "commit_end" and end["id"] == "c1"
        assert end["old_version"] == v0
        assert end["new_version"] == service.network.version > v0
        assert end["n_skill_flips"] == 1 and end["n_edge_flips"] == 0
        assert set(end["stats"]) >= {"rebased_sessions", "retained_memo_entries"}

        assert len(responses) == len(requests)
        assert all(r.outcome == "ok" for r in responses)
        assert responses[0].base_version == v0  # pre-commit, old base
        # Every response is stamped with exactly one of the two versions
        # that existed during the batch — never unstamped, never a third.
        assert {r.base_version for r in responses} <= {v0, end["new_version"]}

        assert summary2["outcomes"] == {"ok": 4}
        assert all(r.base_version == end["new_version"] for r in responses2)
        assert stats["commits"] == 1

    def test_commit_refused_while_draining(self, serve_harness):
        start_server, run = serve_harness
        net, embedding, predictor = _private_stack()
        service = _private_service(net, embedding, predictor)
        v0 = service.network.version

        async def scenario():
            server = await start_server(service)
            client = await ServeClient.connect("127.0.0.1", server.port)
            server._closing = True
            try:
                await client.commit(
                    skill_flips=[(0, "__refused", True)], commit_id="c2"
                )
                raised = None
            except Exception as exc:  # noqa: BLE001 - asserting on type below
                raised = exc
            await client.close()
            server._closing = False
            await server.shutdown()
            return raised

        raised = run(scenario())
        from repro.serve import RemoteProtocolError

        assert isinstance(raised, RemoteProtocolError)
        assert raised.error.kind == "ServerClosing"
        assert service.network.version == v0  # the edit never landed


class TestSpillRestore:
    """Registry spill on shutdown, restore on boot: a restarted server
    answers its first batch from the reloaded warm state instead of a
    cold-start rebuild — bit-identically."""

    def test_round_trip_warm_boot(self, serve_harness, tmp_path):
        start_server, run = serve_harness
        spill = str(tmp_path / "registry.spill")
        net1, embedding, predictor = _private_stack()
        service1 = _private_service(net1, embedding, predictor)
        requests = [
            dataclasses.replace(r, session="spill")
            for r in _private_workload(service1, net1)
        ]

        async def warm_and_spill():
            server = await start_server(service1, spill_path=spill)
            restore_stats = dict(server.restore_stats)
            client = await ServeClient.connect(
                "127.0.0.1", server.port, session="spill"
            )
            responses, _ = await client.explain_many(requests, max_workers=2)
            await client.close()
            await server.shutdown()  # writes the spill file
            return restore_stats, responses

        first_restore, warm_responses = run(warm_and_spill())
        assert first_restore.get("skipped") == "missing"  # nothing to load yet
        assert all(r.outcome == "ok" for r in warm_responses)
        reference = _signatures(warm_responses)

        assert os.path.exists(spill)
        with open(spill, "rb") as f:
            payload = pickle.load(f)
        assert payload["format"] == "repro-registry-spill/1"
        assert payload["digest"] == net1.state_digest()

        # "Restart": a fresh network instance with identical structure,
        # fresh ranker/former/registry — only the spill file carries over.
        net2, embedding2, predictor2 = _private_stack()
        service2 = _private_service(net2, embedding2, predictor2)

        async def restore_and_answer():
            server = await start_server(service2, spill_path=spill)
            restore_stats = dict(server.restore_stats)
            builds_after_restore = service2.registry.session_builds
            client = await ServeClient.connect(
                "127.0.0.1", server.port, session="spill"
            )
            responses, _ = await client.explain_many(requests, max_workers=1)
            await client.close()
            await server.shutdown()
            return restore_stats, builds_after_restore, responses

        restore_stats, builds_after_restore, responses = run(restore_and_answer())
        assert "skipped" not in restore_stats
        assert restore_stats["sessions"] >= 1
        assert restore_stats["memo_entries"] >= 1
        assert service2.registry.restored_sessions >= 1
        # Warm boot: the batch was served by the restored sessions — no
        # session was built after the restore pass.
        assert service2.registry.session_builds == builds_after_restore
        assert all(r.outcome == "ok" for r in responses)
        assert _signatures(responses) == reference

    def test_restore_refuses_structural_mismatch(self, serve_harness, tmp_path):
        """A spill bound to a different network structure is skipped
        whole — a digest mismatch must never half-restore."""
        start_server, run = serve_harness
        spill = str(tmp_path / "registry.spill")
        net1, embedding, predictor = _private_stack()
        service1 = _private_service(net1, embedding, predictor)
        requests = _private_workload(service1, net1)[:4]

        async def warm_and_spill():
            server = await start_server(service1, spill_path=spill)
            client = await ServeClient.connect("127.0.0.1", server.port)
            await client.explain_many(requests, max_workers=1)
            await client.close()
            await server.shutdown()

        run(warm_and_spill())

        other = toy_network(n_people=14, seed=9)  # different structure
        profiles = [sorted(other.skills(p)) for p in other.people()] * 2
        embedding2 = train_ppmi_embedding(profiles, dim=8, min_count=1)
        predictor2 = HeuristicLinkPredictor("common_neighbors").fit(other)
        service2 = _private_service(other, embedding2, predictor2)

        async def boot():
            server = await start_server(service2, spill_path=spill)
            restore_stats = dict(server.restore_stats)
            await server.shutdown()
            return restore_stats

        restore_stats = run(boot())
        assert restore_stats["skipped"] == "digest"
        assert restore_stats["sessions"] == 0
        assert service2.registry.restored_sessions == 0


class TestHousekeeping:
    def test_ping_pong_and_welcome(self, make_service, serve_harness):
        start_server, run = serve_harness
        service = make_service()

        async def scenario():
            server = await start_server(service)
            client = await ServeClient.connect("127.0.0.1", server.port)
            pong = await client.ping("liveness-1")
            version = client.protocol_version
            await client.close()
            await server.shutdown()
            return pong, version

        pong, version = run(scenario())
        assert pong == {"type": "pong", "id": "liveness-1"}
        assert version == 1

    def test_coalesced_duplicates_marked_on_the_wire(
        self, make_service, workload_for, serve_harness
    ):
        start_server, run = serve_harness
        service = make_service()
        base = workload_for(service, n_queries=1, kinds=("skills",))
        requests = base + base  # exact duplicates coalesce

        async def scenario():
            server = await start_server(service)
            client = await ServeClient.connect("127.0.0.1", server.port)
            responses, _ = await client.explain_many(requests)
            await client.close()
            await server.shutdown()
            return responses

        responses = run(scenario())
        assert sum(1 for r in responses if r.coalesced) == len(base)
        assert all(r.outcome == "ok" for r in responses)
