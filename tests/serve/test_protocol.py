"""Protocol robustness: every way the wire can go wrong yields a typed
``ExplainError`` frame or a clean close — never a dropped connection
mid-batch, never a traceback-crash of the server loop.

Axes: malformed JSON, truncated and oversized frames, unknown frame
types, unknown explanation kinds, mid-stream disconnects, and a seeded
randomized frame-corruption fuzz (byte flips, deletions, insertions,
truncations against a valid batch frame).
"""

from __future__ import annotations

import asyncio
import json
import random

import pytest

from repro.explain.serialize import request_from_dict, request_to_dict
from repro.serve import MalformedFrame, ServeClient
from repro.service.requests import ExplainRequest
from repro.serve.protocol import (
    OVERSIZED,
    FrameReader,
    decode_frame,
    encode_frame,
)

#: Frame types a server may legitimately answer with — anything else
#: coming back during the fuzz run is a protocol bug.
SERVER_FRAME_TYPES = {
    "welcome", "result", "batch_end", "error", "pong", "shutdown",
}


class TestFrameCodec:
    def test_round_trip(self):
        frame = {"type": "batch", "id": 3, "requests": [{"kind": "skills"}]}
        assert decode_frame(encode_frame(frame).rstrip(b"\n")) == frame

    @pytest.mark.parametrize(
        "line",
        [
            b"not json at all",
            b"{truncated",
            b"[1, 2, 3]",          # JSON, but not an object
            b'"just a string"',
            b"{}",                  # object, but no type
            b'{"type": 7}',         # type is not a string
            b"\xff\xfe garbage",    # not UTF-8
        ],
    )
    def test_bad_lines_raise_typed_malformed(self, line):
        with pytest.raises(MalformedFrame):
            decode_frame(line)


class TestFrameReader:
    @staticmethod
    def _reader(*chunks, limit=64):
        stream = asyncio.StreamReader()
        for chunk in chunks:
            stream.feed_data(chunk)
        stream.feed_eof()
        return FrameReader(stream, limit)

    def test_oversized_line_discarded_and_connection_continues(self):
        async def scenario():
            reader = self._reader(b"x" * 200 + b"\n" + b'{"type":"ping"}\n')
            first = await reader.next_line()
            second = await reader.next_line()
            third = await reader.next_line()
            return first, second, third

        first, second, third = asyncio.run(scenario())
        assert first is OVERSIZED
        assert second == b'{"type":"ping"}'
        assert third is None

    def test_oversized_line_split_across_reads(self):
        async def scenario():
            stream = asyncio.StreamReader()
            reader = FrameReader(stream, 64)
            stream.feed_data(b"y" * 100)          # over limit, no newline yet
            stream.feed_data(b"y" * 100 + b"\n")  # the tail
            stream.feed_data(b'{"type":"ok"}\n')
            stream.feed_eof()
            return [await reader.next_line() for _ in range(3)]

        first, second, third = asyncio.run(scenario())
        assert first is OVERSIZED
        assert second == b'{"type":"ok"}'
        assert third is None

    def test_truncated_final_line_is_clean_close(self):
        async def scenario():
            reader = self._reader(b'{"type":"ping"}\n{"type":"trunc')
            return [await reader.next_line() for _ in range(2)]

        first, second = asyncio.run(scenario())
        assert first == b'{"type":"ping"}'
        assert second is None  # truncated tail: close, don't parse

    def test_blank_keepalive_lines_skipped(self):
        async def scenario():
            reader = self._reader(b"\n  \n" + b'{"type":"ping"}\n\n')
            return [await reader.next_line() for _ in range(2)]

        first, second = asyncio.run(scenario())
        assert first == b'{"type":"ping"}'
        assert second is None


def _one_request(service, net):
    skills = sorted(net.skill_universe())
    query = tuple(skills[:3])
    order = service.ranker.evaluate(query, net).order
    return request_to_dict(
        ExplainRequest(kind="skills", person=int(order[0]), query=query)
    )


class TestTypedWireErrors:
    """Each failure mode over a real socket: typed error frame, and the
    connection keeps working (proved by a pong afterwards)."""

    @pytest.fixture
    def wire(self, make_service, serve_net, serve_harness):
        start_server, run = serve_harness
        service = make_service()
        return service, serve_net, start_server, run

    def _provoke(self, wire, payload_bytes=None, frame=None, expect_kind=None):
        service, net, start_server, run = wire

        async def scenario():
            server = await start_server(service, max_frame_bytes=4096)
            client = await ServeClient.connect("127.0.0.1", server.port)
            if payload_bytes is not None:
                client._writer.write(payload_bytes)
                await client._writer.drain()
            else:
                await client.send(frame)
            reply = await client.recv()
            pong = await client.ping("still-alive")
            stats = dict(server.stats)
            await client.close()
            await server.shutdown()
            return reply, pong, stats

        reply, pong, stats = run(scenario())
        assert reply["type"] == "error"
        assert reply["error"]["kind"] == expect_kind
        assert reply["error"]["message"]
        assert pong["id"] == "still-alive"
        assert stats["protocol_errors"] >= 1
        return reply

    def test_malformed_json(self, wire):
        self._provoke(
            wire, payload_bytes=b"{nope nope\n", expect_kind="MalformedFrame"
        )

    def test_non_object_frame(self, wire):
        self._provoke(
            wire, payload_bytes=b"[1,2,3]\n", expect_kind="MalformedFrame"
        )

    def test_oversized_frame(self, wire):
        self._provoke(
            wire,
            payload_bytes=b'{"type":"batch","pad":"' + b"x" * 8192 + b'"}\n',
            expect_kind="OversizedFrame",
        )

    def test_unknown_frame_type(self, wire):
        reply = self._provoke(
            wire,
            frame={"type": "teleport", "id": 42},
            expect_kind="UnknownFrameType",
        )
        assert reply["id"] == 42  # error tied back to the offending frame

    def test_unknown_explanation_kind(self, wire):
        service, net, _, _ = wire
        request = _one_request(service, net)
        request["kind"] = "mind_reading"
        reply = self._provoke(
            wire,
            frame={"type": "batch", "id": 9, "requests": [request]},
            expect_kind="InvalidRequest",
        )
        assert reply["id"] == 9
        assert "mind_reading" in reply["error"]["message"]

    def test_missing_request_fields(self, wire):
        self._provoke(
            wire,
            frame={"type": "batch", "id": 1, "requests": [{"kind": "skills"}]},
            expect_kind="InvalidRequest",
        )

    def test_requests_not_a_list(self, wire):
        self._provoke(
            wire,
            frame={"type": "batch", "id": 2, "requests": "all of them"},
            expect_kind="InvalidRequest",
        )

    def test_bad_max_workers(self, wire):
        service, net, _, _ = wire
        self._provoke(
            wire,
            frame={
                "type": "batch",
                "id": 3,
                "requests": [_one_request(service, net)],
                "max_workers": "lots",
            },
            expect_kind="InvalidRequest",
        )


class TestDisconnects:
    def test_mid_batch_disconnect_leaves_server_serving(
        self, make_service, workload_for, serve_harness
    ):
        """A client that sends a batch and vanishes costs the server the
        already-running dispatch, nothing else: the next client gets
        normal service."""
        start_server, run = serve_harness
        service = make_service()
        requests = workload_for(service, n_queries=1)

        async def scenario():
            server = await start_server(service)
            rude = await ServeClient.connect("127.0.0.1", server.port)
            await rude.send(
                {
                    "type": "batch",
                    "id": 1,
                    "requests": [request_to_dict(r) for r in requests],
                }
            )
            while server.inflight_batches == 0:
                await asyncio.sleep(0.005)
            rude._writer.transport.abort()  # vanish mid-batch
            # The server finishes the orphaned dispatch and records it.
            for _ in range(2000):
                if server.stats["disconnects_mid_batch"] >= 1:
                    break
                await asyncio.sleep(0.01)
            polite = await ServeClient.connect("127.0.0.1", server.port)
            responses, summary = await polite.explain_many(requests[:2])
            stats = dict(server.stats)
            await polite.close()
            await server.shutdown()
            return responses, summary, stats

        responses, summary, stats = run(scenario())
        assert stats["disconnects_mid_batch"] == 1
        assert summary["outcomes"] == {"ok": 2}
        assert all(r.outcome == "ok" for r in responses)

    def test_truncated_final_frame_is_clean_close(
        self, make_service, serve_net, serve_harness
    ):
        start_server, run = serve_harness
        service = make_service()

        async def scenario():
            server = await start_server(service)
            client = await ServeClient.connect("127.0.0.1", server.port)
            # Half a frame, no newline, then EOF.
            client._writer.write(b'{"type": "batch", "requests": [')
            client._writer.write_eof()
            # Clean close: no error frame, just EOF back after shutdown.
            for _ in range(2000):
                if server.stats["connections"] == 1 and not server._connections:
                    break
                await asyncio.sleep(0.01)
            stats = dict(server.stats)
            n_live = len(server._connections)
            await client.close()
            await server.shutdown()
            return stats, n_live

        stats, n_live = run(scenario())
        assert n_live == 0  # connection reaped without error
        assert stats["protocol_errors"] == 0


def _corrupt(data: bytes, rng: random.Random) -> bytes:
    """One random corruption: byte flip, deletion, insertion, or
    truncation.  Always newline-terminated so the server sees a line."""
    body = bytearray(data.rstrip(b"\n"))
    op = rng.randrange(4)
    if op == 0 and body:  # flip a byte
        i = rng.randrange(len(body))
        body[i] = rng.randrange(256)
    elif op == 1 and len(body) > 2:  # delete a slice
        i = rng.randrange(len(body) - 1)
        j = min(len(body), i + rng.randrange(1, 16))
        del body[i:j]
    elif op == 2:  # insert noise
        i = rng.randrange(len(body) + 1)
        noise = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 8)))
        body[i:i] = noise
    else:  # truncate
        body = body[: rng.randrange(max(1, len(body)))]
    return bytes(body) + b"\n"


class TestCorruptionFuzz:
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_seeded_corruption_never_crashes_the_loop(
        self, make_service, serve_net, serve_harness, seed
    ):
        """Forty corrupted batch frames down one connection: every reply
        is a well-typed server frame, the connection survives to answer
        a final ping, and a pristine batch afterwards completes."""
        start_server, run = serve_harness
        service = make_service()
        rng = random.Random(seed)
        pristine = encode_frame(
            {
                "type": "batch",
                "id": 99,
                "requests": [_one_request(service, serve_net)],
            }
        )

        async def scenario():
            server = await start_server(service, max_frame_bytes=4096)
            client = await ServeClient.connect("127.0.0.1", server.port)
            for _ in range(40):
                client._writer.write(_corrupt(pristine, rng))
            await client._writer.drain()
            # Drain replies until the liveness pong: corrupted frames
            # may yield error frames, or — when a corruption leaves a
            # parseable batch — genuine result/batch_end streams.
            await client.send({"type": "ping", "id": "fuzz-done"})
            replies = []
            while True:
                frame = await client.recv()
                assert frame is not None, "server closed on corrupted input"
                assert frame["type"] in SERVER_FRAME_TYPES, frame
                if frame["type"] == "pong" and frame.get("id") == "fuzz-done":
                    break
                replies.append(frame["type"])
            # The connection still does real work afterwards.
            responses, summary = await client.explain_many(
                [request_from_dict(_one_request(service, serve_net))]
            )
            stats = dict(server.stats)
            await client.close()
            await server.shutdown()
            return replies, responses, summary, stats

        replies, responses, summary, stats = run(scenario())
        assert stats["protocol_errors"] >= 1, "corruption produced no typed errors"
        assert "error" in replies
        assert summary["outcomes"] == {"ok": 1}
        assert responses[0].outcome == "ok"
