"""CLI smoke + behaviour tests (fast: tiny scale, coverage of every command)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rank_requires_query(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["rank"])

    def test_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.dataset == "dblp"
        assert args.scale == 0.02


class TestCommands:
    def test_stats(self, capsys):
        assert main(["stats", "--scale", "0.005", "--dataset", "github"]) == 0
        out = capsys.readouterr().out
        assert "GitHub" in out
        assert "mean degree" in out

    @pytest.fixture(scope="class")
    def tiny_args(self):
        return ["--dataset", "github", "--scale", "0.008", "--seed", "3", "--k", "5"]

    def test_rank(self, capsys, tiny_args):
        from repro.datasets import github_like

        skills = sorted(
            github_like(scale=0.008, seed=3).network.skill_universe()
        )
        assert main(["rank", *tiny_args, "--query", skills[0], skills[1]]) == 0
        out = capsys.readouterr().out
        assert "  1. " in out

    def test_team(self, capsys, tiny_args):
        from repro.datasets import github_like

        skills = sorted(
            github_like(scale=0.008, seed=3).network.skill_universe()
        )
        assert main(["team", *tiny_args, "--query", skills[0], skills[2]]) == 0
        assert "[seed]" in capsys.readouterr().out

    def test_explain_with_json(self, capsys, tiny_args, tmp_path):
        from repro.datasets import github_like

        net = github_like(scale=0.008, seed=3).network
        skills = sorted(net.skill_universe())
        out_file = tmp_path / "explanation.json"
        code = main(
            [
                "explain",
                *tiny_args,
                "--query",
                skills[0],
                skills[1],
                "--person",
                "0",
                "--json",
                str(out_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "is ranked" in out
        payload = json.loads(out_file.read_text())
        assert payload["person"] == 0
        assert payload["factual_skills"]["type"] == "factual"
        assert payload["counterfactual_skills"]["type"] == "counterfactual"

    def test_explain_resolves_person_by_name(self, capsys, tiny_args):
        from repro.datasets import github_like

        net = github_like(scale=0.008, seed=3).network
        skills = sorted(net.skill_universe())
        name = net.name(0)
        code = main(
            ["explain", *tiny_args, "--query", skills[0], "--person", name]
        )
        assert code == 0

    def test_explain_invalid_person_id(self, tiny_args):
        with pytest.raises(SystemExit):
            main(["explain", *tiny_args, "--query", "x", "--person", "99999"])

    def test_workload_with_json(self, capsys, tiny_args, tmp_path):
        out_file = tmp_path / "workload.json"
        code = main(
            [
                "workload",
                *tiny_args,
                "--queries", "2",
                "--workers", "2",
                "--kinds", "query", "cf_query",
                "--json", str(out_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "requests over 2 queries" in out
        assert "req/s" in out
        payload = json.loads(out_file.read_text())
        assert payload["n_errors"] == 0
        assert payload["requests_per_second"] > 0
        assert {row["kind"] for row in payload["rows"]} == {"query", "cf_query"}
