"""Scale smoke: a 1e5-node streaming build + one localized explain per
ranker, executed under a peak-RSS ceiling.

This script exists to be a *process-level* memory gate: ``ru_maxrss`` is
only meaningful when the measured workload owns the process, so CI runs
it as its own job instead of a pytest case.  It asserts the three things
the million-node roadmap item depends on:

* the streaming generator builds a 1e5-node network in compact CSR form
  (never thawing into per-person Python sets),
* every baseline ranker answers a ``localized=True`` explain request
  end-to-end through the service — plans recorded, sampled answers
  inside their certified residual bound,
* peak resident memory for the whole run stays under the ceiling (a
  densified build or an O(n^2) probe path blows straight through it).

Usage::

    PYTHONPATH=src python scripts/scale_smoke.py [--n 100000]
        [--max-rss-mb 1200] [--json scale_smoke.json]
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time

from repro.embeddings import train_ppmi_embedding
from repro.explain import BeamConfig, FactualConfig
from repro.graph import NetworkRecipe
from repro.graph.generators import synthesize_network_streaming
from repro.linkpred import HeuristicLinkPredictor
from repro.search import (
    DocumentExpertRanker,
    HitsExpertRanker,
    PageRankExpertRanker,
)
from repro.service import EngineRegistry, ExplainRequest, ExplanationService

EPSILON = 1e-5


def peak_rss_mb() -> float:
    """Peak resident set size of this process, MiB (ru_maxrss is KiB on
    Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def scale_recipe(n: int, seed: int = 29) -> NetworkRecipe:
    """The bench scale tiers' recipe shape: sparse heavy-tailed graph,
    skill vocabulary growing with n."""
    return NetworkRecipe(
        n_people=n,
        n_edges=3 * n,
        n_skills=max(200, n // 50),
        n_communities=max(12, n // 2000),
        skills_per_person=8,
        seed=seed,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=100_000)
    parser.add_argument(
        "--max-rss-mb",
        type=float,
        default=1200.0,
        help="peak-RSS ceiling for the whole run (MiB)",
    )
    parser.add_argument(
        "--max-build-rss-mb",
        type=float,
        default=400.0,
        help="peak-RSS ceiling right after the streaming build (MiB); "
        "the streamed 1e5 build measures ~126 MiB, a densified one is "
        "several hundred MiB of Python sets above that",
    )
    parser.add_argument("--json", default=None, help="write the report here")
    args = parser.parse_args(argv)

    report = {"n_people": args.n, "max_rss_mb": args.max_rss_mb}

    start = time.perf_counter()
    net = synthesize_network_streaming(scale_recipe(args.n)).network
    report["build_seconds"] = time.perf_counter() - start
    report["rss_after_build_mb"] = peak_rss_mb()
    assert net.is_compact, "streaming build densified into Python sets"
    assert net.n_people == args.n
    assert report["rss_after_build_mb"] <= args.max_build_rss_mb, (
        f"post-build RSS {report['rss_after_build_mb']:.0f} MiB above the "
        f"{args.max_build_rss_mb:.0f} MiB ceiling — the build densified"
    )

    profiles = [sorted(net.skills(p)) for p in net.people()]
    embedding = train_ppmi_embedding(profiles, dim=16, min_count=1)
    predictor = HeuristicLinkPredictor().fit(net)
    query = tuple(sorted(net.skills(next(iter(net.people()))))[:3])
    rankers = {
        "pagerank": PageRankExpertRanker(),
        "hits": HitsExpertRanker(),
        "tfidf": DocumentExpertRanker(),
    }

    report["rankers"] = {}
    for name, ranker in rankers.items():
        service = ExplanationService(
            network=net,
            ranker=ranker,
            embedding=embedding,
            link_predictor=predictor,
            former=None,
            k=10,
            factual_config=FactualConfig(
                n_samples=16, max_samples=32, selection_samples=8
            ),
            beam_config=BeamConfig(
                beam_size=4, n_candidates=4, max_size=2, n_explanations=1
            ),
            registry=EngineRegistry(),
        )
        expert = int(ranker.evaluate(query, net).order[0])
        start = time.perf_counter()
        response = service.explain(
            ExplainRequest(
                kind="skills",
                person=expert,
                query=query,
                localized=True,
                epsilon=EPSILON,
            )
        )
        elapsed = time.perf_counter() - start
        assert response.ok, f"{name}: explain failed: {response.error}"
        summary = response.localized
        assert summary is not None, f"{name}: no localized summary stamped"
        plans = summary["exact"] + summary["sampled"] + summary["global"]
        assert plans > 0, f"{name}: no probe recorded a localized plan"
        assert summary["max_residual_bound"] <= EPSILON + 1e-9, summary
        report["rankers"][name] = {
            "explain_seconds": elapsed,
            "localized": summary,
            "rss_mb": peak_rss_mb(),
        }
        print(
            f"{name:>9}: explained person {expert} in {elapsed:.2f}s "
            f"(plans {summary['exact']} exact / {summary['sampled']} "
            f"sampled / {summary['global']} global, "
            f"rss {report['rankers'][name]['rss_mb']:.0f} MiB)",
            flush=True,
        )

    report["peak_rss_mb"] = peak_rss_mb()
    assert report["peak_rss_mb"] <= args.max_rss_mb, (
        f"peak RSS {report['peak_rss_mb']:.0f} MiB above the "
        f"{args.max_rss_mb:.0f} MiB ceiling"
    )
    print(
        f"scale-smoke OK: n={args.n}, built in "
        f"{report['build_seconds']:.2f}s, peak rss "
        f"{report['peak_rss_mb']:.0f} MiB <= {args.max_rss_mb:.0f} MiB",
        flush=True,
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
    return 0


if __name__ == "__main__":
    sys.exit(main())
