"""Team formation explanations (paper §3.5, Examples 5 and the §4.5
Chapelle/Collobert case study).

Forms a team around a seed expert with the build-around-the-main-member
former, then explains:

* why a member is on the team (factual SHAP on membership status),
* what changes would evict a member (counterfactual skill/link removal),
* what a nearby non-member would need to join (counterfactual skill
  addition — the Figure 8 "community + discovery" pattern).

Run:  python examples/team_formation.py  [--scale 0.02]
"""

import argparse

from repro import ExES
from repro.datasets import dblp_like
from repro.eval import random_queries
from repro.explain import (
    render_counterfactuals,
    render_force_plot,
    render_team,
)


def main(scale: float = 0.02, seed: int = 2) -> None:
    print(f"generating DBLP-like dataset at scale {scale} ...")
    dataset = dblp_like(scale=scale)
    network = dataset.network
    exes = ExES.build(dataset, k=10, seed=seed)

    query = random_queries(network, 1, seed=seed + 11)[0]
    print(f"\nquery: {query}")
    seed_member = exes.top_k(query)[0]
    team = exes.form_team(query, seed_member=seed_member)
    print(render_team(team, network))

    members = sorted(team.members - {seed_member})
    if not members:
        print("\n(the seed alone covers the query; try a longer query)")
        return
    member = members[0]

    print(f"\n=== why is {network.name(member)} on the team? ===")
    fx = exes.explain_skills(member, query, team=True, seed_member=seed_member)
    print(render_force_plot(fx, network, top=8))

    print(f"\n=== what would push {network.name(member)} off the team? ===")
    print(
        render_counterfactuals(
            exes.counterfactual_skills(member, query, team=True, seed_member=seed_member),
            network,
            limit=4,
        )
    )
    print()
    print(
        render_counterfactuals(
            exes.counterfactual_collaborations(
                member, query, team=True, seed_member=seed_member
            ),
            network,
            limit=4,
        )
    )

    outsiders = sorted(network.neighbors(seed_member) - team.members)
    if outsiders:
        outsider = outsiders[0]
        print(f"\n=== what would get {network.name(outsider)} onto the team? ===")
        print(
            render_counterfactuals(
                exes.counterfactual_skills(
                    outsider, query, team=True, seed_member=seed_member
                ),
                network,
                limit=4,
            )
        )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args()
    main(scale=args.scale, seed=args.seed)
