"""Career-advancement advice from counterfactual explanations.

The paper's introduction motivates counterfactuals as actionable guidance:
"suggest new skills and collaborations to increase the likelihood of being
identified as an expert."  This example picks a mid-ranked researcher and
aggregates, across several queries in their area, the smallest skill and
collaboration additions that would lift them into the top-k — a concrete
advising report.

Run:  python examples/career_advice.py  [--scale 0.02]
"""

import argparse
from collections import Counter

from repro import ExES
from repro.datasets import dblp_like
from repro.eval import random_queries
from repro.graph.perturbations import AddEdge, AddSkill


def main(scale: float = 0.02, seed: int = 3, n_queries: int = 5) -> None:
    print(f"generating DBLP-like dataset at scale {scale} ...")
    dataset = dblp_like(scale=scale)
    network = dataset.network
    exes = ExES.build(dataset, k=10, seed=seed)

    queries = random_queries(network, n_queries, seed=seed + 5)

    # Find a person who is consistently close to — but outside — the top-k.
    candidate = None
    for query in queries:
        results = exes.ranker.evaluate(query, network)
        band = results.top_k(2 * exes.k)[exes.k:]
        if band:
            candidate = band[0]
            break
    if candidate is None:
        print("no suitable near-miss candidate found; increase --scale")
        return

    name = network.name(candidate)
    print(f"\nadvising {name} (skills: {', '.join(sorted(network.skills(candidate))[:8])} ...)")

    skill_votes: Counter = Counter()
    collab_votes: Counter = Counter()
    explained = 0
    for query in queries:
        rank = exes.rank_of(candidate, query)
        if rank <= exes.k or rank > 3 * exes.k:
            continue  # already in, or hopeless for this query
        explained += 1
        print(f"\nquery {query}: currently ranked {rank}")
        skills_cf = exes.counterfactual_skills(candidate, query)
        for cf in skills_cf.sorted_counterfactuals()[:3]:
            print(f"  - {cf.describe(network)} (new rank {cf.new_order_key:.0f})")
            for p in cf.perturbations:
                if isinstance(p, AddSkill) and p.person == candidate:
                    skill_votes[p.skill] += 1
        links_cf = exes.counterfactual_collaborations(candidate, query)
        for cf in links_cf.sorted_counterfactuals()[:2]:
            print(f"  - {cf.describe(network)} (new rank {cf.new_order_key:.0f})")
            for p in cf.perturbations:
                if isinstance(p, AddEdge):
                    other = p.v if p.u == candidate else p.u
                    collab_votes[network.name(other)] += 1

    print("\n=== advising summary ===")
    if skill_votes:
        print("skills to acquire (by how many queries they would unlock):")
        for skill, votes in skill_votes.most_common(5):
            print(f"  {skill:<24} {votes} quer{'y' if votes == 1 else 'ies'}")
    if collab_votes:
        print("collaborations to pursue:")
        for person, votes in collab_votes.most_common(5):
            print(f"  {person:<24} {votes} quer{'y' if votes == 1 else 'ies'}")
    if not explained:
        print("(candidate was inside the top-k for every sampled query)")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--queries", type=int, default=5, dest="n_queries")
    args = parser.parse_args()
    main(scale=args.scale, seed=args.seed, n_queries=args.n_queries)
