"""Model-agnosticism demo: ExES explains four different expert search systems.

ExES never looks inside the model — it only probes R(q, G) with perturbed
inputs.  This example runs the same factual + counterfactual explanation
for the same individual against four rankers (GCN, personalized PageRank,
TF-IDF document ranker, HITS) and shows how the explanations shift with
the model's actual decision logic: the document ranker's explanations
never involve collaborations, while the graph rankers' do.

Run:  python examples/compare_rankers.py  [--scale 0.015]
"""

import argparse

from repro import ExES
from repro.datasets import dblp_like
from repro.embeddings import train_ppmi_embedding
from repro.eval import random_queries
from repro.explain import BeamConfig, FactualConfig, render_skill_summary
from repro.linkpred import GaeConfig, train_gae
from repro.search import (
    DocumentExpertRanker,
    GcnExpertRanker,
    GcnRankerConfig,
    HitsExpertRanker,
    PageRankExpertRanker,
)
from repro.team import CoverTeamFormer


def main(scale: float = 0.015, seed: int = 4) -> None:
    print(f"generating DBLP-like dataset at scale {scale} ...")
    dataset = dblp_like(scale=scale)
    network = dataset.network
    embedding = train_ppmi_embedding(dataset.corpus.token_lists(), dim=32, seed=seed)
    link_predictor = train_gae(network, GaeConfig(seed=seed))

    rankers = {
        "GCN": GcnExpertRanker(embedding, GcnRankerConfig(seed=seed)).fit(network),
        "PageRank": PageRankExpertRanker(),
        "TF-IDF": DocumentExpertRanker(dataset.corpus),
        "HITS": HitsExpertRanker(),
    }

    query = random_queries(network, 1, seed=seed + 2)[0]
    print(f"query: {query}\n")

    for name, ranker in rankers.items():
        exes = ExES(
            network=network,
            ranker=ranker,
            embedding=embedding,
            link_predictor=link_predictor,
            former=CoverTeamFormer(ranker),
            k=10,
            factual_config=FactualConfig(n_samples=128),
            beam_config=BeamConfig(beam_size=10, n_candidates=6),
        )
        top = exes.top_k(query)
        expert = top[0]
        print(f"=== {name}: top expert is {network.name(expert)} ===")
        fx = exes.explain_skills(expert, query)
        print(render_skill_summary(fx, network))
        cf = exes.counterfactual_skills(expert, query)
        if cf.counterfactuals:
            best = cf.sorted_counterfactuals()[0]
            print(f"smallest eviction: {best.describe(network)}")
        else:
            print("smallest eviction: (none found within budget)")
        print()


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.015)
    parser.add_argument("--seed", type=int, default=4)
    args = parser.parse_args()
    main(scale=args.scale, seed=args.seed)
