"""Academic expert search on the DBLP-like dataset (paper §4.5 case studies).

Mirrors the paper's case-study flow on the synthetic DBLP network:

1. rank experts for a query with the trained GCN ranker,
2. factually explain a top expert's skills and collaborations
   (the "Yann LeCun" study: Figures 10–11),
3. counterfactually explain why the person just outside the top-k missed
   the cut, and which query changes would admit them
   (the "Yoshua Bengio" study: Figures 12–13).

Run:  python examples/academic_search.py  [--scale 0.02]
"""

import argparse

from repro import ExES
from repro.datasets import dblp_like
from repro.eval import random_queries
from repro.explain import (
    render_collaboration_graph,
    render_counterfactuals,
    render_force_plot,
    render_skill_summary,
)


def main(scale: float = 0.02, seed: int = 1) -> None:
    print(f"generating DBLP-like dataset at scale {scale} ...")
    dataset = dblp_like(scale=scale)
    network = dataset.network
    print(f"  {network}")

    print("training the GCN ranker, skill embedding, and GAE ...")
    exes = ExES.build(dataset, k=10, seed=seed)

    query = random_queries(network, 1, seed=seed + 3)[0]
    print(f"\nquery: {query}")
    results = exes.ranker.evaluate(query, network)
    top = results.top_k(10)
    print("top-10:", ", ".join(network.name(p) for p in top))

    # -- factual study of a top expert (the LeCun study) ----------------
    expert = top[0]
    print(f"\n=== factual study: {network.name(expert)} (rank 1) ===")
    skills_fx = exes.explain_skills(expert, query)
    print(render_force_plot(skills_fx, network, top=10))
    print()
    print(render_skill_summary(skills_fx, network))
    print()
    print(render_collaboration_graph(exes.explain_collaborations(expert, query), network))

    # -- counterfactual study of the runner-up (the Bengio study) -------
    runner_up = int(results.order[10])  # rank 11: just outside the top-10
    print(
        f"\n=== counterfactual study: {network.name(runner_up)} "
        f"(rank {results.rank_of(runner_up)}) ==="
    )
    print(render_counterfactuals(exes.counterfactual_skills(runner_up, query), network, limit=5))
    print()
    print(render_counterfactuals(exes.counterfactual_query(runner_up, query), network, limit=5))
    print()
    print(
        render_counterfactuals(
            exes.counterfactual_collaborations(runner_up, query), network, limit=5
        )
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()
    main(scale=args.scale, seed=args.seed)
