"""Quickstart: explain an expert search result on the paper's Figure 1 network.

Recreates the running example of the paper's introduction: an academic
collaboration network of nine researchers, the query {"xai", "ai",
"data mining"}, and factual + counterfactual explanations for the top
expert.

Run:  python examples/quickstart.py
"""

from repro import ExES, figure1_network
from repro.embeddings import train_ppmi_embedding
from repro.explain import (
    BeamConfig,
    FactualConfig,
    render_counterfactuals,
    render_force_plot,
)
from repro.linkpred import GaeConfig, train_gae
from repro.search import PageRankExpertRanker
from repro.team import CoverTeamFormer


def main() -> None:
    network = figure1_network()

    # Figure 1 has no publication corpus, so train the skill embedding on
    # each researcher's skill profile (one "document" per person).
    profiles = [sorted(network.skills(p)) for p in network.people()]
    embedding = train_ppmi_embedding(profiles, dim=8, min_count=1)

    ranker = PageRankExpertRanker()  # model-agnostic: any ranker works
    exes = ExES(
        network=network,
        ranker=ranker,
        embedding=embedding,
        link_predictor=train_gae(network, GaeConfig(epochs=40, seed=0)),
        former=CoverTeamFormer(ranker),
        k=1,  # Figure 1 explains being *the* top expert
        factual_config=FactualConfig(exact_limit=12),
        beam_config=BeamConfig(beam_size=8, n_candidates=5),
    )

    query = ["xai", "ai", "data mining"]
    print(f"query: {query}")
    ranking = ranker.rank(query, network)[:3]
    print("ranking:", [network.name(p) for p in ranking])

    expert = ranking[0]
    print(f"\nWhy is {network.name(expert)} selected?\n")
    print(render_force_plot(exes.explain_skills(expert, query), network))
    print()
    print(render_force_plot(exes.explain_query(expert, query), network))

    print(f"\nWhat would change the outcome for {network.name(expert)}?\n")
    print(render_counterfactuals(exes.counterfactual_skills(expert, query), network))
    print()
    print(render_counterfactuals(exes.counterfactual_query(expert, query), network))
    print()
    print(
        render_counterfactuals(
            exes.counterfactual_collaborations(expert, query), network
        )
    )


if __name__ == "__main__":
    main()
