"""A small from-scratch neural-network substrate on numpy.

The paper's expert search model is a PyTorch GCN and its link-prediction
pruning oracle is a Graph Auto-encoder.  PyTorch is not available in this
environment, so this package provides the minimum viable deep-learning
stack: a reverse-mode autograd engine over numpy arrays
(:mod:`repro.nn.autograd`), layers (:mod:`repro.nn.layers`), losses, weight
initializers, and optimizers.  It is deliberately small but real — gradients
are checked against finite differences in the test suite.
"""

from repro.nn.autograd import Tensor, sparse_matmul, stack_rows
from repro.nn.layers import GCNConv, Linear, Module, Parameter
from repro.nn.losses import bce_with_logits, margin_ranking_loss, mse_loss
from repro.nn.optim import SGD, Adam
from repro.nn.init import xavier_uniform

__all__ = [
    "Adam",
    "GCNConv",
    "Linear",
    "Module",
    "Parameter",
    "SGD",
    "Tensor",
    "bce_with_logits",
    "margin_ranking_loss",
    "mse_loss",
    "sparse_matmul",
    "stack_rows",
    "xavier_uniform",
]
