"""Reverse-mode automatic differentiation over numpy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operations applied to
it; calling :meth:`Tensor.backward` on a scalar result walks the recorded
graph in reverse topological order and accumulates gradients into every
tensor created with ``requires_grad=True``.

Supported operations cover what the GCN ranker and graph auto-encoder need:
elementwise arithmetic with numpy broadcasting, matmul, sparse-dense matmul
(the graph propagation step — the sparse operator is a constant), row
gathering (embedding lookups / minibatching), common activations, and
reductions.  Gradients are verified against central finite differences in
``tests/nn/test_autograd.py``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

ArrayLike = Union[np.ndarray, float, int, Sequence]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A differentiable numpy array node.

    >>> x = Tensor([[1.0, 2.0]], requires_grad=True)
    >>> y = (x * x).sum()
    >>> y.backward()
    >>> x.grad.tolist()
    [[2.0, 4.0]]
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad
        self._parents = _parents
        self._backward = _backward

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy); do not mutate during training."""
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor (must be scalar unless ``grad`` given)."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    f"backward() without an explicit gradient requires a scalar "
                    f"output, got shape {self.data.shape}"
                )
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        visited = set()

        def visit(node: Tensor) -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    topo.append(current)
                    continue
                if id(current) in visited:
                    continue
                visited.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    if id(parent) not in visited:
                        stack.append((parent, False))

        visit(self)
        grads = {id(self): np.asarray(grad, dtype=np.float64)}
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node.requires_grad:
                node._accumulate(g)
            if node._backward is None:
                continue
            for parent, pgrad in node._backward(g):
                if pgrad is None:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad

    @staticmethod
    def _lift(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _needs_graph(self, *others: "Tensor") -> bool:
        return self.requires_grad or bool(self._parents) or any(
            o.requires_grad or bool(o._parents) for o in others
        )

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray):
            return (
                (self, _unbroadcast(g, self.data.shape)),
                (other, _unbroadcast(g, other.data.shape)),
            )

        return self._make(out_data, (self, other), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray):
            return ((self, -g),)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(self._lift(other).__neg__())

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray):
            return (
                (self, _unbroadcast(g * other.data, self.data.shape)),
                (other, _unbroadcast(g * self.data, other.data.shape)),
            )

        return self._make(out_data, (self, other), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray):
            return (
                (self, _unbroadcast(g / other.data, self.data.shape)),
                (
                    other,
                    _unbroadcast(-g * self.data / (other.data ** 2), other.data.shape),
                ),
            )

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")

        out_data = self.data ** exponent

        def backward(g: np.ndarray):
            return ((self, g * exponent * self.data ** (exponent - 1)),)

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        if self.data.ndim != 2 or other.data.ndim != 2:
            raise ValueError(
                f"matmul expects 2-D operands, got {self.data.shape} @ {other.data.shape}"
            )
        out_data = self.data @ other.data

        def backward(g: np.ndarray):
            return (
                (self, g @ other.data.T),
                (other, self.data.T @ g),
            )

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # shaping / gathering
    # ------------------------------------------------------------------
    @property
    def T(self) -> "Tensor":
        def backward(g: np.ndarray):
            return ((self, g.T),)

        return self._make(self.data.T, (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        original = self.data.shape

        def backward(g: np.ndarray):
            return ((self, g.reshape(original)),)

        return self._make(self.data.reshape(*shape), (self,), backward)

    def rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows (embedding lookup); gradient scatter-adds back."""
        indices = np.asarray(indices, dtype=np.int64)
        out_data = self.data[indices]

        def backward(g: np.ndarray):
            full = np.zeros_like(self.data)
            np.add.at(full, indices, g)
            return ((self, full),)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # activations & elementwise functions
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(g: np.ndarray):
            return ((self, g * mask),)

        return self._make(self.data * mask, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))

        def backward(g: np.ndarray):
            return ((self, g * out_data * (1.0 - out_data)),)

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray):
            return ((self, g * (1.0 - out_data ** 2)),)

        return self._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -60, 60))

        def backward(g: np.ndarray):
            return ((self, g * out_data),)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(g: np.ndarray):
            return ((self, g / self.data),)

        return self._make(np.log(self.data), (self,), backward)

    def clip_min(self, floor: float) -> "Tensor":
        """max(x, floor) — used for numerically safe norms."""
        mask = self.data > floor

        def backward(g: np.ndarray):
            return ((self, g * mask),)

        return self._make(np.maximum(self.data, floor), (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray):
            g_arr = np.asarray(g)
            if axis is None:
                grad = np.broadcast_to(g_arr, self.data.shape).copy()
            else:
                if not keepdims:
                    g_arr = np.expand_dims(g_arr, axis)
                grad = np.broadcast_to(g_arr, self.data.shape).copy()
            return ((self, grad),)

        return self._make(out_data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _make(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable,
    ) -> "Tensor":
        if any(p.requires_grad or p._parents for p in parents):
            return Tensor(data, _parents=parents, _backward=backward)
        return Tensor(data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"


def sparse_matmul(matrix: sp.spmatrix, x: Tensor) -> Tensor:
    """``matrix @ x`` where ``matrix`` is a constant scipy sparse operator.

    This is the GCN propagation step ``Â H``; gradients flow only through
    ``x`` (``∂/∂x = Âᵀ g``).
    """
    matrix = matrix.tocsr()
    out_data = matrix @ x.data

    def backward(g: np.ndarray):
        return ((x, matrix.T @ g),)

    if x.requires_grad or x._parents:
        return Tensor(out_data, _parents=(x,), _backward=backward)
    return Tensor(out_data)


def stack_rows(tensors: Sequence[Tensor]) -> Tensor:
    """Stack 1-D tensors into a 2-D tensor, differentiable per row."""
    if not tensors:
        raise ValueError("cannot stack an empty sequence")
    out_data = np.stack([t.data for t in tensors])

    def backward(g: np.ndarray):
        return tuple((t, g[i]) for i, t in enumerate(tensors))

    if any(t.requires_grad or t._parents for t in tensors):
        return Tensor(out_data, _parents=tuple(tensors), _backward=backward)
    return Tensor(out_data)
