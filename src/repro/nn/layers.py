"""Neural-network layers on top of the autograd engine."""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.nn.autograd import Tensor, sparse_matmul
from repro.nn.init import xavier_uniform


class Parameter(Tensor):
    """A tensor registered as trainable state of a :class:`Module`."""

    def __init__(self, data: np.ndarray) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Minimal module base: recursive parameter collection + zero_grad."""

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        seen = set()
        for value in self.__dict__.values():
            for p in _collect(value):
                if id(p) not in seen:
                    seen.add(id(p))
                    params.append(p)
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def n_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())


def _collect(value) -> Iterator[Parameter]:
    if isinstance(value, Parameter):
        yield value
    elif isinstance(value, Module):
        yield from value.parameters()
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _collect(item)


class Linear(Module):
    """Affine layer ``x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        bias: bool = True,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(xavier_uniform(in_features, out_features, rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def __call__(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class GCNConv(Module):
    """One graph-convolution layer: ``Â (X W) (+ b)``.

    The normalized adjacency ``Â = D^-1/2 (A + I) D^-1/2`` is passed per
    call because the explainers probe the model with perturbed graphs.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        bias: bool = True,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(xavier_uniform(in_features, out_features, rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def __call__(self, x: Tensor, adj_norm: sp.spmatrix) -> Tensor:
        out = sparse_matmul(adj_norm, x @ self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out
