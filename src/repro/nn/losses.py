"""Loss functions used to train the GCN ranker and the graph auto-encoder."""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor


def mse_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    diff = prediction - Tensor(target)
    return (diff * diff).mean()


def bce_with_logits(logits: Tensor, target: np.ndarray) -> Tensor:
    """Numerically stable binary cross-entropy on raw logits.

    Uses ``max(x, 0) - x*y + log(1 + exp(-|x|))``.
    """
    x = logits
    y = Tensor(np.asarray(target, dtype=np.float64))
    abs_x = x.relu() + (-x).relu()  # |x| built from supported primitives
    softplus = ((-abs_x).exp() + 1.0).log()
    per_example = x.relu() - x * y + softplus
    return per_example.mean()


def margin_ranking_loss(
    positive: Tensor, negative: Tensor, margin: float = 0.5
) -> Tensor:
    """Mean hinge loss ``max(0, margin - (pos - neg))`` over aligned pairs."""
    return (Tensor(margin) - (positive - negative)).relu().mean()
