"""Weight initializers."""

from __future__ import annotations

import numpy as np


def xavier_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform init: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


def normal(shape, scale: float, rng: np.random.Generator) -> np.ndarray:
    """Gaussian init with the given standard deviation."""
    return rng.normal(0.0, scale, size=shape)
