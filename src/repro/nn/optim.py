"""First-order optimizers."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.layers import Parameter


class Optimizer:
    """Base: holds parameters, applies updates, clears gradients."""

    def __init__(self, parameters: List[Parameter]) -> None:
        if not parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.parameters = parameters

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: List[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity: Optional[List[np.ndarray]] = None

    def step(self) -> None:
        if self.momentum and self._velocity is None:
            self._velocity = [np.zeros_like(p.data) for p in self.parameters]
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            if self.momentum:
                v = self._velocity[i]
                v *= self.momentum
                v -= self.lr * p.grad
                p.data += v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: List[Parameter],
        lr: float = 0.01,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad * grad
            m_hat = self._m[i] / (1 - self.beta1 ** self._t)
            v_hat = self._v[i] / (1 - self.beta2 ** self._t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
