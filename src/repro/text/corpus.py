"""Synthetic expertise corpus generation.

Every individual in the collaboration network authors a handful of
"documents" (paper titles+abstracts for the DBLP-like dataset, repository
descriptions for the GitHub-like one).  Documents are bags of tokens drawn
from the author's latent communities' skill pools plus generic filler, so

* TF-IDF over a person's documents recovers topic-consistent skills
  (matching the paper's extraction, ~15 skills/person on DBLP), and
* word co-occurrence within documents carries topical similarity, which the
  Word2Vec/PPMI embeddings of Pruning Strategy 4 rely on.

A fraction of documents are co-authored across an edge of the network,
blending the two authors' topic pools — this is what makes "my neighbor's
skills rub off on my corpus", i.e. expertise propagation at the text level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.graph.generators import SynthesisResult, _zipf_weights

_FILLER_TOKENS = (
    "system", "framework", "novel", "efficient", "scalable", "robust",
    "experimental", "empirical", "case", "large", "real", "world",
    "performance", "effective", "task", "problem", "solution", "model",
    "data", "approach2", "technique", "implementation", "open", "source",
    "toolkit", "library", "improved", "fast", "accurate", "general",
)


@dataclass(frozen=True)
class Document:
    """One authored document: token bag plus its author ids."""

    doc_id: int
    authors: Tuple[int, ...]
    tokens: Tuple[str, ...]


@dataclass(frozen=True)
class CorpusRecipe:
    """Knobs for corpus generation."""

    docs_per_person: float = 4.0
    tokens_per_doc: int = 40
    skill_token_fraction: float = 0.72
    coauthor_fraction: float = 0.35
    seed: int = 0


@dataclass
class ExpertiseCorpus:
    """The generated corpus with per-person document indexes."""

    documents: List[Document]
    person_doc_ids: Dict[int, List[int]] = field(default_factory=dict)

    def documents_of(self, person: int) -> List[Document]:
        return [self.documents[i] for i in self.person_doc_ids.get(person, [])]

    def person_tokens(self, person: int) -> List[str]:
        """All tokens of all documents (co-)authored by ``person``."""
        out: List[str] = []
        for doc in self.documents_of(person):
            out.extend(doc.tokens)
        return out

    def token_lists(self) -> List[List[str]]:
        """All documents as plain token lists (for TF-IDF / embeddings)."""
        return [list(d.tokens) for d in self.documents]

    @property
    def n_documents(self) -> int:
        return len(self.documents)


def _person_pool(
    person: int,
    synthesis: SynthesisResult,
    zipf_exponent: float,
) -> Tuple[List[str], np.ndarray]:
    """The skill tokens this person can emit, with Zipf sampling weights."""
    merged: List[str] = []
    for c in synthesis.person_communities[person]:
        merged.extend(synthesis.community_skill_pools[c])
    merged = sorted(set(merged))
    if not merged:
        merged = list(synthesis.skill_vocabulary[: min(10, len(synthesis.skill_vocabulary))])
    return merged, _zipf_weights(len(merged), zipf_exponent)


def _emit_document(
    doc_id: int,
    authors: Tuple[int, ...],
    pools: Sequence[Tuple[List[str], np.ndarray]],
    recipe: CorpusRecipe,
    rng: np.random.Generator,
) -> Document:
    n_tokens = max(8, int(rng.normal(recipe.tokens_per_doc, recipe.tokens_per_doc * 0.2)))
    n_skill = int(round(n_tokens * recipe.skill_token_fraction))
    tokens: List[str] = []
    for _ in range(n_skill):
        pool, weights = pools[int(rng.integers(0, len(pools)))]
        tokens.append(pool[int(rng.choice(len(pool), p=weights))])
    n_filler = n_tokens - n_skill
    filler_idx = rng.integers(0, len(_FILLER_TOKENS), size=n_filler)
    tokens.extend(_FILLER_TOKENS[i] for i in filler_idx)
    rng.shuffle(tokens)
    return Document(doc_id=doc_id, authors=authors, tokens=tuple(tokens))


def generate_corpus(
    synthesis: SynthesisResult,
    recipe: CorpusRecipe | None = None,
) -> ExpertiseCorpus:
    """Generate the expertise corpus for a synthesized network."""
    recipe = recipe or CorpusRecipe()
    rng = np.random.default_rng(recipe.seed + 7919)
    network = synthesis.network
    zipf = synthesis.recipe.skill_zipf_exponent

    pools = [
        _person_pool(p, synthesis, zipf) for p in network.people()
    ]

    documents: List[Document] = []
    person_doc_ids: Dict[int, List[int]] = {p: [] for p in network.people()}

    def register(doc: Document) -> None:
        documents.append(doc)
        for a in doc.authors:
            person_doc_ids[a].append(doc.doc_id)

    for person in network.people():
        n_docs = max(1, int(rng.poisson(recipe.docs_per_person)))
        neighbors = sorted(network.neighbors(person))
        for _ in range(n_docs):
            doc_id = len(documents)
            if neighbors and rng.random() < recipe.coauthor_fraction:
                coauthor = int(neighbors[int(rng.integers(0, len(neighbors)))])
                authors = (person, coauthor)
                doc_pools = [pools[person], pools[coauthor]]
            else:
                authors = (person,)
                doc_pools = [pools[person]]
            register(_emit_document(doc_id, authors, doc_pools, recipe, rng))

    return ExpertiseCorpus(documents=documents, person_doc_ids=person_doc_ids)
