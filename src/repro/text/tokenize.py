"""Minimal deterministic tokenizer shared by the TF-IDF and embedding code.

Lowercases, splits on non-word characters (keeping internal hyphens, since
the synthetic vocabulary uses compound terms like ``graph-algorithms``), and
drops stopwords and single-character tokens.
"""

from __future__ import annotations

import re
from typing import FrozenSet, List

STOPWORDS: FrozenSet[str] = frozenset(
    """
    a an and are as at be by for from has have in is it its of on or that the
    this to was we were will with using based new approach paper propose
    present show results study method methods our their these those than then
    can may must such into over under between via per both
    """.split()
)

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:-[a-z0-9]+)*")


def tokenize(text: str) -> List[str]:
    """Split ``text`` into lowercase content tokens.

    >>> tokenize("Explaining Expert Search with ExES!")
    ['explaining', 'expert', 'search', 'exes']
    """
    tokens = _TOKEN_RE.findall(text.lower())
    return [t for t in tokens if len(t) > 1 and t not in STOPWORDS]
