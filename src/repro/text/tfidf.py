"""From-scratch TF-IDF, used for skill extraction and the document ranker.

Two consumers:

* :func:`extract_skills` reproduces the paper's §4.1 methodology — each
  person's skills are the top-scoring TF-IDF keywords of the documents they
  authored (~15 per person on the DBLP-like preset);
* :class:`TfidfModel` also vectorizes arbitrary token lists for the
  document-based expert search baseline (cosine similarity in TF-IDF space).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.backend import get_backend
from repro.text.corpus import ExpertiseCorpus


@dataclass
class TfidfModel:
    """A fitted TF-IDF vocabulary: term -> (index, idf)."""

    vocabulary: Dict[str, int]
    idf: np.ndarray  # aligned with vocabulary values
    n_documents: int

    @classmethod
    def fit(cls, documents: Iterable[Sequence[str]], min_df: int = 1) -> "TfidfModel":
        """Fit document frequencies over tokenized documents.

        ``idf(t) = ln((1 + N) / (1 + df(t))) + 1`` (smoothed, always > 0).
        """
        df: Dict[str, int] = {}
        n_docs = 0
        for tokens in documents:
            n_docs += 1
            for t in set(tokens):
                df[t] = df.get(t, 0) + 1
        terms = sorted(t for t, c in df.items() if c >= min_df)
        vocabulary = {t: i for i, t in enumerate(terms)}
        idf = np.zeros(len(terms), dtype=np.float64)
        for t, i in vocabulary.items():
            idf[i] = math.log((1.0 + n_docs) / (1.0 + df[t])) + 1.0
        return cls(vocabulary=vocabulary, idf=idf, n_documents=n_docs)

    @property
    def n_terms(self) -> int:
        return len(self.vocabulary)

    def term_scores(self, tokens: Sequence[str]) -> Dict[str, float]:
        """Raw tf-idf score per known term of one token bag."""
        counts: Dict[str, int] = {}
        for t in tokens:
            if t in self.vocabulary:
                counts[t] = counts.get(t, 0) + 1
        total = sum(counts.values())
        if total == 0:
            return {}
        return {
            t: (c / total) * self.idf[self.vocabulary[t]] for t, c in counts.items()
        }

    def row(
        self, tokens: Sequence[str], normalize: bool = True
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sparse tf-idf row of one token bag: (sorted column indices,
        values).  The single scoring kernel behind :meth:`vector`,
        :meth:`matrix`, and the probe engine's per-row profile patches —
        one code path means patched rows match built rows bit-for-bit.
        """
        scores = self.term_scores(tokens)
        if not scores:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)
        pairs = sorted((self.vocabulary[t], s) for t, s in scores.items())
        cols = np.fromiter((c for c, _ in pairs), dtype=np.int64, count=len(pairs))
        vals = np.fromiter((v for _, v in pairs), dtype=np.float64, count=len(pairs))
        if normalize:
            norm = math.sqrt(float(vals @ vals))
            if norm > 0:
                vals = vals / norm
        return cols, vals

    def vector(self, tokens: Sequence[str], normalize: bool = True) -> np.ndarray:
        """Dense tf-idf vector of one token bag (L2-normalized by default)."""
        vec = np.zeros(self.n_terms, dtype=np.float64)
        cols, vals = self.row(tokens, normalize=normalize)
        vec[cols] = vals
        return vec

    def matrix(
        self, documents: Sequence[Sequence[str]], normalize: bool = True
    ) -> sp.csr_matrix:
        """Sparse tf-idf matrix, one row per document — :meth:`row` per
        document, assembled by the backend's multi-row gather."""
        rows = [self.row(tokens, normalize=normalize) for tokens in documents]
        return get_backend().gather_rows(rows, self.n_terms)


def extract_skills(
    corpus: ExpertiseCorpus,
    people: Iterable[int],
    max_skills: int = 15,
    min_score: float = 0.0,
    filler_terms: Iterable[str] = (),
) -> Dict[int, List[str]]:
    """Top-``max_skills`` TF-IDF keywords per person (paper §4.1).

    Documents are the fitting unit (so common boilerplate gets a low idf);
    each person is then scored on the concatenation of their documents.
    ``filler_terms`` lets callers exclude known non-skill tokens.
    """
    model = TfidfModel.fit(corpus.token_lists())
    banned = set(filler_terms)
    skills: Dict[int, List[str]] = {}
    for person in people:
        tokens = corpus.person_tokens(person)
        scores = model.term_scores(tokens)
        ranked: List[Tuple[str, float]] = sorted(
            ((t, s) for t, s in scores.items() if s > min_score and t not in banned),
            key=lambda kv: (-kv[1], kv[0]),
        )
        skills[person] = [t for t, _ in ranked[:max_skills]]
    return skills
