"""Text substrate: tokenization, synthetic expertise corpora, and TF-IDF.

The paper (Section 4.1) extracts each individual's skills as the top-scoring
TF-IDF keywords of their publication titles/abstracts (DBLP) or repository
descriptions/tags (GitHub).  This package reproduces that pipeline end to
end: a deterministic corpus generator driven by the same latent communities
as the graph generator, a tokenizer, and a from-scratch TF-IDF model used
both for skill extraction and for the document-based ranker baseline.
"""

from repro.text.tokenize import STOPWORDS, tokenize
from repro.text.corpus import CorpusRecipe, Document, ExpertiseCorpus, generate_corpus
from repro.text.tfidf import TfidfModel, extract_skills

__all__ = [
    "CorpusRecipe",
    "Document",
    "ExpertiseCorpus",
    "STOPWORDS",
    "TfidfModel",
    "extract_skills",
    "generate_corpus",
    "tokenize",
]
