"""The session-scoped, concurrent explanation service.

The paper's deployment (Figure 2) is one long-lived ExES instance
answering many explanation requests against one deployed expert-search /
team-formation system.  :class:`ExplanationService` is that object: it
binds the system under explanation (network, ranker, embedding, link
predictor, former) to a shared :class:`~repro.service.registry
.EngineRegistry` and answers typed :class:`~repro.service.requests
.ExplainRequest`\\ s — one at a time through :meth:`explain`, or in bulk
through :meth:`explain_many`.

``explain_many`` is where the service earns its keep:

* requests are **sharded by decision target** — every request against the
  same ``(relevance | membership, seed_member)`` target shares one probe
  engine, and distinct targets are independent, so shards run concurrently
  on a thread pool (the scoring stack is numpy/scipy-heavy, so threads
  win: the hot loops release the GIL inside BLAS/spmm kernels);
* within a shard, requests are **ordered by query** along the PR-4
  two-axis batching, so consecutive requests hit the engine's score memo
  and the sessions' per-query base caches while they are hottest — an
  expert and a non-expert explained for the same query share every
  ``(query, flips)`` score vector;
* **identical requests are coalesced** — service traffic repeats hot
  requests, and a request is a pure function of the frozen system state,
  so duplicates within a batch are answered once and re-served
  bit-identically (``response.coalesced`` marks them);
* membership shards **pre-warm the team session's traced base runs** per
  distinct (query, seed); because the session lives in the registry, the
  trace also stays warm for every later request and facade;
* ``max_workers=1`` is the **deterministic mode**: shards run sequentially
  in sorted order on the calling thread — the parity reference the tests
  pin the sharded mode against.

Engines are never shared across threads (they are not thread-safe); the
delta sessions underneath them are, via :class:`~repro.search.engine
._LruCache`'s internal locking — a double-compute under contention is
benign because session values are deterministic functions of their keys.

**Resilience** (PR 6): every request terminates with a typed outcome
(:data:`~repro.service.requests.OUTCOMES`).  A request carrying
``timeout_seconds``/``probe_limit`` gets a cooperative
:class:`~repro.runtime.Budget` installed around its dispatch; expiry
either surfaces a best-so-far *partial* explanation (``degraded``) or a
typed ``timed_out`` response.  Delta-path failures retry once on the
reference tier — the same dispatch with :func:`~repro.runtime
.delta_bypass` routing every probe through the plain paths with
overlays kept visible (per-request ``full_rebuild`` semantics, parity-
exact by the same contract the fuzz suite pins) — and a per-(target,
base version) :class:`~repro.service.runtime.CircuitBreaker` routes
straight to that tier after repeated failures.  ``explain_many``
optionally load-sheds over-limit work via :class:`~repro.service
.runtime.AdmissionControl` (typed ``rejected``, never an exception).
The default :class:`~repro.service.runtime.ResilienceConfig` leaves all
of it inert — no budget, no admission, breakers untripped — so the
deterministic mode stays bit-identical to the per-call facade.
"""

from __future__ import annotations

import logging
import os
import threading
import time
import traceback as _traceback
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.embeddings.similarity import SkillEmbedding
from repro.explain.candidates import LinkPredictor
from repro.explain.counterfactual import BeamConfig, CounterfactualExplainer
from repro.explain.factual import FactualConfig, FactualExplainer
from repro.explain.targets import DecisionTarget, MembershipTarget, RelevanceTarget
from repro.graph.network import BaseDelta, CollaborationNetwork
from repro.graph.overlay import NetworkOverlay
from repro.runtime import (
    Budget,
    BudgetExceeded,
    LocalizedSpec,
    budget_scope,
    delta_bypass,
    localized_scope,
)
from repro.search.base import ExpertSearchSystem
from repro.search.engine import ProbeEngine
from repro.service.registry import EngineRegistry, default_registry
from repro.service.requests import (
    EXPLANATION_KINDS,
    ExplainError,
    ExplainRequest,
    ExplainResponse,
    Explanation,
)
from repro.service.runtime import (
    AdmissionControl,
    CircuitBreaker,
    ResilienceConfig,
    ServiceStats,
)
from repro.team.base import TeamFormationSystem

logger = logging.getLogger(__name__)

_KIND_ORDER = {kind: i for i, kind in enumerate(EXPLANATION_KINDS)}

#: Exceptions _warm_shard treats as *expected*: warming probes the same
#: state the per-request dispatch will, so a bad seed member or foreign
#: state fails here first and again — typed — per request below.
_EXPECTED_WARM_FAILURES = (ValueError, KeyError, IndexError)


@dataclass(frozen=True)
class CommitResult:
    """What one :meth:`ExplanationService.commit` did: the structural
    :class:`~repro.graph.network.BaseDelta` the overlay promoted, plus the
    registry's rebase accounting (sessions/engines/memo entries retained
    vs. dropped)."""

    delta: BaseDelta
    stats: Dict[str, int]

    @property
    def old_version(self) -> int:
        return self.delta.old_version

    @property
    def new_version(self) -> int:
        return self.delta.new_version


def _explain_error(exc: BaseException, retryable: bool) -> ExplainError:
    tb = _traceback.format_exc(limit=8)
    return ExplainError(
        kind=type(exc).__name__,
        message=str(exc),
        retryable=retryable,
        traceback=tb[-2000:],
    )


class ExplanationService:
    """Long-lived explanation service over one deployed system."""

    def __init__(
        self,
        network: CollaborationNetwork,
        ranker: ExpertSearchSystem,
        embedding: SkillEmbedding,
        link_predictor: LinkPredictor,
        former: Optional[TeamFormationSystem] = None,
        k: int = 10,
        factual_config: Optional[FactualConfig] = None,
        beam_config: Optional[BeamConfig] = None,
        registry: Optional[EngineRegistry] = None,
        resilience: Optional[ResilienceConfig] = None,
    ) -> None:
        self.network = network
        self.ranker = ranker
        self.embedding = embedding
        self.link_predictor = link_predictor
        self.former = former
        self.k = k
        self.factual_config = factual_config or FactualConfig()
        self.beam_config = beam_config or BeamConfig()
        self.resilience = resilience or ResilienceConfig()
        self.stats = ServiceStats()
        self.admission = (
            AdmissionControl(
                self.resilience.max_in_flight, self.resilience.session_share
            )
            if self.resilience.max_in_flight is not None
            else None
        )
        self.breaker = CircuitBreaker(
            failure_threshold=self.resilience.breaker_failure_threshold,
            cooldown_seconds=self.resilience.breaker_cooldown_seconds,
        )
        # The commit gate: one condition guards (inflight request count,
        # pending-commit count).  Requests drain out before a commit
        # rebases the base in place, so no response is ever computed
        # against a mix of two base versions.
        self._version_gate = threading.Condition()
        self._inflight_requests = 0
        self._commit_waiting = 0
        # No explicit registry -> the process-wide default, so services and
        # facades wrapping the same system share engines out of the box.
        self.registry = registry if registry is not None else default_registry()
        # Route the ranker's and former's session lookups through the
        # registry: one delta session per (system, base version), shared by
        # every engine/explainer/facade instead of a single thrashing slot.
        # Ownership is last-install-wins by design: the session hook lives
        # on the system object because ``ranker.scores(query, overlay)``
        # has no other way to reach a registry, so constructing a second
        # service over the same system migrates session ownership to its
        # registry (values stay correct — sessions are pure functions of
        # (system, base) — only cache residency moves).  Share one
        # registry across services wrapping the same system, the way the
        # process default does, to avoid the migration entirely.
        self.registry.install(ranker, former)

    # ------------------------------------------------------------------
    # targets, engines, explainers
    # ------------------------------------------------------------------
    def target(
        self, team: bool = False, seed_member: Optional[int] = None
    ) -> DecisionTarget:
        """The decision being explained: relevance (default) or membership."""
        if not team:
            return RelevanceTarget(self.ranker, self.k)
        if self.former is None:
            raise ValueError("no team formation system was configured")
        return MembershipTarget(self.former, seed_member=seed_member)

    def engine(
        self, team: bool = False, seed_member: Optional[int] = None
    ) -> ProbeEngine:
        """The registry-owned probe engine for the chosen target."""
        return self.registry.engine(self.target(team, seed_member), self.network)

    def factual_explainer(
        self, team: bool = False, seed_member: Optional[int] = None
    ) -> FactualExplainer:
        """A factual explainer with the registry's engine injected."""
        engine = self.engine(team, seed_member)
        return FactualExplainer(
            engine.target,
            self.factual_config,
            engine=engine,
            engine_provider=lambda net, _t=engine.target: self.registry.engine(
                _t, net
            ),
        )

    def counterfactual_explainer(
        self, team: bool = False, seed_member: Optional[int] = None
    ) -> CounterfactualExplainer:
        """A counterfactual explainer with the registry's engine injected."""
        engine = self.engine(team, seed_member)
        return CounterfactualExplainer(
            engine.target,
            self.embedding,
            self.link_predictor,
            self.beam_config,
            engine=engine,
            engine_provider=lambda net, _t=engine.target: self.registry.engine(
                _t, net
            ),
        )

    # ------------------------------------------------------------------
    # single-request path
    # ------------------------------------------------------------------
    def explain(self, request: ExplainRequest) -> ExplainResponse:
        """Answer one request (raises on failure — the bulk path is the
        one that degrades per-request errors into typed responses)."""
        return self._answer_one(request, raise_on_failure=True)

    # ------------------------------------------------------------------
    # live base edits
    # ------------------------------------------------------------------
    def commit(self, overlay: NetworkOverlay) -> CommitResult:
        """Promote ``overlay``'s flips to a new base version *in place*
        and rebase the registry's warm state O(Δ).

        The gate semantics: announcing the commit blocks *new* requests
        at the :meth:`_answer_one` door, then the commit waits until
        every in-flight request has drained — so every response is
        computed against exactly one base version, and the flush bus can
        never fuse probes across the boundary (its keys carry the
        sessions' ``base_version``, which only moves here, with zero
        requests in flight).  Concurrent commits serialize on the same
        gate."""
        if overlay.base is not self.network:
            raise ValueError("overlay does not extend this service's network")
        with self._version_gate:
            self._commit_waiting += 1
            self._version_gate.notify_all()
            try:
                while self._inflight_requests:
                    self._version_gate.wait()
                delta = overlay.commit()
                stats = self.registry.rebase(self.network, delta)
            finally:
                self._commit_waiting -= 1
                self._version_gate.notify_all()
        self.stats.bump("commits")
        if not delta.is_empty:
            self.stats.bump("commit_flips", len(delta.skill_flips) + len(delta.edge_flips))
        return CommitResult(delta=delta, stats=stats)

    # ------------------------------------------------------------------
    # the degradation ladder
    # ------------------------------------------------------------------
    def _budget_for(self, request: ExplainRequest) -> Optional[Budget]:
        if request.timeout_seconds is None and request.probe_limit is None:
            return None
        return Budget(
            timeout_seconds=request.timeout_seconds,
            probe_limit=request.probe_limit,
        )

    def _breaker_key(self, request: ExplainRequest) -> Tuple:
        return (request.target_key, id(self.network), self.network.version)

    def _answer_one(
        self, request: ExplainRequest, raise_on_failure: bool = False
    ) -> ExplainResponse:
        """The commit-gated wrapper around :meth:`_answer_one_impl`: wait
        out any pending commit (commits have priority, so a steady request
        stream cannot starve an edit), pin the base version for the whole
        dispatch, and stamp it on the response.  The matching drain wait
        in :meth:`commit` makes the pinned version an invariant — the base
        cannot move while this request is in flight."""
        with self._version_gate:
            while self._commit_waiting:
                self._version_gate.wait()
            self._inflight_requests += 1
            base_version = self.network.version
        try:
            response = self._answer_one_impl(request, raise_on_failure)
        finally:
            with self._version_gate:
                self._inflight_requests -= 1
                self._version_gate.notify_all()
        return replace(response, base_version=base_version)

    def _answer_one_impl(
        self, request: ExplainRequest, raise_on_failure: bool = False
    ) -> ExplainResponse:
        """One request through the full degradation ladder:

        1. delta tier — the normal dispatch, under the request budget;
        2. reference tier — the same dispatch with the delta paths
           bypassed (:func:`~repro.runtime.delta_bypass`), entered when
           the delta tier raises a retryable exception or the target's
           circuit is open;
        3. typed failure — whatever survives both tiers lands in
           ``response.error`` with an outcome, never as an exception
           (unless ``raise_on_failure``, the single-request contract).
        """
        start = time.perf_counter()
        budget = self._budget_for(request)
        spec = self._localized_spec(request)
        bkey = self._breaker_key(request)

        if not self.breaker.allows_delta(bkey):
            self.stats.bump("breaker_reroute")
            return self._run_reference(
                request, start, budget, raise_on_failure, spec
            )
        try:
            with budget_scope(budget), localized_scope(spec):
                explanation = self._dispatch(request)
        except BudgetExceeded as exc:
            self.breaker.trial_inconclusive(bkey)
            if raise_on_failure:
                raise
            return self._timed_out_response(request, start, exc)
        except ValueError as exc:
            # Request validation (unknown target family, bad seed): the
            # retry tier would fail identically — don't pay it, and don't
            # let it count against the delta path's health.
            self.breaker.trial_inconclusive(bkey)
            self.stats.bump("outcome.failed")
            if raise_on_failure:
                raise
            return ExplainResponse(
                request=request,
                elapsed_seconds=time.perf_counter() - start,
                error=_explain_error(exc, retryable=False),
                outcome="failed",
            )
        except Exception as exc:
            self.breaker.record_failure(bkey)
            self.stats.bump("delta_failure")
            if not self.resilience.full_rebuild_retry:
                self.stats.bump("outcome.failed")
                if raise_on_failure:
                    raise
                return ExplainResponse(
                    request=request,
                    elapsed_seconds=time.perf_counter() - start,
                    error=_explain_error(exc, retryable=True),
                    outcome="failed",
                )
            self.stats.bump("full_rebuild_retry")
            return self._run_reference(
                request, start, budget, raise_on_failure, spec
            )
        self.breaker.record_success(bkey)
        return self._completed_response(
            request, start, budget, explanation, None, spec
        )

    def _localized_spec(self, request: ExplainRequest) -> Optional[LocalizedSpec]:
        """The per-request localized scope, when the request asked for
        one.  A fresh spec per request: its plan counters are the
        response-facing accounting."""
        if not request.localized:
            return None
        if request.epsilon is not None:
            return LocalizedSpec(epsilon=request.epsilon)
        return LocalizedSpec()

    def _run_reference(
        self,
        request: ExplainRequest,
        start: float,
        budget: Optional[Budget],
        raise_on_failure: bool,
        spec: Optional[LocalizedSpec] = None,
    ) -> ExplainResponse:
        """The reference tier: dispatch with every probe routed through
        the plain ranker/former paths, overlays kept visible — the parity
        reference, immune to delta-session faults.  A success here never
        resets the breaker (it says nothing about delta-path health); a
        failure is terminal.  The budget carries over — retries spend the
        same allowance, so the ``timeout_seconds`` bound holds across the
        whole ladder."""
        try:
            with budget_scope(budget), delta_bypass():
                explanation = self._dispatch(request)
        except BudgetExceeded as exc:
            if raise_on_failure:
                raise
            return self._timed_out_response(request, start, exc)
        except Exception as exc:
            self.stats.bump("outcome.failed")
            if raise_on_failure:
                raise
            return ExplainResponse(
                request=request,
                elapsed_seconds=time.perf_counter() - start,
                error=_explain_error(exc, retryable=not isinstance(exc, ValueError)),
                outcome="failed",
            )
        return self._completed_response(
            request, start, budget, explanation, "full_rebuild", spec
        )

    def _completed_response(
        self,
        request: ExplainRequest,
        start: float,
        budget: Optional[Budget],
        explanation: Explanation,
        fallback: Optional[str],
        spec: Optional[LocalizedSpec] = None,
    ) -> ExplainResponse:
        """Type a dispatch that returned an explanation: ``ok``, or
        ``degraded`` when the budget tripped mid-search and the explainer
        salvaged best-so-far state."""
        outcome = "ok"
        reason = None
        if budget is not None and budget.tripped is not None:
            outcome = "degraded"
            reason = budget.tripped
        self.stats.bump(f"outcome.{outcome}")
        if fallback is not None:
            self.stats.bump(f"fallback.{fallback}")
        return ExplainResponse(
            request=request,
            explanation=explanation,
            elapsed_seconds=time.perf_counter() - start,
            outcome=outcome,
            degraded_reason=reason,
            fallback=fallback,
            # The scope's plan accounting: all-zero counts under the
            # reference tier (no delta sessions → no localized plans),
            # which is exactly what the fallback served.
            localized=spec.summary() if spec is not None else None,
        )

    def _timed_out_response(
        self, request: ExplainRequest, start: float, exc: BudgetExceeded
    ) -> ExplainResponse:
        self.stats.bump("outcome.timed_out")
        return ExplainResponse(
            request=request,
            elapsed_seconds=time.perf_counter() - start,
            error=ExplainError(
                kind="BudgetExceeded",
                message=f"budget exhausted ({exc.reason}) before any partial result",
                retryable=True,
            ),
            outcome="timed_out",
            degraded_reason=exc.reason,
        )

    def _dispatch(self, request: ExplainRequest) -> Explanation:
        """Resolve a request to the matching explainer call.  A fresh
        explainer per request keeps the SHAP estimators' seeded RNGs in
        the exact per-call state the facade methods produce, so service
        answers are bit-identical to per-call facade answers."""
        person, query = request.person, request.query
        team, seed = request.team, request.seed_member
        kind = request.kind
        if request.is_factual:
            factual = self.factual_explainer(team, seed)
            method = {
                "skills": factual.explain_skills,
                "query": factual.explain_query,
                "collaborations": factual.explain_collaborations,
            }[kind]
            return method(person, query, self.network)
        explainer = self.counterfactual_explainer(team, seed)
        if kind == "cf_query":
            return explainer.explain_query_augmentation(person, query, self.network)
        # Directional kinds: removal evicts current experts/members,
        # addition promotes the rest — same inference as the facade.
        engine = self.engine(team, seed)
        positive = engine.decide(person, frozenset(query), self.network)
        if kind == "cf_skills":
            if positive:
                return explainer.explain_skill_removal(person, query, self.network)
            return explainer.explain_skill_addition(person, query, self.network)
        if positive:
            return explainer.explain_link_removal(person, query, self.network)
        return explainer.explain_link_addition(person, query, self.network)

    # ------------------------------------------------------------------
    # bulk path
    # ------------------------------------------------------------------
    def explain_many(
        self,
        requests: Sequence[ExplainRequest],
        max_workers: Optional[int] = None,
        coalesce: bool = True,
        on_response: Optional[Callable[[int, ExplainResponse], None]] = None,
    ) -> List[ExplainResponse]:
        """Answer a batch of requests, sharded by decision target.

        Responses come back in request order.  ``max_workers=1`` is the
        deterministic single-thread mode (shards run sequentially in
        sorted order); ``None`` picks a worker count from the shard count
        and CPU count.  Per-request failures are captured in
        ``response.error`` — one bad request never takes down the batch.

        ``coalesce=True`` (the default) answers *identical* requests once
        per batch: service traffic repeats hot requests (many users, the
        same dashboard), and a request is a pure function of the frozen
        system state, so the duplicate's response is the first's —
        bit-identical by construction, marked ``coalesced`` for
        observability.

        Every request comes back as a typed response: per-request
        failures, budget expiries, and admission sheds land in
        ``response.outcome``/``response.error`` — one bad request never
        takes down the batch, and no shard can wedge it (every dispatch
        is bounded by its request budget).

        ``on_response`` — when given — is invoked exactly once per
        request, with ``(index, response)``, the moment that request's
        response is final, *from the shard's worker thread*.  This is
        the streaming hook the serving front end rides: partial results
        leave the process while other shards are still running.
        Callbacks must be cheap and thread-safe; a callback that raises
        is counted (``on_response_error``) and never fails the shard.
        """
        requests = list(requests)
        if not requests:
            return []
        shards = self._shard(requests)
        if max_workers is None:
            max_workers = min(len(shards), max(1, (os.cpu_count() or 2) - 1), 8)
        results: List[Optional[ExplainResponse]] = [None] * len(requests)

        def emit(index: int) -> None:
            if on_response is None:
                return
            try:
                on_response(index, results[index])
            except Exception:
                self.stats.bump("on_response_error")
                logger.warning("on_response callback failed", exc_info=True)

        def run_shard(shard: List[Tuple[int, ExplainRequest]]) -> None:
            try:
                self._warm_shard(shard)
            except _EXPECTED_WARM_FAILURES:
                # Warming is an optimization; whatever made it fail (bad
                # seed member, foreign state) will fail the individual
                # requests below, where it lands in a typed response
                # instead of taking down the batch.
                self.stats.bump("warm_failure.expected")
            except Exception:
                # Anything else is a real defect worth surfacing — but
                # still not worth failing requests that may succeed
                # unwarmed.  Log and count it; never swallow silently.
                self.stats.bump("warm_failure.unexpected")
                logger.warning("unexpected _warm_shard failure", exc_info=True)
            answered: Dict[ExplainRequest, ExplainResponse] = {}
            for i, request in shard:
                if coalesce:
                    prior = answered.get(request)
                    if prior is not None:
                        results[i] = ExplainResponse(
                            request=request,
                            explanation=prior.explanation,
                            elapsed_seconds=0.0,
                            error=prior.error,
                            coalesced=True,
                            outcome=prior.outcome,
                            degraded_reason=prior.degraded_reason,
                            fallback=prior.fallback,
                            base_version=prior.base_version,
                        )
                        emit(i)
                        continue
                if self.admission is not None:
                    shed = self.admission.try_acquire(request.session)
                    if shed is not None:
                        self.stats.bump("outcome.rejected")
                        results[i] = ExplainResponse(
                            request=request,
                            error=ExplainError(
                                kind="Rejected", message=shed, retryable=True
                            ),
                            outcome="rejected",
                            base_version=self.network.version,
                        )
                        emit(i)
                        continue
                try:
                    results[i] = self._answer_one(request)
                except Exception as exc:  # pragma: no cover - last resort
                    self.stats.bump("outcome.failed")
                    results[i] = ExplainResponse(
                        request=request,
                        error=_explain_error(exc, retryable=True),
                        outcome="failed",
                    )
                finally:
                    if self.admission is not None:
                        self.admission.release(request.session)
                # Sheds are not answers: an identical request later in
                # the batch deserves its own admission attempt.
                if coalesce and results[i].outcome != "rejected":
                    answered[request] = results[i]
                emit(i)

        if max_workers <= 1 or len(shards) == 1:
            # Deterministic sequential mode: the flush bus stays disarmed,
            # so every probe flush is an exact pass-through to its session.
            for shard in shards:
                run_shard(shard)
        else:
            # Concurrent shards probing the same (ranker, base version)
            # may now merge their probe flushes: each shard thread arms the
            # registry's flush bus for its own lifetime — the armed count
            # is thus a live concurrency signal (a flush only waits out the
            # batching window while another shard is actually running) —
            # and the merge activity this batch generated is surfaced
            # through the service stats.
            bus = getattr(self.registry, "flush_bus", None)
            before = bus.counters() if bus is not None else {}

            def run_shard_armed(shard: List[Tuple[int, ExplainRequest]]) -> None:
                with bus.armed() if bus is not None else nullcontext():
                    run_shard(shard)

            try:
                with ThreadPoolExecutor(max_workers=max_workers) as pool:
                    # list() propagates unexpected shard-level crashes.
                    list(pool.map(run_shard_armed, shards))
            finally:
                if bus is not None:
                    for name, value in bus.counters().items():
                        delta = value - before.get(name, 0)
                        if name == "max_fused":
                            # A high-water mark, not a rate: track the
                            # batch's own peak.
                            delta = value if delta > 0 else 0
                        if delta > 0:
                            self.stats.bump(f"bus.{name}", delta)
        return results  # type: ignore[return-value]

    def _shard(
        self, requests: Sequence[ExplainRequest]
    ) -> List[List[Tuple[int, ExplainRequest]]]:
        """Group (index, request) pairs by decision target, each group
        sorted by (query, person, kind) so same-query requests run
        back-to-back against the hottest caches.  Shard order is sorted
        too: the single-thread mode is fully deterministic in the request
        *set*, not just the request order."""
        groups: Dict[Tuple, List[Tuple[int, ExplainRequest]]] = {}
        for i, request in enumerate(requests):
            groups.setdefault(request.target_key, []).append((i, request))
        for shard in groups.values():
            shard.sort(
                key=lambda item: (
                    item[1].query,
                    item[1].person,
                    _KIND_ORDER[item[1].kind],
                    item[0],
                )
            )
        return [groups[key] for key in sorted(groups, key=repr)]

    def _warm_shard(self, shard: List[Tuple[int, ExplainRequest]]) -> None:
        """Pre-trace team base runs for a membership shard's distinct
        queries — the expensive half of the first membership probe, paid
        once per (query, seed) and kept warm in the registry-owned
        session for every later request and facade."""
        first = shard[0][1]
        if not first.team or self.former is None:
            return
        session = self.former._session_for(self.network)
        if session is None or not hasattr(session, "warm"):
            return
        for query in sorted({req.query_key for _, req in shard}, key=sorted):
            session.warm(query, first.seed_member)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def set_full_rebuild(self, flag: bool) -> None:
        """Toggle the from-scratch escape hatch across the whole stack and
        drop this network's engines/sessions from the registry — an
        engine-off measurement must not be answered from a delta memo."""
        self.ranker.full_rebuild = flag
        if self.former is not None:
            self.former.full_rebuild = flag
        self.registry.drop_network(self.network)

    def __repr__(self) -> str:
        return (
            f"ExplanationService(ranker={self.ranker.name}, "
            f"n_people={self.network.n_people}, k={self.k}, "
            f"registry={self.registry!r})"
        )
