"""Deterministic fault injection for the resilience runtime.

The probe layer exposes named :func:`~repro.runtime.fault_point` hooks
(``"session.scores"`` at every batched/single delta-session flush,
``"team.form"`` at every delta team formation).  Installing a
:class:`FaultInjector` — via :func:`~repro.runtime.fault_injection` —
makes those hooks misbehave on a deterministic subset of probe states:

* **session errors** (:class:`InjectedSessionError`) — the delta session
  raises mid-flush, exercising the service's full-rebuild retry tier;
* **stale base versions** (:class:`InjectedStaleBaseError`) — models a
  session answering for a base the network has since drifted from;
* **slow probes** — the flush stalls for ``slow_probe_seconds``,
  exercising deadline expiry and partial-result salvage;
* **memo evictions** — the engine's decision/score memos are dropped,
  exercising correctness (not liveness): everything recomputes.

Determinism: each (site, probe-state key, effect) rolls an independent
uniform draw derived from a BLAKE2 digest of ``seed | site | effect |
repr(key)``.  The draw depends only on the probe state — never on
arrival order or thread interleaving — so a seeded chaos run faults the
same states every time, under any ``max_workers``.

Injected faults are *retryable by construction*: the fallback tier runs
with the delta paths bypassed, where the session fault sites are never
reached, so a chaos run's completed explanations remain parity-exact —
the invariant the chaos suite asserts.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional


class InjectedFault(RuntimeError):
    """Base class for injector-raised faults (always transient)."""


class InjectedSessionError(InjectedFault):
    """A delta session blowing up mid-flush."""


class InjectedStaleBaseError(InjectedFault):
    """A delta session answering for a drifted base version."""


@dataclass(frozen=True)
class FaultPlan:
    """Per-effect injection rates (probabilities in [0, 1])."""

    session_error_rate: float = 0.0
    stale_base_rate: float = 0.0
    slow_probe_rate: float = 0.0
    slow_probe_seconds: float = 0.05
    memo_evict_rate: float = 0.0
    team_error_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "session_error_rate",
            "stale_base_rate",
            "slow_probe_rate",
            "memo_evict_rate",
            "team_error_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")


def _roll(seed: int, site: str, effect: str, key: tuple) -> float:
    """Deterministic uniform draw in [0, 1) for one (state, effect)."""
    digest = hashlib.blake2b(
        f"{seed}|{site}|{effect}|{key!r}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64


class FaultInjector:
    """Seeded injector behind the probe layer's fault points.

    ``fired`` counts applied effects per ``"site/effect"`` label — the
    chaos suite and the bench's resilience row read it to prove faults
    actually happened (a chaos test that injected nothing proves
    nothing).
    """

    def __init__(self, plan: FaultPlan, seed: int = 0) -> None:
        self.plan = plan
        self.seed = seed
        self.fired: Dict[str, int] = {}
        self._lock = threading.Lock()

    def _count(self, site: str, effect: str) -> None:
        with self._lock:
            label = f"{site}/{effect}"
            self.fired[label] = self.fired.get(label, 0) + 1

    def total_fired(self) -> int:
        with self._lock:
            return sum(self.fired.values())

    def fire(self, site: str, key: tuple, engine=None) -> None:
        """Apply this injector's effects to one probe state.

        Effects are rolled independently; eviction and stalls apply
        before a raise so a state can be both slowed and failed.
        """
        plan = self.plan
        if plan.memo_evict_rate and engine is not None:
            if _roll(self.seed, site, "evict", key) < plan.memo_evict_rate:
                self._count(site, "evict")
                self._evict(engine)
        if plan.slow_probe_rate:
            if _roll(self.seed, site, "slow", key) < plan.slow_probe_rate:
                self._count(site, "slow")
                time.sleep(plan.slow_probe_seconds)
        if site == "team.form":
            if plan.team_error_rate and (
                _roll(self.seed, site, "error", key) < plan.team_error_rate
            ):
                self._count(site, "error")
                raise InjectedSessionError(f"injected team-formation fault at {key!r}")
            return
        if plan.session_error_rate:
            if _roll(self.seed, site, "error", key) < plan.session_error_rate:
                self._count(site, "error")
                raise InjectedSessionError(f"injected session fault at {key!r}")
        if plan.stale_base_rate:
            if _roll(self.seed, site, "stale", key) < plan.stale_base_rate:
                self._count(site, "stale")
                raise InjectedStaleBaseError(f"injected stale base at {key!r}")

    @staticmethod
    def _evict(engine) -> None:
        """Drop the engine's memos (and a team session's traced runs).

        A pure correctness stressor: memos only cache deterministic
        results, so eviction can change timings and probe counts but
        never answers.
        """
        for attr in ("_memo", "_score_memo", "_run_cache"):
            cache = getattr(engine, attr, None)
            if cache is not None:
                cache.clear()
