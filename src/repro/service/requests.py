"""Typed requests and responses for the explanation service.

The paper frames ExES as an interactive tool answering many explanation
requests against one deployed system (Figure 2).  A request names *what*
to explain — one of the six explanation kinds over either decision family
(relevance status C for expert search, membership status M for team
formation, §3.5) — and the service resolves it to the right explainer,
engine, and probe sessions.

Kinds:

===================  =============================================
``skills``           factual SHAP over neighborhood skill assignments
``query``            factual SHAP over the query keywords
``collaborations``   factual SHAP over influential collaborations
``cf_skills``        counterfactual skill removal/addition (direction
                     inferred from the subject's current status)
``cf_query``         counterfactual query augmentation
``cf_collaborations`` counterfactual link removal/addition (direction
                     inferred from the subject's current status)
===================  =============================================

``team=True`` (optionally with ``seed_member``) switches the decision
being explained from relevance to team membership; every kind works for
either family, exactly like the ``ExES`` facade methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple, Union

from repro.explain.explanation import CounterfactualExplanation, FactualExplanation

FACTUAL_KINDS: Tuple[str, ...] = ("skills", "query", "collaborations")
COUNTERFACTUAL_KINDS: Tuple[str, ...] = ("cf_skills", "cf_query", "cf_collaborations")
EXPLANATION_KINDS: Tuple[str, ...] = FACTUAL_KINDS + COUNTERFACTUAL_KINDS

#: The typed outcome taxonomy — every response lands in exactly one:
#:
#: ``ok``         complete explanation (possibly via full-rebuild fallback)
#: ``degraded``   partial explanation; the budget expired mid-search and
#:                best-so-far state was salvaged (``degraded_reason`` says
#:                whether the wall clock or the probe allowance tripped)
#: ``timed_out``  the budget expired before any partial state existed
#: ``rejected``   load-shed by admission control before any work ran
#: ``failed``     an exception survived the degradation ladder
OUTCOMES: Tuple[str, ...] = ("ok", "degraded", "timed_out", "rejected", "failed")

#: Which ``ExES`` facade method answers each kind — the per-call
#: reference the parity gates (tests + bench) compare the service
#: against, defined once so both gates drive the same methods.
FACADE_METHODS = {
    "skills": "explain_skills",
    "query": "explain_query",
    "collaborations": "explain_collaborations",
    "cf_skills": "counterfactual_skills",
    "cf_query": "counterfactual_query",
    "cf_collaborations": "counterfactual_collaborations",
}


@dataclass(frozen=True)
class ExplainRequest:
    """One explanation task: a kind, a subject, a query, and the decision
    family (relevance by default, membership with ``team=True``)."""

    kind: str
    person: int
    query: Tuple[str, ...]
    team: bool = False
    seed_member: Optional[int] = None
    tag: str = ""  # free-form caller label (workload bookkeeping)
    # Per-request execution budget, enforced cooperatively at probe-flush
    # granularity (None = unlimited, the default — and the deterministic
    # parity mode, since no budget means no code path changes).
    timeout_seconds: Optional[float] = None
    probe_limit: Optional[int] = None
    # Caller identity for admission control's per-session fair share.
    session: str = ""
    # Localized probe plans: probes touch only the flips' k-hop cone —
    # certified-exact splices where the ranker's math allows, the
    # bounded-error forward-push PageRank kernel (l1 error <= epsilon)
    # where it doesn't, exact global fallback when the cone exceeds the
    # size ceiling.  ``epsilon`` tunes the sampled mode (None = the
    # runtime default); it requires ``localized=True``.
    localized: bool = False
    epsilon: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in EXPLANATION_KINDS:
            raise ValueError(
                f"unknown explanation kind {self.kind!r}; "
                f"expected one of {EXPLANATION_KINDS}"
            )
        if self.person < 0:
            raise ValueError(f"person must be a person id, got {self.person}")
        # Canonicalize the query: sorted, deduplicated tuple.  Queries are
        # order-free sets everywhere downstream (``as_query``), so two
        # requests naming the same terms in different orders (or as a
        # set) must compare equal — coalescing, shard grouping, and the
        # deterministic single-thread ordering all key on it.
        object.__setattr__(self, "query", tuple(sorted(set(self.query))))
        if not self.team and self.seed_member is not None:
            raise ValueError("seed_member only applies to team requests")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )
        if self.probe_limit is not None and self.probe_limit < 1:
            raise ValueError(f"probe_limit must be >= 1, got {self.probe_limit}")
        if self.epsilon is not None:
            if not self.localized:
                raise ValueError("epsilon only applies to localized requests")
            if self.epsilon <= 0:
                raise ValueError(f"epsilon must be > 0, got {self.epsilon}")

    @property
    def is_factual(self) -> bool:
        return self.kind in FACTUAL_KINDS

    @property
    def query_key(self) -> frozenset:
        """The query as the frozenset the probe layer keys on."""
        return frozenset(self.query)

    @property
    def target_key(self) -> Tuple:
        """Which decision target (and therefore which probe engine) this
        request resolves against."""
        if self.team:
            return ("membership", self.seed_member)
        return ("relevance",)


Explanation = Union[FactualExplanation, CounterfactualExplanation]


@dataclass(frozen=True)
class ExplainError:
    """A structured failure attached to a response (never raised).

    ``kind`` is the exception class name (or a service-assigned tag like
    ``"BudgetExceeded"`` / ``"Rejected"``); ``retryable`` says whether the
    same request could plausibly succeed on resubmission (transient
    session/infrastructure faults yes, request validation no);
    ``traceback`` holds a truncated formatted traceback for debugging —
    excluded from equality so responses stay comparable across runs.
    """

    kind: str
    message: str
    retryable: bool = False
    traceback: str = field(default="", compare=False)

    def __str__(self) -> str:
        return f"{self.kind}: {self.message}"


@dataclass(frozen=True)
class ExplainResponse:
    """The outcome of one request: the explanation, or the error that
    prevented it (``explain_many`` never lets one bad request take down
    the batch).  ``coalesced`` marks a response served from an identical
    request answered earlier in the same batch.

    ``outcome`` is one of :data:`OUTCOMES`; ``degraded_reason`` carries
    the budget trip for partial results; ``fallback`` names the ladder
    tier that rescued the request (``"full_rebuild"``) when the delta
    path failed or its circuit was open.

    ``base_version`` stamps which network base version answered the
    request (None when the service predates live commits or the response
    was built outside a service).  The service's commit gate guarantees a
    response is computed against exactly one version — never a mix.

    ``localized`` carries the localized-scope summary for requests that
    asked for it: ``{"epsilon", "exact", "sampled", "global",
    "max_residual_bound"}`` — per-mode plan counts plus the worst
    certified l1 bound any sampled probe reported (0.0 when every probe
    ran exact).  None for global-mode requests.
    """

    request: ExplainRequest
    explanation: Optional[Explanation] = None
    elapsed_seconds: float = 0.0
    error: Optional[ExplainError] = None
    coalesced: bool = False
    outcome: str = "ok"
    degraded_reason: Optional[str] = None
    fallback: Optional[str] = None
    base_version: Optional[int] = None
    localized: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def degraded(self) -> bool:
        return self.outcome == "degraded"

    def unwrap(self) -> Explanation:
        """The explanation, raising if the request failed."""
        if self.explanation is None:
            raise RuntimeError(
                f"request {self.request.kind!r} for person "
                f"{self.request.person} failed ({self.outcome}): {self.error}"
            )
        return self.explanation


def explanation_signature(request: ExplainRequest, explanation: Explanation) -> Tuple:
    """A bit-exact digest of one explanation's content.

    The single definition of the service parity contract — the service
    tests, the fuzz suite's service axis, and the benchmark gate all
    compare per-call facade, deterministic ``explain_many``, and sharded
    ``explain_many`` responses through this digest, so they can never
    drift onto weaker notions of "identical".
    """
    head = (request.kind, request.person, request.team, request.seed_member)
    attributions = getattr(explanation, "attributions", None)
    if attributions is not None:  # factual
        return head + (
            tuple((repr(a.feature), a.value) for a in attributions),
            explanation.base_value,
            explanation.full_value,
        )
    return head + (  # counterfactual
        explanation.initial_decision,
        tuple(sorted(str(c.perturbations) for c in explanation.counterfactuals)),
    )


def make_requests(
    kinds: Iterable[str],
    person: int,
    query: Iterable[str],
    team: bool = False,
    seed_member: Optional[int] = None,
    tag: str = "",
    timeout_seconds: Optional[float] = None,
    probe_limit: Optional[int] = None,
    session: str = "",
    localized: bool = False,
    epsilon: Optional[float] = None,
) -> Tuple[ExplainRequest, ...]:
    """One request per kind for a single subject — the common workload
    building block."""
    query = tuple(query)
    return tuple(
        ExplainRequest(
            kind=kind, person=person, query=query,
            team=team, seed_member=seed_member, tag=tag,
            timeout_seconds=timeout_seconds, probe_limit=probe_limit,
            session=session, localized=localized, epsilon=epsilon,
        )
        for kind in kinds
    )
