"""Service-side resilience policies: admission, breakers, stats.

These are the *policy* objects of the resilience runtime; the
*mechanism* (cooperative budgets, the delta-bypass reference routing,
fault hooks) lives in :mod:`repro.runtime` so the probe layer can import
it without a cycle.  :class:`ExplanationService` composes them per
:class:`ResilienceConfig`:

* :class:`AdmissionControl` — a bounded in-flight counter with a
  per-session fair share.  Over-limit work is *load-shed*: the service
  answers a typed ``rejected`` response immediately, it never raises and
  never queues unboundedly.
* :class:`CircuitBreaker` — per-key (decision family, base identity and
  version) failure tracking.  ``failure_threshold`` consecutive delta
  failures open the circuit: requests route straight to the full-rebuild
  reference tier (correct, slower) without re-paying the failing delta
  path.  After ``cooldown_seconds`` the circuit goes half-open and one
  trial request may re-enter the delta path; success closes it.
* :class:`ServiceStats` — thread-safe outcome/event counters for
  observability (the bench's resilience row and the chaos suite read
  these).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for the service's resilience runtime.

    The defaults are the *deterministic* configuration: no admission
    limit, retries and breakers armed but inert without failures — so a
    default service is bit-identical to one with no runtime at all.
    """

    #: Max concurrently dispatched requests; None disables admission
    #: control entirely (every request admitted).
    max_in_flight: Optional[int] = None
    #: Fraction of ``max_in_flight`` one session may occupy (fair share).
    session_share: float = 0.5
    #: Retry a failed delta dispatch once on the full-rebuild path.
    full_rebuild_retry: bool = True
    #: Consecutive delta failures that open a circuit.
    breaker_failure_threshold: int = 5
    #: Seconds an open circuit waits before allowing a half-open trial.
    breaker_cooldown_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}"
            )
        if not 0.0 < self.session_share <= 1.0:
            raise ValueError(
                f"session_share must be in (0, 1], got {self.session_share}"
            )
        if self.breaker_failure_threshold < 1:
            raise ValueError(
                "breaker_failure_threshold must be >= 1, got "
                f"{self.breaker_failure_threshold}"
            )


class AdmissionControl:
    """Bounded in-flight admission with per-session fair share.

    ``try_acquire`` never blocks: it admits (returning None) or names the
    shed reason (``"load_shed:max_in_flight"`` /
    ``"load_shed:session_share"``) so the service can answer a typed
    ``rejected`` response and move on.
    """

    def __init__(self, max_in_flight: int, session_share: float = 0.5) -> None:
        self.max_in_flight = max_in_flight
        self.session_cap = max(1, int(max_in_flight * session_share))
        self._lock = threading.Lock()
        self._in_flight = 0
        self._per_session: Dict[str, int] = {}

    def try_acquire(self, session: str = "") -> Optional[str]:
        with self._lock:
            if self._in_flight >= self.max_in_flight:
                return "load_shed:max_in_flight"
            if self._per_session.get(session, 0) >= self.session_cap:
                return "load_shed:session_share"
            self._in_flight += 1
            self._per_session[session] = self._per_session.get(session, 0) + 1
            return None

    def release(self, session: str = "") -> None:
        with self._lock:
            self._in_flight -= 1
            count = self._per_session.get(session, 0) - 1
            if count <= 0:
                self._per_session.pop(session, None)
            else:
                self._per_session[session] = count

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight


class CircuitBreaker:
    """Per-key consecutive-failure breaker with half-open cooldown probes.

    Keys are opaque tuples — the service keys on (decision family, base
    network identity, base version), so one misbehaving (ranker, base)
    pair cannot poison routing for the others.  ``clock`` is injectable
    for deterministic tests.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_seconds: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._lock = threading.Lock()
        # key -> [consecutive_failures, opened_at or None, half_open_trial]
        self._state: Dict[Tuple, list] = {}
        self.opened = 0  # total circuit-open transitions (observability)

    def allows_delta(self, key: Tuple) -> bool:
        """May this request take the delta path right now?

        Closed → yes.  Open → no, until ``cooldown_seconds`` elapse; then
        half-open: exactly one caller gets a trial pass (its success
        closes the circuit, its failure re-opens and restarts cooldown).
        """
        with self._lock:
            state = self._state.get(key)
            if state is None or state[1] is None:
                return True
            if self._clock() - state[1] < self.cooldown_seconds:
                return False
            if state[2]:  # a trial is already in flight
                return False
            state[2] = True
            return True

    def record_failure(self, key: Tuple) -> None:
        with self._lock:
            state = self._state.setdefault(key, [0, None, False])
            state[0] += 1
            state[2] = False
            if state[1] is None and state[0] >= self.failure_threshold:
                state[1] = self._clock()
                self.opened += 1
            elif state[1] is not None:
                # failed half-open trial: re-open and restart the cooldown
                state[1] = self._clock()

    def record_success(self, key: Tuple) -> None:
        with self._lock:
            self._state.pop(key, None)

    def trial_inconclusive(self, key: Tuple) -> None:
        """A half-open trial ended without evidence about session health
        (budget expiry, request validation error): keep the circuit open
        but free the trial slot for the next caller."""
        with self._lock:
            state = self._state.get(key)
            if state is not None:
                state[2] = False

    def is_open(self, key: Tuple) -> bool:
        with self._lock:
            state = self._state.get(key)
            return state is not None and state[1] is not None


class ServiceStats:
    """Thread-safe event counters for the service's resilience runtime."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}

    def bump(self, event: str, n: int = 1) -> None:
        with self._lock:
            self._counts[event] = self._counts.get(event, 0) + n

    def get(self, event: str) -> int:
        with self._lock:
            return self._counts.get(event, 0)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)
