"""The explanation service layer: typed requests, a shared engine
registry, and a concurrent ``explain_many`` front door.

* :class:`ExplainRequest` / :class:`ExplainResponse` — one explanation
  task (six kinds × relevance/membership) and its outcome.
* :class:`EngineRegistry` — bounded LRU ownership of probe engines and
  delta sessions, shared across targets, queries, and facade instances.
* :class:`ExplanationService` — the long-lived service (paper Figure 2):
  single requests through :meth:`~ExplanationService.explain`, batches
  through :meth:`~ExplanationService.explain_many` (target-sharded across
  a thread pool, deterministic at ``max_workers=1``).
"""

from repro.service.registry import EngineRegistry, default_registry
from repro.service.requests import (
    COUNTERFACTUAL_KINDS,
    EXPLANATION_KINDS,
    FACTUAL_KINDS,
    FACADE_METHODS,
    ExplainRequest,
    ExplainResponse,
    explanation_signature,
    make_requests,
)
from repro.service.service import ExplanationService

__all__ = [
    "COUNTERFACTUAL_KINDS",
    "EXPLANATION_KINDS",
    "FACTUAL_KINDS",
    "EngineRegistry",
    "FACADE_METHODS",
    "ExplainRequest",
    "ExplainResponse",
    "ExplanationService",
    "default_registry",
    "explanation_signature",
    "make_requests",
]
