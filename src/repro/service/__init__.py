"""The explanation service layer: typed requests, a shared engine
registry, and a concurrent ``explain_many`` front door.

* :class:`ExplainRequest` / :class:`ExplainResponse` — one explanation
  task (six kinds × relevance/membership) and its outcome.
* :class:`EngineRegistry` — bounded LRU ownership of probe engines and
  delta sessions, shared across targets, queries, and facade instances.
* :class:`ExplanationService` — the long-lived service (paper Figure 2):
  single requests through :meth:`~ExplanationService.explain`, batches
  through :meth:`~ExplanationService.explain_many` (target-sharded across
  a thread pool, deterministic at ``max_workers=1``).
* Resilience runtime — per-request :class:`~repro.runtime.Budget`\\ s,
  :class:`AdmissionControl` load-shedding, a full-rebuild degradation
  ladder with :class:`CircuitBreaker`\\ s, and the deterministic
  :class:`FaultInjector` the chaos suite drives.
"""

from repro.runtime import (
    Budget,
    BudgetExceeded,
    Deadline,
    budget_scope,
    delta_bypass,
    fault_injection,
    install_fault_injector,
)
from repro.service.faults import (
    FaultInjector,
    FaultPlan,
    InjectedFault,
    InjectedSessionError,
    InjectedStaleBaseError,
)
from repro.service.registry import EngineRegistry, FlushBus, default_registry
from repro.service.requests import (
    COUNTERFACTUAL_KINDS,
    EXPLANATION_KINDS,
    FACTUAL_KINDS,
    FACADE_METHODS,
    OUTCOMES,
    ExplainError,
    ExplainRequest,
    ExplainResponse,
    explanation_signature,
    make_requests,
)
from repro.service.runtime import (
    AdmissionControl,
    CircuitBreaker,
    ResilienceConfig,
    ServiceStats,
)
from repro.service.service import ExplanationService

__all__ = [
    "COUNTERFACTUAL_KINDS",
    "EXPLANATION_KINDS",
    "FACTUAL_KINDS",
    "OUTCOMES",
    "AdmissionControl",
    "Budget",
    "BudgetExceeded",
    "CircuitBreaker",
    "Deadline",
    "EngineRegistry",
    "FACADE_METHODS",
    "ExplainError",
    "ExplainRequest",
    "ExplainResponse",
    "ExplanationService",
    "FaultInjector",
    "FaultPlan",
    "FlushBus",
    "InjectedFault",
    "InjectedSessionError",
    "InjectedStaleBaseError",
    "ResilienceConfig",
    "ServiceStats",
    "budget_scope",
    "default_registry",
    "delta_bypass",
    "explanation_signature",
    "fault_injection",
    "install_fault_injector",
    "make_requests",
]
