"""Warm-registry spill/restore: serialize delta-session caches and score
memos to disk so a restarted ``python -m repro serve`` worker answers its
first request hot instead of paying the cold-start rebuild.

File format (``repro-registry-spill/1``, a single pickle)::

    {
        "format":  "repro-registry-spill/1",
        "digest":  <network.state_digest()>,   # structural binding key
        "version": <network.version at spill>, # informational only
        "backend": <type(get_backend()).__name__>,
        "sessions":      {label: {cache_attr: [(key, value), ...]}},
        "team_sessions": {label: {cache_attr: [(key, value), ...]}},
        "score_memos":   {label: [((query, flips), vector), ...]},
    }

``label`` is ``"{index}:{TypeName}"`` over the caller-supplied ``systems``
sequence — restore must be handed the *same systems in the same order* it
was spilled with (the deployment rebuilds its stack deterministically from
the dataset seed, so positional identity is stable across processes).

Binding is structural, not positional, where it matters: restore verifies
the live network's :meth:`~repro.graph.network.CollaborationNetwork
.state_digest` and the active numeric backend against the spilled ones and
restores *nothing* on a mismatch — a changed dataset or kernel family
starts cold rather than hot-with-wrong-answers.  Version counters are
deliberately not compared (they restart at 0 in a new process); spilled
score-memo entries are re-stamped with the live network's version on load.

The payload is **pickle**: only load spill files your own deployment
wrote.  This mirrors every other warm-cache-on-disk design (pickles can
execute code on load) and is why the serve layer only reads the path the
operator passed on its own command line.
"""

from __future__ import annotations

import os
import pickle
from typing import Dict, Sequence

from repro.backend import get_backend
from repro.graph.network import CollaborationNetwork

SPILL_FORMAT = "repro-registry-spill/1"


def _label(index: int, system) -> str:
    return f"{index}:{type(system).__name__}"


def spill_registry(
    path, registry, network: CollaborationNetwork, systems: Sequence
) -> Dict[str, int]:
    """Write the warm state bound to ``(network, systems)`` to ``path``.

    Returns ``{"sessions": n, "team_sessions": n, "memo_entries": n}``
    counts of what was captured.  Systems without a live session (never
    probed, or LRU-evicted) are simply absent from the file.
    """
    payload = {
        "format": SPILL_FORMAT,
        "digest": network.state_digest(),
        "version": network.version,
        "backend": type(get_backend()).__name__,
        "sessions": {},
        "team_sessions": {},
        "score_memos": {},
    }
    stats = {"sessions": 0, "team_sessions": 0, "memo_entries": 0}
    with registry._lock:
        for i, system in enumerate(systems):
            if system is None:
                continue
            key = (id(system), id(network), network.version)
            label = _label(i, system)
            session = registry._search_sessions.get(key)
            if session is not None:
                payload["sessions"][label] = session.warm_state()
                stats["sessions"] += 1
            tsession = registry._team_sessions.get(key)
            if tsession is not None:
                payload["team_sessions"][label] = tsession.warm_state()
                stats["team_sessions"] += 1
            hit = registry._score_memos.get(key)
            if hit is not None and hit[1] is network:
                entries = [
                    ((query, flips), vector)
                    for (query, flips, version), vector in hit[2].items()
                    if version == network.version
                ]
                payload["score_memos"][label] = entries
                stats["memo_entries"] += len(entries)
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as f:
        pickle.dump(payload, f, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)
    return stats


def restore_registry(
    path, registry, network: CollaborationNetwork, systems: Sequence
) -> Dict[str, int]:
    """Load a spill file into ``registry``, rebinding the warm state to
    the live ``network``/``systems``.

    Sessions are rebuilt through the systems' own ``delta_session``
    factories (registry-owned, current version) and refilled from the
    spilled cache snapshots; score-memo entries are re-stamped with the
    live network version.  Returns restore counts, with a ``"skipped"``
    reason (and zero counts) when the file does not bind: missing file,
    wrong format, structural digest mismatch, or a different numeric
    backend (cache values embed kernel-specific rounding)."""
    stats = {"sessions": 0, "team_sessions": 0, "memo_entries": 0}
    if not os.path.exists(path):
        stats["skipped"] = "missing"
        return stats
    with open(path, "rb") as f:
        payload = pickle.load(f)
    if not isinstance(payload, dict) or payload.get("format") != SPILL_FORMAT:
        stats["skipped"] = "format"
        return stats
    if payload.get("digest") != network.state_digest():
        stats["skipped"] = "digest"
        return stats
    if payload.get("backend") != type(get_backend()).__name__:
        stats["skipped"] = "backend"
        return stats
    with registry._lock:
        for i, system in enumerate(systems):
            if system is None:
                continue
            label = _label(i, system)
            state = payload["sessions"].get(label)
            if state is not None:
                session = registry.search_session(system, network)
                if session is not None:
                    session.load_warm_state(state)
                    stats["sessions"] += 1
            state = payload["team_sessions"].get(label)
            if state is not None:
                tsession = registry.team_session(system, network)
                if tsession is not None:
                    tsession.load_warm_state(state)
                    stats["team_sessions"] += 1
            entries = payload["score_memos"].get(label)
            if entries:
                memo = registry._restored_score_memo(system, network)
                for (query, flips), vector in entries:
                    memo.put((query, flips, network.version), vector)
                stats["memo_entries"] += len(entries)
        registry.restored_sessions += stats["sessions"] + stats["team_sessions"]
        registry.restored_memo_entries += stats["memo_entries"]
    return stats
