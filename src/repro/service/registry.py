"""The shared engine registry: bounded, cross-facade ownership of every
probe cache in the stack.

Before the service layer, each ``ExES`` facade kept its own unbounded
``_engines`` dict — one :class:`~repro.search.engine.ProbeEngine` per
``(team, seed_member)`` target, leaked for the facade's lifetime, invisible
to every other facade — and each ranker/former cached exactly one delta
session in a private slot, thrashing whenever two base networks alternated.

:class:`EngineRegistry` inverts that ownership.  It owns

* **probe engines**, keyed ``(base network, base version, target)`` —
  so a facade explaining the same target twice, or *two facades* wrapping
  the same deployed system, share one engine and its two-level probe memo;
* **search delta sessions**, keyed ``(ranker, base, base version)`` — the
  per-flip-set patch caches, solved-subproblem memos, and cached base
  forwards inside a session outlive any single engine;
* **team delta sessions**, keyed ``(former, base, base version)`` — traced
  base formation runs (the expensive part of membership probing) stay warm
  across targets, queries, and facades;
* **shared score memos**, keyed ``(ranker, base, base version)`` — the
  score-vector level of the probe memo is person- *and* target-
  independent, so the registry injects one memo into every engine over
  the same ranker+base: a forward computed under the relevance target
  serves membership probes of the same ``(query, flips)`` state, across
  every team seed.

All four stores are bounded LRUs (:class:`~repro.search.engine._LruCache`)
— at capacity the least-recently-used entry is dropped, so a service
explaining against many networks or seed members can never grow without
bound (the defect the ``ExES._engines`` dict had).

Keys carry ``id()``s of live objects, so every hit is verified by identity
(``engine.base is network``, ``session.valid_for(base)``) before being
served: a recycled ``id`` after garbage collection can alias a key but can
never alias the identity check, it just forces a rebuild.

The registry is thread-safe (one re-entrant lock around get-or-create);
the engines it hands out are **not** — ``ExplanationService.explain_many``
keeps each engine on a single shard thread, while the sessions below them
are safely shared through :class:`_LruCache`'s internal locking.
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple

from repro.explain.targets import MembershipTarget, RelevanceTarget
from repro.graph.network import CollaborationNetwork
from repro.graph.overlay import NetworkOverlay
from repro.search.engine import _MAX_SCORE_MEMO, ProbeEngine, _LruCache

#: Default bound on engines / sessions kept per registry.  Engines hold
#: score-vector memos (n floats each) so this is a real memory knob.
DEFAULT_CAPACITY = 32


def _target_key(target) -> Tuple:
    """A hashable identity for the decision target: which system is being
    probed and under which decision parameters."""
    if isinstance(target, RelevanceTarget):
        return ("relevance", id(target.system), target.k)
    if isinstance(target, MembershipTarget):
        return ("membership", id(target.former), target.seed_member)
    return ("target", type(target).__name__, id(target))


class EngineRegistry:
    """Bounded LRU ownership of probe engines and delta sessions."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._engines = _LruCache(capacity)
        self._search_sessions = _LruCache(capacity)
        self._team_sessions = _LruCache(capacity)
        # (ranker, base, version) -> the shared score-vector memo injected
        # into every engine probing that pair.  Score vectors are person-
        # AND target-independent, so a vector computed under the relevance
        # target serves a membership probe of the same (query, flips)
        # state — and vice versa — across every team seed.
        self._score_memos = _LruCache(capacity)
        self._lock = threading.RLock()
        self.engine_builds = 0  # observability: cache-miss constructions
        self.session_builds = 0

    # ------------------------------------------------------------------
    # engines
    # ------------------------------------------------------------------
    def engine(self, target, network: CollaborationNetwork) -> ProbeEngine:
        """The shared probe engine for ``(target, network)``, built on the
        first request and reused — across explainers, requests, and facade
        instances — until LRU-evicted or the network's version drifts."""
        if isinstance(network, NetworkOverlay):
            # Engines bind to the overlay's base (probe flip sets are keyed
            # against it); key the same way or every overlay request would
            # look like a distinct network.
            network = network.base
        key = (id(network), network.version, _target_key(target))
        with self._lock:
            engine = self._engines.get(key)
            if (
                engine is None
                or engine.base is not network
                or engine.base_version != network.version
            ):
                engine = ProbeEngine(
                    target, network,
                    score_memo=self._score_memo_for(target, network),
                )
                self._engines.put(key, engine)
                self.engine_builds += 1
            return engine

    def _score_memo_for(self, target, network: CollaborationNetwork):
        """The shared (ranker, base, version) score memo — None when the
        target exposes no ranker (engines then keep a private memo).  The
        stored (ranker, network) references double as the identity check:
        a recycled ``id`` after garbage collection may alias the key but
        never the ``is`` comparison, so a stale memo is replaced instead
        of served."""
        ranker = getattr(target, "ranker", None)
        if ranker is None:
            return None
        key = (id(ranker), id(network), network.version)
        hit = self._score_memos.get(key)
        if hit is not None:
            stored_ranker, stored_network, memo = hit
            if stored_ranker is ranker and stored_network is network:
                return memo
        memo = _LruCache(_MAX_SCORE_MEMO)
        self._score_memos.put(key, (ranker, network, memo))
        return memo

    def drop_network(self, network: CollaborationNetwork) -> int:
        """Evict every engine and session bound to ``network`` (any
        version).  ``ExES.set_full_rebuild`` routes through here: an
        engine-off measurement must not be answered from a delta-path
        memo populated while the engine was on."""
        dropped = 0
        with self._lock:
            for key in self._engines.keys():  # (net id, version, target)
                if key[0] == id(network):
                    self._engines.pop(key)
                    dropped += 1
            for store in (
                self._search_sessions, self._team_sessions, self._score_memos
            ):
                for key in store.keys():  # (system id, base id, version)
                    if key[1] == id(network):
                        store.pop(key)
                        dropped += 1
        return dropped

    # ------------------------------------------------------------------
    # sessions (the ranker/former ``_session_store`` hook)
    # ------------------------------------------------------------------
    def search_session(self, ranker, base: CollaborationNetwork):
        """The ranker's delta session over ``base`` — registry-owned, so
        its patch caches are shared by every engine probing this pair."""
        return self._session(self._search_sessions, ranker, base)

    def team_session(self, former, base: CollaborationNetwork):
        """The former's team delta session over ``base`` — registry-owned,
        so traced base runs warm-start across engines and facades."""
        return self._session(self._team_sessions, former, base)

    def _session(self, store: _LruCache, system, base: CollaborationNetwork):
        key = (id(system), id(base), base.version)
        with self._lock:
            session = store.get(key)
            if session is None or not session.valid_for(base):
                session = system.delta_session(base)
                store.put(key, session)
                self.session_builds += 1
            return session

    def install(self, *systems) -> "EngineRegistry":
        """Point each system's ``_session_store`` hook at this registry
        (rankers and formers alike; ``None`` entries are skipped)."""
        for system in systems:
            if system is not None:
                system._session_store = self
        return self

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def n_engines(self) -> int:
        return len(self._engines)

    @property
    def n_sessions(self) -> int:
        return len(self._search_sessions) + len(self._team_sessions)

    def clear(self) -> None:
        with self._lock:
            self._engines.clear()
            self._search_sessions.clear()
            self._team_sessions.clear()
            self._score_memos.clear()

    def __repr__(self) -> str:
        return (
            f"EngineRegistry(engines={self.n_engines}, "
            f"sessions={self.n_sessions}, "
            f"capacity={self._engines.capacity})"
        )


_default_registry: Optional[EngineRegistry] = None
_default_lock = threading.Lock()


def default_registry() -> EngineRegistry:
    """The process-wide shared registry: facades built without an explicit
    registry all land here, so engines and sessions are reused across
    facade instances — the Figure-2 deployment shape, where one long-lived
    service answers every explanation request."""
    global _default_registry
    with _default_lock:
        if _default_registry is None:
            _default_registry = EngineRegistry()
        return _default_registry
