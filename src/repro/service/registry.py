"""The shared engine registry: bounded, cross-facade ownership of every
probe cache in the stack.

Before the service layer, each ``ExES`` facade kept its own unbounded
``_engines`` dict — one :class:`~repro.search.engine.ProbeEngine` per
``(team, seed_member)`` target, leaked for the facade's lifetime, invisible
to every other facade — and each ranker/former cached exactly one delta
session in a private slot, thrashing whenever two base networks alternated.

:class:`EngineRegistry` inverts that ownership.  It owns

* **probe engines**, keyed ``(base network, base version, target)`` —
  so a facade explaining the same target twice, or *two facades* wrapping
  the same deployed system, share one engine and its two-level probe memo;
* **search delta sessions**, keyed ``(ranker, base, base version)`` — the
  per-flip-set patch caches, solved-subproblem memos, and cached base
  forwards inside a session outlive any single engine;
* **team delta sessions**, keyed ``(former, base, base version)`` — traced
  base formation runs (the expensive part of membership probing) stay warm
  across targets, queries, and facades;
* **shared score memos**, keyed ``(ranker, base, base version)`` — the
  score-vector level of the probe memo is person- *and* target-
  independent, so the registry injects one memo into every engine over
  the same ranker+base: a forward computed under the relevance target
  serves membership probes of the same ``(query, flips)`` state, across
  every team seed.

All four stores are bounded LRUs (:class:`~repro.search.engine._LruCache`)
— at capacity the least-recently-used entry is dropped, so a service
explaining against many networks or seed members can never grow without
bound (the defect the ``ExES._engines`` dict had).

Keys carry ``id()``s of live objects, so every hit is verified by identity
(``engine.base is network``, ``session.valid_for(base)``) before being
served: a recycled ``id`` after garbage collection can alias a key but can
never alias the identity check, it just forces a rebuild.

The registry is thread-safe (one re-entrant lock around get-or-create);
the engines it hands out are **not** — ``ExplanationService.explain_many``
keeps each engine on a single shard thread, while the sessions below them
are safely shared through :class:`_LruCache`'s internal locking.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.explain.targets import MembershipTarget, RelevanceTarget
from repro.graph.network import CollaborationNetwork
from repro.graph.overlay import NetworkOverlay
from repro.graph.perturbations import Query
from repro.search.engine import (
    _MAX_SCORE_MEMO,
    DeltaSession,
    ProbeEngine,
    _LruCache,
    _rekey_memo_entries,
)

#: Default bound on engines / sessions kept per registry.  Engines hold
#: score-vector memos (n floats each) so this is a real memory knob.
DEFAULT_CAPACITY = 32

#: Default batching window (seconds) a flush-bus leader holds its group
#: open before executing the merged kernel call.  Long enough for probe
#: flushes issued by concurrently running shards to land in the same
#: group, short enough to stay invisible next to the kernel itself.
DEFAULT_FLUSH_WINDOW = 0.002

#: Hard cap on items merged into one bus group — bounds the block size of
#: the fused kernel call (and thus its memory), mirroring the engine's
#: per-flush ``_BATCH_GROUP`` bound at the cross-request level.
MAX_FUSED_ITEMS = 64

#: How long a follower waits for its leader's merged call before giving
#: up and falling back to a direct session call.  Purely a liveness
#: backstop — a leader that dies mid-call (thread killed) must not wedge
#: its followers forever.
_FOLLOWER_TIMEOUT = 30.0


class _PendingItem:
    """One probe state some leader is currently computing: other merged
    calls wanting the same state wait for this instead of recomputing."""

    __slots__ = ("done", "result", "failed")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Optional[np.ndarray] = None
        self.failed = False


class _FlushGroup:
    """One open merge group on the bus: accumulated items, per-participant
    slices, and the leader's completion signal."""

    __slots__ = (
        "items", "slices", "execute", "item_key",
        "results", "error", "done", "closed",
    )

    def __init__(
        self,
        execute: Callable[[List], List[np.ndarray]],
        item_key: Callable[[object], object],
    ) -> None:
        self.items: List = []
        self.slices: List[Tuple[int, int]] = []  # (start, count) per participant
        self.execute = execute
        self.item_key = item_key
        self.results: Optional[List[np.ndarray]] = None
        self.error: Optional[BaseException] = None
        self.done = threading.Event()
        self.closed = False


class FlushBus:
    """Cross-request probe-flush merging over shared delta sessions.

    Concurrent ``explain_many`` shards that probe the same ranker over the
    same frozen base network flush tiny kernel groups independently —
    each a ``scores_batch``/``scores_multi`` call whose fixed overhead
    dominates at probe-flush sizes.  The bus merges flushes that share a
    *(session, base version, query)* key (batch axis) or a *(session,
    base version, flip set)* key (multi-query axis) into **one** merged
    kernel call behind a small batching window:

    * the first flush to open a key becomes the **leader** — it waits out
      the window, closes the group, and runs the single merged session
      call on its own thread;
    * later flushes on the same key are **followers** — their items join
      the group and they block until the leader publishes results, then
      take their own slice.

    Duplicate probe states are collapsed twice over: identical items
    *within* a merged group run through the kernel once, and an item
    some other merged call on the same key is **already computing** is
    awaited (singleflight) instead of recomputed — concurrent shards
    racing through the same beam frontier submit the same states faster
    than the shared score memo can publish them, and this is where the
    fused path's headroom lives.

    Correctness leans on two invariants owned elsewhere: backends are
    composition-insensitive (a probe's scores cannot depend on its
    batch-mates — :mod:`repro.backend.base`), and every participant
    charges its *own* request budget and passes its own fault point
    *before* submitting, so a budget-exhausted or faulted participant
    simply never joins the group and a merged flush degrades only the
    participants whose own checks failed.  If the merged call itself
    fails, every participant falls back to its direct session call.

    The bus only merges while **armed** (the service arms it around
    thread-pool execution).  Disarmed — in particular in deterministic
    ``max_workers=1`` mode — ``submit_*`` returns None and the engine's
    direct session call runs instead: an exact pass-through.
    """

    def __init__(
        self,
        window: float = DEFAULT_FLUSH_WINDOW,
        max_items: int = MAX_FUSED_ITEMS,
    ) -> None:
        self.window = window
        self.max_items = max_items
        self._lock = threading.Lock()
        self._armed = 0
        self._open: Dict[Tuple, _FlushGroup] = {}
        # (bus key, item key) -> the computation already in flight for
        # that probe state, whichever merged call owns it (singleflight).
        self._inflight: Dict[Tuple, _PendingItem] = {}
        # observability
        self.flushes = 0  # submissions accepted while armed
        self.merged_flushes = 0  # groups that fused >1 participant
        self.fused_participants = 0  # participants across merged groups
        self.fused_items = 0  # items across merged groups
        self.max_fused = 0  # largest participant count in one group
        self.deduped_items = 0  # duplicate in-group items computed once
        self.inflight_hits = 0  # items served by another call in flight

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    @contextmanager
    def armed(self):
        """Scope in which submissions may merge (re-entrant: each
        concurrently running shard arms the shared bus, so the armed
        count doubles as a live concurrency signal — a leader only pays
        the batching window while another armed scope could still
        contribute a flush)."""
        with self._lock:
            self._armed += 1
        try:
            yield self
        finally:
            with self._lock:
                self._armed -= 1

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit_batch(
        self,
        session: DeltaSession,
        query: Query,
        overlays: Sequence,
    ) -> Optional[List[np.ndarray]]:
        """Offer a same-query batched flush for merging.  Returns this
        caller's score vectors, or None when the bus is disarmed (or the
        merged call failed) and the caller should flush directly."""
        key = ("batch", id(session), session.base_version, query)

        def execute(items: List) -> List[np.ndarray]:
            return session.scores_batch(query, items)

        # Overlays with identical flip sets score identically — the key
        # lets the leader compute each distinct probe state once.
        return self._submit(
            key, list(overlays), execute, item_key=lambda ov: ov.flips()
        )

    def submit_multi(
        self,
        session: DeltaSession,
        overlay,
        queries: Sequence[Query],
    ) -> Optional[List[np.ndarray]]:
        """Offer a multi-query flush (one pinned overlay, many queries)
        for merging.  Keyed by the overlay's *flip set* — participants
        holding distinct overlay objects with identical flips resolve to
        identical patches through the session's flip-set caches, so the
        leader's overlay answers for everyone."""
        key = ("multi", id(session), session.base_version, overlay.flips())

        def execute(items: List) -> List[np.ndarray]:
            return session.shared_context(overlay).scores_multi(items)

        return self._submit(key, list(queries), execute, item_key=lambda q: q)

    def _submit(
        self,
        key: Tuple,
        items: List,
        execute: Callable[[List], List[np.ndarray]],
        item_key: Callable[[object], object],
    ) -> Optional[List[np.ndarray]]:
        with self._lock:
            if self._armed <= 0 or not items:
                return None
            self.flushes += 1
            crowd = self._armed
            group = self._open.get(key)
            leader = (
                group is None
                or group.closed
                or len(group.items) + len(items) > self.max_items
            )
            if leader:
                group = _FlushGroup(execute, item_key)
                self._open[key] = group
            start = len(group.items)
            group.items.extend(items)
            group.slices.append((start, len(items)))
            slot = len(group.slices) - 1
        if leader:
            if self.window > 0 and crowd > 1:
                # Hold the group open only while some *other* armed scope
                # is live and could still contribute a flush; a lone shard
                # (deterministic tails included) flushes immediately.
                time.sleep(self.window)
            with self._lock:
                group.closed = True
                if self._open.get(key) is group:
                    del self._open[key]
                n_parts = len(group.slices)
                n_items = len(group.items)
            n_deduped = 0
            n_inflight = 0
            mine: List[Tuple] = []  # (item key, item, pending) owned here
            theirs: List[Tuple] = []  # (item key, pending) owned elsewhere
            try:
                # Concurrent shards racing through the same probe frontier
                # submit duplicate states faster than the shared score memo
                # can publish them; collapse in-group duplicates so each
                # distinct item runs through the kernel exactly once.
                keys = [group.item_key(item) for item in group.items]
                seen: Dict[object, None] = {}
                unique: List[Tuple] = []
                for ik, item in zip(keys, group.items):
                    if ik not in seen:
                        seen[ik] = None
                        unique.append((ik, item))
                n_deduped = n_items - len(unique)
                # Singleflight across merged calls on the same bus key: a
                # state another leader is already computing is awaited,
                # never recomputed.  Registration is atomic, and a leader
                # only waits *after* computing and publishing its own
                # items, so every pending completes and no cycle forms.
                with self._lock:
                    for ik, item in unique:
                        pending = self._inflight.get((key, ik))
                        if pending is not None:
                            theirs.append((ik, pending))
                        else:
                            pend = _PendingItem()
                            self._inflight[(key, ik)] = pend
                            mine.append((ik, item, pend))
                n_inflight = len(theirs)
                resolved: Dict[object, np.ndarray] = {}
                try:
                    results = (
                        group.execute([item for _, item, _ in mine])
                        if mine
                        else []
                    )
                    if len(results) != len(mine):
                        raise RuntimeError(
                            f"merged flush returned {len(results)} results "
                            f"for {len(mine)} items"
                        )
                    for (ik, _, pend), vec in zip(mine, results):
                        pend.result = vec
                        resolved[ik] = vec
                finally:
                    with self._lock:
                        for ik, _, pend in mine:
                            if pend.result is None:
                                pend.failed = True
                            pend.done.set()
                            self._inflight.pop((key, ik), None)
                for ik, pending in theirs:
                    pending.done.wait(timeout=_FOLLOWER_TIMEOUT)
                    if pending.failed or pending.result is None:
                        raise RuntimeError(
                            "in-flight probe state failed in its own call"
                        )
                    resolved[ik] = pending.result
                group.results = [resolved[ik] for ik in keys]
            except BaseException as exc:  # noqa: BLE001 — published to followers
                group.error = exc
            finally:
                group.done.set()
            with self._lock:
                self.deduped_items += n_deduped
                self.inflight_hits += n_inflight
                if n_parts > 1:
                    self.merged_flushes += 1
                    self.fused_participants += n_parts
                    self.fused_items += n_items
                    self.max_fused = max(self.max_fused, n_parts)
        else:
            group.done.wait(timeout=_FOLLOWER_TIMEOUT)
        if group.results is None:
            # Merged call failed (or leader never finished): every
            # participant falls back to its own direct session call.
            return None
        start, count = group.slices[slot]
        return group.results[start : start + count]

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """Snapshot of the merge counters (stable key set)."""
        with self._lock:
            return {
                "flushes": self.flushes,
                "merged_flushes": self.merged_flushes,
                "fused_participants": self.fused_participants,
                "fused_items": self.fused_items,
                "max_fused": self.max_fused,
                "deduped_items": self.deduped_items,
                "inflight_hits": self.inflight_hits,
            }

    def __repr__(self) -> str:
        return (
            f"FlushBus(window={self.window}, merged={self.merged_flushes}, "
            f"max_fused={self.max_fused})"
        )


def _target_key(target) -> Tuple:
    """A hashable identity for the decision target: which system is being
    probed and under which decision parameters."""
    if isinstance(target, RelevanceTarget):
        return ("relevance", id(target.system), target.k)
    if isinstance(target, MembershipTarget):
        return ("membership", id(target.former), target.seed_member)
    return ("target", type(target).__name__, id(target))


class EngineRegistry:
    """Bounded LRU ownership of probe engines and delta sessions."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._engines = _LruCache(capacity)
        self._search_sessions = _LruCache(capacity)
        self._team_sessions = _LruCache(capacity)
        # One bus per registry: engines built here get it as their flush
        # sink, so probe flushes from different engines (targets,
        # requests, shards) sharing a delta session can merge.
        self.flush_bus = FlushBus()
        # (ranker, base, version) -> the shared score-vector memo injected
        # into every engine probing that pair.  Score vectors are person-
        # AND target-independent, so a vector computed under the relevance
        # target serves a membership probe of the same (query, flips)
        # state — and vice versa — across every team seed.
        self._score_memos = _LruCache(capacity)
        self._lock = threading.RLock()
        self.engine_builds = 0  # observability: cache-miss constructions
        self.session_builds = 0
        self.restored_sessions = 0  # warm states loaded from a spill file
        self.restored_memo_entries = 0

    # ------------------------------------------------------------------
    # engines
    # ------------------------------------------------------------------
    def engine(self, target, network: CollaborationNetwork) -> ProbeEngine:
        """The shared probe engine for ``(target, network)``, built on the
        first request and reused — across explainers, requests, and facade
        instances — until LRU-evicted or the network's version drifts."""
        if isinstance(network, NetworkOverlay):
            # Engines bind to the overlay's base (probe flip sets are keyed
            # against it); key the same way or every overlay request would
            # look like a distinct network.
            network = network.base
        key = (id(network), network.version, _target_key(target))
        with self._lock:
            engine = self._engines.get(key)
            if (
                engine is None
                or engine.base is not network
                or engine.base_version != network.version
            ):
                engine = ProbeEngine(
                    target, network,
                    score_memo=self._score_memo_for(target, network),
                    flush_sink=self.flush_bus,
                )
                self._engines.put(key, engine)
                self.engine_builds += 1
            return engine

    def _score_memo_for(self, target, network: CollaborationNetwork):
        """The shared (ranker, base, version) score memo — None when the
        target exposes no ranker (engines then keep a private memo).  The
        stored (ranker, network) references double as the identity check:
        a recycled ``id`` after garbage collection may alias the key but
        never the ``is`` comparison, so a stale memo is replaced instead
        of served."""
        ranker = getattr(target, "ranker", None)
        if ranker is None:
            return None
        key = (id(ranker), id(network), network.version)
        hit = self._score_memos.get(key)
        if hit is not None:
            stored_ranker, stored_network, memo = hit
            if stored_ranker is ranker and stored_network is network:
                return memo
        memo = _LruCache(_MAX_SCORE_MEMO)
        self._score_memos.put(key, (ranker, network, memo))
        return memo

    def _restored_score_memo(self, ranker, network: CollaborationNetwork) -> _LruCache:
        """The shared (ranker, base, version) score memo, for the restore
        path — the same store :meth:`_score_memo_for` fills, addressed by
        ranker instead of target."""
        key = (id(ranker), id(network), network.version)
        hit = self._score_memos.get(key)
        if hit is not None and hit[0] is ranker and hit[1] is network:
            return hit[2]
        memo = _LruCache(_MAX_SCORE_MEMO)
        self._score_memos.put(key, (ranker, network, memo))
        return memo

    def drop_network(self, network: CollaborationNetwork) -> int:
        """Evict every engine and session bound to ``network`` (any
        version).  ``ExES.set_full_rebuild`` routes through here: an
        engine-off measurement must not be answered from a delta-path
        memo populated while the engine was on."""
        dropped = 0
        with self._lock:
            for key in self._engines.keys():  # (net id, version, target)
                if key[0] == id(network):
                    self._engines.pop(key)
                    dropped += 1
            for store in (
                self._search_sessions, self._team_sessions, self._score_memos
            ):
                for key in store.keys():  # (system id, base id, version)
                    if key[1] == id(network):
                        store.pop(key)
                        dropped += 1
        return dropped

    # ------------------------------------------------------------------
    # base-commit rebasing
    # ------------------------------------------------------------------
    def rebase(self, network: CollaborationNetwork, delta) -> Dict[str, int]:
        """Carry every engine, session, and shared score memo bound to
        ``network`` across a committed :class:`BaseDelta` instead of
        cold-starting them on the version bump.

        Order matters: sessions rebase first (each patches its operators
        O(Δ) or declines and is dropped), then the shared score memos
        re-key their surviving entries through the rebased sessions'
        :meth:`~repro.search.engine.DeltaSession.memo_survives`
        predicates, then engines re-key — their own memo passes are
        idempotent over the already-processed shared memos.  Returns the
        retention statistics."""
        stats = {
            "rebased_sessions": 0,
            "dropped_sessions": 0,
            "rebased_engines": 0,
            "dropped_engines": 0,
            "retained_memo_entries": 0,
            "dropped_memo_entries": 0,
        }
        if delta.is_empty:
            return stats
        nid = id(network)
        with self._lock:
            for store in (self._search_sessions, self._team_sessions):
                for key in store.keys():
                    sid, bid, version = key
                    if bid != nid or version != delta.old_version:
                        continue
                    session = store.get(key)
                    store.pop(key)
                    if session is None or session.base is not network:
                        continue
                    if session.rebase(delta):
                        store.put((sid, bid, delta.new_version), session)
                        stats["rebased_sessions"] += 1
                    else:
                        stats["dropped_sessions"] += 1
            for key in self._score_memos.keys():
                rid, bid, version = key
                if bid != nid or version != delta.old_version:
                    continue
                hit = self._score_memos.get(key)
                self._score_memos.pop(key)
                if hit is None:
                    continue
                ranker, net, memo = hit
                if net is not network:
                    continue
                session = self.search_session(ranker, network)
                if session is not None and session.base_version == delta.new_version:
                    survives = session.memo_survives
                else:
                    def survives(_delta, _query):
                        return False

                retained, dropped = _rekey_memo_entries(memo, delta, survives)
                stats["retained_memo_entries"] += retained
                stats["dropped_memo_entries"] += dropped
                self._score_memos.put(
                    (rid, bid, delta.new_version), (ranker, network, memo)
                )
            for key in self._engines.keys():
                enet, version, tkey = key
                if enet != nid or version != delta.old_version:
                    continue
                engine = self._engines.get(key)
                self._engines.pop(key)
                if engine is None or engine.base is not network:
                    continue
                try:
                    retained, dropped = engine.rebase(delta)
                except ValueError:
                    stats["dropped_engines"] += 1
                    continue
                stats["retained_memo_entries"] += retained
                stats["dropped_memo_entries"] += dropped
                self._engines.put((nid, delta.new_version, tkey), engine)
                stats["rebased_engines"] += 1
        return stats

    # ------------------------------------------------------------------
    # warm-state spill/restore
    # ------------------------------------------------------------------
    def spill(self, path, network: CollaborationNetwork, systems) -> Dict[str, int]:
        """Serialize the warm sessions and shared score memos bound to
        ``(network, systems)`` to ``path`` — see
        :mod:`repro.service.persistence` for the file format."""
        from repro.service.persistence import spill_registry

        return spill_registry(path, self, network, systems)

    def restore(self, path, network: CollaborationNetwork, systems) -> Dict[str, int]:
        """Reload a spill file into this registry so the first request
        after a restart probes against warm caches instead of
        cold-starting; silently restores nothing when the file does not
        bind to this exact network structure or numeric backend."""
        from repro.service.persistence import restore_registry

        return restore_registry(path, self, network, systems)

    # ------------------------------------------------------------------
    # sessions (the ranker/former ``_session_store`` hook)
    # ------------------------------------------------------------------
    def search_session(self, ranker, base: CollaborationNetwork):
        """The ranker's delta session over ``base`` — registry-owned, so
        its patch caches are shared by every engine probing this pair."""
        return self._session(self._search_sessions, ranker, base)

    def team_session(self, former, base: CollaborationNetwork):
        """The former's team delta session over ``base`` — registry-owned,
        so traced base runs warm-start across engines and facades."""
        return self._session(self._team_sessions, former, base)

    def _session(self, store: _LruCache, system, base: CollaborationNetwork):
        key = (id(system), id(base), base.version)
        with self._lock:
            session = store.get(key)
            if session is None or not session.valid_for(base):
                session = system.delta_session(base)
                store.put(key, session)
                self.session_builds += 1
            return session

    def install(self, *systems) -> "EngineRegistry":
        """Point each system's ``_session_store`` hook at this registry
        (rankers and formers alike; ``None`` entries are skipped)."""
        for system in systems:
            if system is not None:
                system._session_store = self
        return self

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def flush_counters(self) -> Dict[str, int]:
        """Aggregate flush observability across every live engine, plus
        the bus's merge counters: how many multi-query and batched
        flushes ran, how many probe states flowed through them, and how
        often the bus fused flushes from concurrent requests."""
        out = {"multi_flushes": 0, "batch_flushes": 0, "flushed_probes": 0}
        for engine in self._engines.values():
            out["multi_flushes"] += engine.multi_flushes
            out["batch_flushes"] += engine.batch_flushes
            out["flushed_probes"] += engine.flushed_probes
        if self.flush_bus is not None:  # benches disable the bus outright
            for name, value in self.flush_bus.counters().items():
                out[f"bus_{name}"] = value
        return out

    @property
    def n_engines(self) -> int:
        return len(self._engines)

    @property
    def n_sessions(self) -> int:
        return len(self._search_sessions) + len(self._team_sessions)

    def clear(self) -> None:
        with self._lock:
            self._engines.clear()
            self._search_sessions.clear()
            self._team_sessions.clear()
            self._score_memos.clear()

    def __repr__(self) -> str:
        return (
            f"EngineRegistry(engines={self.n_engines}, "
            f"sessions={self.n_sessions}, "
            f"capacity={self._engines.capacity})"
        )


_default_registry: Optional[EngineRegistry] = None
_default_lock = threading.Lock()


def default_registry() -> EngineRegistry:
    """The process-wide shared registry: facades built without an explicit
    registry all land here, so engines and sessions are reused across
    facade instances — the Figure-2 deployment shape, where one long-lived
    service answers every explanation request."""
    global _default_registry
    with _default_lock:
        if _default_registry is None:
            _default_registry = EngineRegistry()
        return _default_registry
