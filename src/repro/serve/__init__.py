"""The process-level serving front end: an asyncio NDJSON server and
client over :meth:`~repro.service.service.ExplanationService
.explain_many` — frames in :mod:`repro.serve.protocol`, server in
:mod:`repro.serve.server`, client in :mod:`repro.serve.client`."""

from repro.serve.client import RemoteProtocolError, ServeClient, run_remote_workload
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    InvalidRequest,
    MalformedFrame,
    OversizedFrame,
    ProtocolError,
    ServerClosing,
    UnknownFrameType,
)
from repro.serve.server import ExplanationServer, ServeConfig, serve

__all__ = [
    "ExplanationServer",
    "InvalidRequest",
    "MalformedFrame",
    "MAX_FRAME_BYTES",
    "OversizedFrame",
    "ProtocolError",
    "PROTOCOL_VERSION",
    "RemoteProtocolError",
    "ServeClient",
    "ServeConfig",
    "ServerClosing",
    "serve",
    "run_remote_workload",
    "UnknownFrameType",
]
