"""The asyncio serving front end over ``ExplanationService.explain_many``.

This is the process boundary the service layer was built toward (paper
Figure 2: one long-lived deployment, many interactive clients): an
``asyncio`` streams server speaking the newline-delimited JSON protocol
of :mod:`repro.serve.protocol`, zero dependencies beyond the stdlib.

Design points:

* **Sessions map onto admission keys.**  Each connection owns a session
  name (``hello`` frame, else a server-assigned ``conn-<n>``) stamped
  onto every request that doesn't carry its own — so the admission
  layer's per-session fair share sees *connections* as tenants, exactly
  like the in-process path sees ``ExplainRequest.session``.

* **Results stream as shards complete.**  A ``batch`` frame dispatches
  ``explain_many`` on a worker thread; the service's ``on_response``
  hook forwards each completed response into the event loop the moment
  its shard produces it, so ``result`` frames (tagged with the
  ``ok/degraded/timed_out/rejected/failed`` outcome taxonomy) reach the
  client *before* the batch finishes.  The terminal ``batch_end`` frame
  carries the outcome tally, a :class:`~repro.service.runtime
  .ServiceStats` snapshot, and the registry's flush-bus fusion counters.

* **Backpressure, not buffering.**  A connection may pipeline at most
  ``max_inflight_batches`` batches; past that the server simply *stops
  reading its socket* (the read loop blocks before parsing the next
  frame), pushing the pressure into the kernel's TCP window instead of
  an unbounded queue.  When a batch comes back load-shed (``rejected``
  outcomes from admission control) or the registry's LRUs thrashed
  while it ran (engine/session build churn above
  ``thrash_threshold``), the connection drops to *drain mode*: the next
  frame is not read until every in-flight batch on that connection has
  finished.  Outbound frames go through one writer task per connection
  with ``drain()`` after every frame, so a slow reader throttles its
  own result stream the same way.

* **Typed errors, never a dropped connection mid-batch.**  Malformed
  and oversized frames, unknown frame types, and bad request payloads
  are answered with ``error`` frames (:class:`~repro.serve.protocol
  .ProtocolError` kinds) and the read loop continues — a batch already
  streaming on the connection is unaffected.  Only EOF and a truncated
  final line close a connection, and a client that disconnects
  mid-batch costs the server nothing but the already-running dispatch.

* **Clean shutdown drains.**  :meth:`ExplanationServer.shutdown` stops
  accepting connections and new batches (``ServerClosing`` errors),
  waits for every in-flight batch to finish streaming, sends each
  client a ``shutdown`` frame, and only then closes sockets.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import logging
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.eval.workload import outcome_counts
from repro.graph.overlay import NetworkOverlay
from repro.explain.serialize import request_from_dict, response_to_dict
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    OVERSIZED,
    PROTOCOL_VERSION,
    FrameReader,
    InvalidRequest,
    MalformedFrame,
    OversizedFrame,
    ProtocolError,
    ServerClosing,
    UnknownFrameType,
    decode_frame,
    encode_frame,
    error_frame,
)
from repro.service.requests import ExplainRequest
from repro.service.service import ExplanationService

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ServeConfig:
    """Knobs for the serving front end."""

    host: str = "127.0.0.1"
    #: 0 picks an ephemeral port (read it back from ``server.port``).
    port: int = 0
    #: Ceiling on one frame's encoded size (both directions).
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: Batches one connection may have in flight before the server stops
    #: reading its socket.
    max_inflight_batches: int = 2
    #: Cap on a batch's requested ``max_workers`` (1 = force the
    #: deterministic single-thread mode for every batch).
    max_batch_workers: int = 4
    #: ``max_workers`` used when a batch frame doesn't name one.
    default_batch_workers: int = 1
    #: Threads running ``explain_many`` dispatches (each dispatch owns
    #: its own shard pool; this bounds concurrent *batches* server-wide).
    dispatch_threads: int = 4
    #: Registry engine+session builds during one batch above which the
    #: connection is considered to be thrashing the LRUs and is dropped
    #: to drain mode (read nothing until its in-flight batches finish).
    #: None disables the thrash signal.
    thrash_threshold: Optional[int] = 64
    #: How long shutdown waits for in-flight batches to finish streaming.
    drain_timeout_seconds: float = 60.0
    #: Warm-registry spill file (:mod:`repro.service.persistence`): when
    #: set, :meth:`ExplanationServer.start` restores warm sessions/memos
    #: from it (skipped safely on any mismatch) and :meth:`shutdown`
    #: rewrites it — so a restarted worker answers its first request hot.
    spill_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_inflight_batches < 1:
            raise ValueError(
                f"max_inflight_batches must be >= 1, got {self.max_inflight_batches}"
            )
        if self.max_batch_workers < 1:
            raise ValueError(
                f"max_batch_workers must be >= 1, got {self.max_batch_workers}"
            )
        if self.max_frame_bytes < 1024:
            raise ValueError(
                f"max_frame_bytes must be >= 1024, got {self.max_frame_bytes}"
            )


class _Connection:
    """Per-connection state: session identity, in-flight batch tasks,
    the outbound frame queue, and the backpressure flags."""

    _ids = itertools.count()

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.session = f"conn-{next(self._ids)}"
        self.named = False  # session set explicitly via hello
        self.inflight: set = set()
        self.outbound: asyncio.Queue = asyncio.Queue()
        self.pressured = False
        self.dead = False
        self.writer_task: Optional[asyncio.Task] = None

    def enqueue(self, frame: Dict[str, Any]) -> None:
        if not self.dead:
            self.outbound.put_nowait(frame)


class ExplanationServer:
    """One listening socket over one :class:`ExplanationService`."""

    def __init__(
        self, service: ExplanationService, config: Optional[ServeConfig] = None
    ) -> None:
        self.service = service
        self.config = config or ServeConfig()
        self.stats: Dict[str, int] = {
            "connections": 0,
            "frames": 0,
            "batches": 0,
            "requests": 0,
            "protocol_errors": 0,
            "read_pauses": 0,
            "drain_pauses": 0,
            "disconnects_mid_batch": 0,
            "commits": 0,
        }
        self.restore_stats: Optional[Dict[str, Any]] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._closing = False
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _spill_systems(self) -> List[Any]:
        return [self.service.ranker, self.service.former]

    async def start(self) -> "ExplanationServer":
        if self.config.spill_path is not None:
            # Restore before the socket opens: the first request finds
            # warm sessions/memos instead of paying the cold-start
            # rebuild.  Any mismatch (dataset, backend, missing file)
            # skips restore — never hot-with-wrong-answers.
            try:
                self.restore_stats = self.service.registry.restore(
                    self.config.spill_path,
                    self.service.network,
                    self._spill_systems(),
                )
            except Exception:
                logger.warning("spill restore failed; starting cold", exc_info=True)
                self.restore_stats = {"skipped": "error"}
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.dispatch_threads,
            thread_name_prefix="repro-serve",
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    @property
    def inflight_batches(self) -> int:
        return sum(len(conn.inflight) for conn in self._connections)

    async def shutdown(self) -> None:
        """Stop accepting, drain every in-flight batch (their result and
        ``batch_end`` frames still stream), then close connections."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Drain: every already-admitted batch finishes and streams out.
        deadline = time.monotonic() + self.config.drain_timeout_seconds
        for conn in list(self._connections):
            pending = list(conn.inflight)
            if pending:
                timeout = max(0.1, deadline - time.monotonic())
                await asyncio.wait(pending, timeout=timeout)
        for conn in list(self._connections):
            conn.enqueue({"type": "shutdown"})
            conn.enqueue(None)  # writer-task sentinel: flush then stop
            if conn.writer_task is not None:
                try:
                    await asyncio.wait_for(conn.writer_task, timeout=5.0)
                except asyncio.TimeoutError:
                    conn.writer_task.cancel()
            conn.dead = True
            conn.writer.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self.config.spill_path is not None:
            try:
                self.service.registry.spill(
                    self.config.spill_path,
                    self.service.network,
                    self._spill_systems(),
                )
            except Exception:
                logger.warning("spill write failed", exc_info=True)

    # ------------------------------------------------------------------
    # per-connection loops
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        self._connections.add(conn)
        self.stats["connections"] += 1
        conn.writer_task = asyncio.ensure_future(self._writer_loop(conn))
        frames = FrameReader(reader, self.config.max_frame_bytes)
        try:
            while True:
                line = await frames.next_line()
                if line is None:
                    break  # EOF (or truncated final line): clean close
                self.stats["frames"] += 1
                if line is OVERSIZED:
                    self._protocol_error(
                        conn,
                        OversizedFrame(
                            "frame exceeded "
                            f"{self.config.max_frame_bytes} bytes and was discarded"
                        ),
                    )
                    continue
                try:
                    frame = decode_frame(line)
                except MalformedFrame as exc:
                    self._protocol_error(conn, exc)
                    continue
                # Reading one more frame than the admission gate allows
                # is unavoidable (we must parse to know it's a batch);
                # _handle_frame blocks before *dispatching* over-limit
                # batches, which stalls this read loop — the actual
                # backpressure path.
                await self._handle_frame(conn, frame)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer vanished; in-flight batches finish below
        finally:
            if conn.inflight:
                self.stats["disconnects_mid_batch"] += 1
                # Let running dispatches finish (their results go to a
                # dead queue); never cancel mid-batch work.
                await asyncio.wait(list(conn.inflight))
            conn.dead = True
            conn.outbound.put_nowait(None)
            if conn.writer_task is not None:
                try:
                    await asyncio.wait_for(conn.writer_task, timeout=5.0)
                except asyncio.TimeoutError:
                    conn.writer_task.cancel()
            self._connections.discard(conn)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _writer_loop(self, conn: _Connection) -> None:
        """The single outbound path: frames serialize through one queue,
        and ``drain()`` after every write lets a slow client throttle
        its own stream instead of growing a server-side buffer."""
        while True:
            frame = await conn.outbound.get()
            if frame is None:
                break
            try:
                conn.writer.write(encode_frame(frame))
                await conn.writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                conn.dead = True
                break

    def _protocol_error(
        self, conn: _Connection, exc: ProtocolError, frame_id: Any = None
    ) -> None:
        self.stats["protocol_errors"] += 1
        conn.enqueue(error_frame(exc.to_error(), frame_id))

    # ------------------------------------------------------------------
    # frame dispatch
    # ------------------------------------------------------------------
    async def _handle_frame(self, conn: _Connection, frame: Dict[str, Any]) -> None:
        kind = frame["type"]
        if kind == "hello":
            session = frame.get("session")
            if isinstance(session, str) and session:
                conn.session = session
                conn.named = True
            conn.enqueue(
                {
                    "type": "welcome",
                    "session": conn.session,
                    "version": PROTOCOL_VERSION,
                    "server": "repro-serve",
                }
            )
        elif kind == "ping":
            conn.enqueue({"type": "pong", "id": frame.get("id")})
        elif kind == "batch":
            await self._handle_batch(conn, frame)
        elif kind == "commit":
            await self._handle_commit(conn, frame)
        else:
            self._protocol_error(
                conn,
                UnknownFrameType(f"unknown frame type {kind!r}"),
                frame.get("id"),
            )

    async def _handle_batch(self, conn: _Connection, frame: Dict[str, Any]) -> None:
        batch_id = frame.get("id")
        if self._closing:
            self._protocol_error(
                conn, ServerClosing("server is draining for shutdown"), batch_id
            )
            return
        payload = frame.get("requests")
        if not isinstance(payload, list) or not payload:
            self._protocol_error(
                conn,
                InvalidRequest("batch frame needs a non-empty 'requests' list"),
                batch_id,
            )
            return
        try:
            requests = [request_from_dict(item) for item in payload]
        except (ValueError, TypeError, KeyError) as exc:
            self._protocol_error(
                conn, InvalidRequest(f"bad request payload: {exc}"), batch_id
            )
            return
        # Per-connection session mapping: requests without an explicit
        # caller identity inherit the connection's, so admission control
        # fair-shares across connections out of the box.
        requests = [
            r if r.session else dataclasses.replace(r, session=conn.session)
            for r in requests
        ]
        raw_workers = frame.get("max_workers", self.config.default_batch_workers)
        try:
            max_workers = max(
                1, min(int(raw_workers), self.config.max_batch_workers)
            )
        except (TypeError, ValueError):
            self._protocol_error(
                conn,
                InvalidRequest(f"max_workers must be an integer, got {raw_workers!r}"),
                batch_id,
            )
            return
        coalesce = bool(frame.get("coalesce", True))

        await self._admit(conn)
        task = asyncio.ensure_future(
            self._run_batch(conn, batch_id, requests, max_workers, coalesce)
        )
        conn.inflight.add(task)
        task.add_done_callback(conn.inflight.discard)

    async def _handle_commit(self, conn: _Connection, frame: Dict[str, Any]) -> None:
        """A live base edit over the wire: ``{"type": "commit",
        "skill_flips": [[person, skill, added], ...], "edge_flips":
        [[u, v, added], ...], "id": ...}``.

        The flips are staged on a fresh overlay and promoted through
        :meth:`~repro.service.service.ExplanationService.commit` on a
        worker thread — the service's version gate drains in-flight
        requests on the old version first, and every later response is
        stamped with the new ``base_version``.  The reply is a
        ``commit_end`` frame carrying both versions and the registry's
        rebase accounting."""
        commit_id = frame.get("id")
        if self._closing:
            self._protocol_error(
                conn, ServerClosing("server is draining for shutdown"), commit_id
            )
            return
        skill_flips = frame.get("skill_flips") or []
        edge_flips = frame.get("edge_flips") or []
        if not isinstance(skill_flips, list) or not isinstance(edge_flips, list):
            self._protocol_error(
                conn,
                InvalidRequest("commit flips must be lists of triples"),
                commit_id,
            )
            return
        try:
            overlay = NetworkOverlay(self.service.network)
            for person, skill, added in skill_flips:
                if added:
                    overlay.add_skill(int(person), str(skill))
                else:
                    overlay.remove_skill(int(person), str(skill))
            for u, v, added in edge_flips:
                if added:
                    overlay.add_edge(int(u), int(v))
                else:
                    overlay.remove_edge(int(u), int(v))
        except (TypeError, ValueError, KeyError, IndexError) as exc:
            self._protocol_error(
                conn, InvalidRequest(f"bad commit payload: {exc}"), commit_id
            )
            return
        loop = asyncio.get_event_loop()
        try:
            result = await loop.run_in_executor(
                self._pool, lambda: self.service.commit(overlay)
            )
        except Exception as exc:
            self._protocol_error(
                conn, InvalidRequest(f"commit failed: {exc}"), commit_id
            )
            return
        self.stats["commits"] += 1
        conn.enqueue(
            {
                "type": "commit_end",
                "id": commit_id,
                "old_version": result.old_version,
                "new_version": result.new_version,
                "n_skill_flips": len(result.delta.skill_flips),
                "n_edge_flips": len(result.delta.edge_flips),
                "stats": dict(result.stats),
            }
        )

    async def _admit(self, conn: _Connection) -> None:
        """The backpressure gate: block the read loop (and therefore the
        socket) until this connection may start another batch.  Under
        pressure (load shed or LRU thrash on the last batch) the limit
        drops to one — a full drain before the next frame is read."""
        paused = False
        while True:
            limit = 1 if conn.pressured else self.config.max_inflight_batches
            if len(conn.inflight) < limit:
                return
            if not paused:
                paused = True
                self.stats[
                    "drain_pauses" if conn.pressured else "read_pauses"
                ] += 1
            await asyncio.wait(
                list(conn.inflight), return_when=asyncio.FIRST_COMPLETED
            )

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------
    async def _run_batch(
        self,
        conn: _Connection,
        batch_id: Any,
        requests: List[ExplainRequest],
        max_workers: int,
        coalesce: bool,
    ) -> None:
        loop = asyncio.get_event_loop()
        registry = self.service.registry
        builds_before = registry.engine_builds + registry.session_builds
        fusion_before = registry.flush_counters()

        def on_response(index: int, response) -> None:
            # Called on shard threads: hop to the loop, then through the
            # connection's single writer task.
            frame = {
                "type": "result",
                "id": batch_id,
                "index": index,
                "response": response_to_dict(response),
            }
            loop.call_soon_threadsafe(conn.enqueue, frame)

        start = time.perf_counter()
        try:
            responses = await loop.run_in_executor(
                self._pool,
                lambda: self.service.explain_many(
                    requests,
                    max_workers=max_workers,
                    coalesce=coalesce,
                    on_response=on_response,
                ),
            )
        except Exception as exc:  # pragma: no cover - explain_many types
            # its own failures; anything surfacing here is a defect, but
            # the connection must still never drop mid-batch.
            logger.exception("explain_many crashed for batch %r", batch_id)
            self._protocol_error(
                conn,
                InvalidRequest(f"batch dispatch failed: {exc}"),
                batch_id,
            )
            return
        elapsed = time.perf_counter() - start
        outcomes = outcome_counts(responses)
        fusion = {
            name: value - fusion_before.get(name, 0)
            for name, value in registry.flush_counters().items()
            if name != "bus_max_fused"
        }
        builds = (
            registry.engine_builds + registry.session_builds - builds_before
        )
        self.stats["batches"] += 1
        self.stats["requests"] += len(requests)
        # Pressure detection: admission shed load, or this batch churned
        # the registry LRUs (cold engines/sessions built faster than
        # they can stay resident) — drop to drain mode either way, and
        # clear it again after a clean batch.
        thrash = (
            self.config.thrash_threshold is not None
            and builds > self.config.thrash_threshold
        )
        conn.pressured = bool(outcomes.get("rejected", 0)) or thrash
        conn.enqueue(
            {
                "type": "batch_end",
                "id": batch_id,
                "n_requests": len(responses),
                "elapsed_seconds": elapsed,
                "outcomes": outcomes,
                "stats": self.service.stats.snapshot(),
                "fusion": fusion,
                "registry_builds": builds,
                "pressured": conn.pressured,
            }
        )


async def serve(
    service: ExplanationService, config: Optional[ServeConfig] = None
) -> ExplanationServer:
    """Start a server and return it (callers own ``serve_forever`` /
    ``shutdown``)."""
    return await ExplanationServer(service, config).start()
