"""The wire protocol: newline-delimited JSON frames over a byte stream.

One frame is one JSON object on one line (UTF-8, ``\\n``-terminated).
The payloads inside frames are exactly the dicts
:mod:`repro.explain.serialize` round-trips — requests, responses,
structured errors — so the process boundary adds *framing*, never a
second serialization dialect.

Client → server frames:

=============  ==========================================================
``hello``      name this connection's session (``{"session": "alice"}``);
               the server answers ``welcome`` and stamps the session onto
               every request that doesn't carry its own
``batch``      ``{"id": ..., "requests": [...], "max_workers": 1,
               "coalesce": true}`` — dispatch a batch through
               ``explain_many``
``ping``       liveness probe; answered with ``pong``
=============  ==========================================================

Server → client frames:

=============  ==========================================================
``welcome``    session assignment + protocol version
``result``     one streamed response: ``{"id": <batch>, "index": <pos in
               the batch>, "response": {...}}`` — emitted as each request
               completes, *before* the batch finishes, tagged with the
               ``ok/degraded/timed_out/rejected/failed`` outcome taxonomy
``batch_end``  terminal summary: outcome tally, elapsed wall clock, a
               :class:`~repro.service.runtime.ServiceStats` snapshot and
               the registry's flush-bus fusion counters
``error``      a typed protocol error (:class:`ProtocolError` rendered as
               an :class:`~repro.service.requests.ExplainError` dict) —
               malformed JSON, an oversized frame, an invalid request
               payload, an unknown frame type, or a shutting-down server.
               Errors never close the connection; the peer may continue
``pong``       ping reply
``shutdown``   the server is closing this connection after a drain
=============  ==========================================================

Framing errors are *typed, not fatal*: an oversized line is discarded
through the next newline and answered with an ``error`` frame, a
malformed line is answered and skipped — the connection (and any batch
in flight on it) survives.  The only clean closes are EOF and a
truncated final line, where there is no longer a peer to answer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.service.requests import ExplainError

#: Protocol revision carried in ``welcome`` frames; bumped on any
#: incompatible frame-shape change.
PROTOCOL_VERSION = 1

#: Default ceiling on one frame's encoded size.  Large enough for any
#: real batch at paper scale, small enough that a misbehaving peer
#: cannot make the server buffer unboundedly on a single line.
MAX_FRAME_BYTES = 1 << 20


class ProtocolError(ValueError):
    """A typed wire-protocol violation, answerable with an ``error``
    frame.  ``kind`` is machine-readable and stable — the robustness
    tests key on it."""

    kind = "ProtocolError"
    retryable = False

    def to_error(self) -> ExplainError:
        return ExplainError(
            kind=self.kind, message=str(self), retryable=self.retryable
        )


class MalformedFrame(ProtocolError):
    """The line was not a JSON object."""

    kind = "MalformedFrame"


class OversizedFrame(ProtocolError):
    """The line exceeded the frame-size ceiling (it was discarded
    through the next newline; the connection continues)."""

    kind = "OversizedFrame"


class UnknownFrameType(ProtocolError):
    """A well-formed frame the server has no handler for."""

    kind = "UnknownFrameType"


class InvalidRequest(ProtocolError):
    """A ``batch`` frame whose request payloads don't deserialize
    (unknown explanation kind, missing fields, wrong types)."""

    kind = "InvalidRequest"


class ServerClosing(ProtocolError):
    """New work refused because the server is draining for shutdown —
    retryable against the next server instance."""

    kind = "ServerClosing"
    retryable = True


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """One frame as a compact, newline-terminated JSON line."""
    return json.dumps(frame, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one line into a frame dict, typing every way it can fail."""
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MalformedFrame(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise MalformedFrame(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    if not isinstance(frame.get("type"), str):
        raise MalformedFrame("frame has no string 'type' field")
    return frame


def error_frame(error: ExplainError, frame_id: Any = None) -> Dict[str, Any]:
    """The typed ``error`` frame for a protocol failure (``frame_id``
    ties it to the client frame that provoked it, when one parsed)."""
    from repro.explain.serialize import explain_error_to_dict

    out: Dict[str, Any] = {"type": "error", "error": explain_error_to_dict(error)}
    if frame_id is not None:
        out["id"] = frame_id
    return out


#: Sentinel returned by :class:`FrameReader` for a line that blew the
#: size ceiling (already discarded through its newline).
OVERSIZED = object()


class FrameReader:
    """Incremental NDJSON line reader over an ``asyncio.StreamReader``
    with explicit oversized-line handling.

    ``asyncio``'s own ``readline`` raises on over-limit lines and leaves
    the data buffered — which would wedge the connection.  This reader
    owns its buffer: a line that exceeds ``max_bytes`` is discarded
    through the terminating newline and surfaced as :data:`OVERSIZED`,
    so the server can answer a typed error and keep reading the very
    next frame.

    ``next_line`` returns raw line ``bytes``, :data:`OVERSIZED`, or
    ``None`` on EOF (a truncated final line — EOF with no newline — is a
    clean close: there is no peer left to answer).
    """

    def __init__(self, reader, max_bytes: int = MAX_FRAME_BYTES) -> None:
        self._reader = reader
        self._max = max_bytes
        self._buf = bytearray()
        self._discarding = False
        self._eof = False

    async def next_line(self):
        while True:
            newline = self._buf.find(b"\n")
            if newline >= 0:
                line = bytes(self._buf[:newline])
                del self._buf[: newline + 1]
                if self._discarding:
                    # The tail of a line we were already discarding.
                    self._discarding = False
                    return OVERSIZED
                if len(line) > self._max:
                    return OVERSIZED
                if not line.strip():
                    continue  # blank keepalive line
                return line
            if len(self._buf) > self._max:
                # No newline yet and the line is already over the
                # ceiling: drop what we have and discard until one lands.
                self._buf.clear()
                self._discarding = True
            if self._eof:
                return None
            chunk = await self._reader.read(65536)
            if not chunk:
                self._eof = True
                if self._buf:
                    # Truncated final line: unanswerable, clean close.
                    self._buf.clear()
                return None
            self._buf.extend(chunk)
