"""The async client for the serving front end.

:class:`ServeClient` speaks the :mod:`repro.serve.protocol` frames over
one connection: a ``hello``/``welcome`` handshake naming the session,
then ``batch`` frames answered by streamed ``result`` frames and a
terminal ``batch_end`` summary.  :meth:`ServeClient.explain_stream`
surfaces the stream frame-by-frame (the tests watch partials arrive
before the batch completes); :meth:`ServeClient.explain_many` collects
it back into the same ``List[ExplainResponse]`` the in-process call
returns, plus the summary — so swapping a local
``service.explain_many(...)`` for a remote one is a two-line change.

:func:`run_remote_workload` is the synchronous wrapper the CLI's
``workload --remote`` path uses: connect, run one batch, return
``(responses, summary)``.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.explain.serialize import (
    explain_error_from_dict,
    request_to_dict,
    response_from_dict,
)
from repro.serve.protocol import FrameReader, decode_frame, encode_frame
from repro.service.requests import ExplainRequest, ExplainResponse


class RemoteProtocolError(RuntimeError):
    """The server answered a batch with a typed ``error`` frame (carried
    on ``.error`` as an :class:`~repro.service.requests.ExplainError`)."""

    def __init__(self, error) -> None:
        super().__init__(f"{error.kind}: {error.message}")
        self.error = error


class ServeClient:
    """One connection to an :class:`~repro.serve.server.ExplanationServer`."""

    _batch_ids = itertools.count(1)

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = FrameReader(reader)
        self._writer = writer
        self.session: Optional[str] = None
        self.protocol_version: Optional[int] = None

    @classmethod
    async def connect(
        cls, host: str, port: int, session: Optional[str] = None
    ) -> "ServeClient":
        """Open a connection and complete the hello/welcome handshake.
        ``session`` names this connection's admission-control tenant;
        omitted, the server assigns one."""
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer)
        hello: Dict[str, Any] = {"type": "hello"}
        if session is not None:
            hello["session"] = session
        await client.send(hello)
        welcome = await client.recv()
        if welcome is None or welcome.get("type") != "welcome":
            raise ConnectionError(f"expected a welcome frame, got {welcome!r}")
        client.session = welcome.get("session")
        client.protocol_version = welcome.get("version")
        return client

    async def send(self, frame: Dict[str, Any]) -> None:
        self._writer.write(encode_frame(frame))
        await self._writer.drain()

    async def recv(self) -> Optional[Dict[str, Any]]:
        """The next frame, or ``None`` on a clean server close."""
        line = await self._reader.next_line()
        if line is None:
            return None
        return decode_frame(line)

    async def ping(self, ping_id: Any = None) -> Dict[str, Any]:
        await self.send({"type": "ping", "id": ping_id})
        while True:
            frame = await self.recv()
            if frame is None:
                raise ConnectionError("server closed before answering ping")
            if frame.get("type") == "pong":
                return frame

    async def commit(
        self,
        skill_flips: Sequence = (),
        edge_flips: Sequence = (),
        commit_id: Any = None,
    ) -> Dict[str, Any]:
        """Promote a live base edit on the server: send a ``commit``
        frame (``skill_flips`` as ``(person, skill, added)`` triples,
        ``edge_flips`` as ``(u, v, added)``) and return the
        ``commit_end`` summary — old/new versions plus the registry's
        rebase accounting.  Raises :class:`RemoteProtocolError` when the
        server refuses the commit."""
        await self.send(
            {
                "type": "commit",
                "id": commit_id,
                "skill_flips": [list(flip) for flip in skill_flips],
                "edge_flips": [list(flip) for flip in edge_flips],
            }
        )
        while True:
            frame = await self.recv()
            if frame is None:
                raise ConnectionError("server closed before commit_end")
            kind = frame.get("type")
            if kind == "commit_end" and frame.get("id") == commit_id:
                return frame
            if kind == "error":
                raise RemoteProtocolError(explain_error_from_dict(frame["error"]))
            if kind == "shutdown":
                raise ConnectionError("server shut down mid-commit")

    async def explain_stream(
        self,
        requests: Sequence[ExplainRequest],
        max_workers: int = 1,
        coalesce: bool = True,
    ):
        """Send one batch and yield its frames as they stream back:
        ``result`` frames in completion order (not request order), then
        exactly one terminal ``batch_end`` — or a terminal ``error``
        frame when the server refused the batch."""
        batch_id = next(self._batch_ids)
        await self.send(
            {
                "type": "batch",
                "id": batch_id,
                "requests": [request_to_dict(r) for r in requests],
                "max_workers": max_workers,
                "coalesce": coalesce,
            }
        )
        while True:
            frame = await self.recv()
            if frame is None:
                raise ConnectionError("server closed mid-batch")
            kind = frame.get("type")
            if kind in ("result", "batch_end") and frame.get("id") == batch_id:
                yield frame
                if kind == "batch_end":
                    return
            elif kind == "error":
                # Typed refusal of this batch — or a stray protocol
                # error the server answered between frames; both are
                # terminal for the caller awaiting this batch.
                yield frame
                return
            elif kind == "shutdown":
                raise ConnectionError("server shut down mid-batch")
            # welcome/pong interleavings are someone else's frames: skip.

    async def explain_many(
        self,
        requests: Sequence[ExplainRequest],
        max_workers: int = 1,
        coalesce: bool = True,
    ) -> Tuple[List[ExplainResponse], Dict[str, Any]]:
        """The remote mirror of ``ExplanationService.explain_many``:
        responses in request order plus the ``batch_end`` summary dict."""
        responses: List[Optional[ExplainResponse]] = [None] * len(requests)
        summary: Dict[str, Any] = {}
        async for frame in self.explain_stream(requests, max_workers, coalesce):
            if frame["type"] == "result":
                responses[int(frame["index"])] = response_from_dict(frame["response"])
            elif frame["type"] == "batch_end":
                summary = frame
            else:
                raise RemoteProtocolError(explain_error_from_dict(frame["error"]))
        missing = [i for i, r in enumerate(responses) if r is None]
        if missing:
            raise ConnectionError(
                f"batch ended with {len(missing)} unanswered requests: {missing[:5]}"
            )
        return responses, summary  # type: ignore[return-value]

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def run_remote_workload(
    host: str,
    port: int,
    requests: Sequence[ExplainRequest],
    max_workers: int = 1,
    coalesce: bool = True,
    session: Optional[str] = None,
) -> Tuple[List[ExplainResponse], Dict[str, Any]]:
    """Synchronous one-shot: connect, run one batch, disconnect."""

    async def go() -> Tuple[List[ExplainResponse], Dict[str, Any]]:
        client = await ServeClient.connect(host, port, session=session)
        try:
            return await client.explain_many(
                requests, max_workers=max_workers, coalesce=coalesce
            )
        finally:
            await client.close()

    return asyncio.run(go())
