"""The ExES facade: one object that explains an expert search or team
formation system (paper Figure 2).

Wiring an :class:`ExES` by hand gives full control::

    exes = ExES(network, ranker, embedding, link_predictor, former, k=10)

or let :meth:`ExES.build` assemble the full paper stack from a dataset
bundle: PPMI skill embeddings from the corpus (Pruning Strategy 4), a
trained GCN ranker (the system under explanation), a trained GAE link
predictor (Pruning Strategy 5), and the build-around-a-member team former.

Every explanation method takes ``team=`` / ``seed_member=`` so the same
calls explain either relevance status C (expert search) or membership
status M (team formation, §3.5).

The facade is a thin adapter over an :class:`~repro.service.service
.ExplanationService`: probe engines and delta sessions live in a shared,
LRU-bounded :class:`~repro.service.registry.EngineRegistry` (the process
default unless ``registry=`` names one), so two facades wrapping the same
deployed system reuse each other's caches, and batched workloads go
through :meth:`explain_many`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.datasets import DatasetBundle
from repro.embeddings.ppmi import train_ppmi_embedding
from repro.embeddings.similarity import SkillEmbedding
from repro.explain.candidates import LinkPredictor
from repro.explain.counterfactual import BeamConfig, CounterfactualExplainer
from repro.explain.explanation import CounterfactualExplanation, FactualExplanation
from repro.explain.factual import FactualConfig, FactualExplainer
from repro.explain.targets import DecisionTarget
from repro.graph.network import CollaborationNetwork
from repro.linkpred.gae import GaeConfig, train_gae
from repro.search.base import ExpertSearchSystem
from repro.search.engine import ProbeEngine
from repro.search.gcn import GcnExpertRanker, GcnRankerConfig
from repro.service.registry import EngineRegistry
from repro.service.requests import ExplainRequest, ExplainResponse
from repro.service.service import ExplanationService
from repro.team.base import Team, TeamFormationSystem
from repro.team.greedy import CoverTeamFormer


@dataclass
class ExES:
    """Post-hoc explainer for expert search and team formation systems."""

    network: CollaborationNetwork
    ranker: ExpertSearchSystem
    embedding: SkillEmbedding
    link_predictor: LinkPredictor
    former: Optional[TeamFormationSystem] = None
    k: int = 10
    factual_config: FactualConfig = field(default_factory=FactualConfig)
    beam_config: BeamConfig = field(default_factory=BeamConfig)
    # None -> the process-wide default registry: facade instances wrapping
    # the same system share engines, sessions, and traced team base runs.
    registry: Optional[EngineRegistry] = field(default=None, compare=False)
    _service: ExplanationService = field(
        init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self._service = ExplanationService(
            network=self.network,
            ranker=self.ranker,
            embedding=self.embedding,
            link_predictor=self.link_predictor,
            former=self.former,
            k=self.k,
            factual_config=self.factual_config,
            beam_config=self.beam_config,
            registry=self.registry,
        )
        self.registry = self._service.registry

    @property
    def service(self) -> ExplanationService:
        """The underlying long-lived explanation service."""
        return self._service

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        dataset: DatasetBundle,
        k: int = 10,
        embedding_dim: int = 32,
        ranker_config: Optional[GcnRankerConfig] = None,
        gae_config: Optional[GaeConfig] = None,
        factual_config: Optional[FactualConfig] = None,
        beam_config: Optional[BeamConfig] = None,
        seed: int = 0,
        ranker: Optional[ExpertSearchSystem] = None,
        registry: Optional[EngineRegistry] = None,
    ) -> "ExES":
        """Assemble and train the full paper stack on a dataset bundle.

        ``ranker=`` swaps the system under explanation: pass any
        :class:`ExpertSearchSystem` (e.g. the PageRank/HITS/TF-IDF
        baselines of Table 1) instead of training the default GCN.  All
        four shipped rankers carry delta-scoring sessions, so the probe
        engine explains any of them without materializing overlays.
        """
        embedding = train_ppmi_embedding(
            dataset.corpus.token_lists(), dim=embedding_dim, seed=seed
        )
        if ranker is None:
            ranker = GcnExpertRanker(
                embedding, ranker_config or GcnRankerConfig(seed=seed)
            ).fit(dataset.network)
        link_predictor = train_gae(
            dataset.network, gae_config or GaeConfig(seed=seed)
        )
        former = CoverTeamFormer(ranker)
        return cls(
            network=dataset.network,
            ranker=ranker,
            embedding=embedding,
            link_predictor=link_predictor,
            former=former,
            k=k,
            factual_config=factual_config or FactualConfig(),
            beam_config=beam_config or BeamConfig(),
            registry=registry,
        )

    # ------------------------------------------------------------------
    # targets & explainers (service delegations)
    # ------------------------------------------------------------------
    def target(
        self, team: bool = False, seed_member: Optional[int] = None
    ) -> DecisionTarget:
        """The decision being explained: relevance (default) or membership."""
        return self._service.target(team, seed_member)

    def set_full_rebuild(self, flag: bool) -> None:
        """Toggle the from-scratch escape hatch across the whole stack —
        the ranker's delta sessions *and* the former's team delta session —
        so parity tests and engine-off benchmarks flip one switch instead
        of chasing every system that might serve an overlay.  This
        network's probe engines are evicted from the registry too: their
        memos hold results computed under the previous setting, and an
        "engine-off" measurement must not be answered from a delta-path
        memo."""
        self._service.set_full_rebuild(flag)

    def probe_engine(
        self, team: bool = False, seed_member: Optional[int] = None
    ) -> ProbeEngine:
        """The shared, memoizing probe engine for the chosen target.

        Engines live in the :class:`~repro.service.registry.EngineRegistry`
        — keyed ``(base network version, ranker/former, target)`` with
        bounded LRU eviction — so the same engine (and its two-level
        probe memo) serves every explainer of this facade *and* any other
        facade or service wrapping the same system.  Overlay probes that
        miss the memo reach the ranker as overlays, so any ranker with a
        :class:`~repro.search.engine.DeltaSession` (all four shipped
        systems) serves them in O(Δ), never through ``materialize()`` —
        and team-membership probes additionally reach the former's
        :class:`~repro.team.engine.TeamDeltaSession`, which answers from
        the cached base formation run when the flips provably cannot
        change it and re-forms greedily on the overlay otherwise.  Probe
        groups are flushed through the ranker's batched delta paths
        (:meth:`ProbeEngine.probe_batch`): same-query groups through
        :meth:`~repro.search.engine.DeltaSession.scores_batch`, and
        same-overlay multi-query sweeps (SHAP coalition masks) through
        one :class:`~repro.search.engine.SharedProbeContext` with the
        overlay's patches computed once."""
        return self._service.engine(team, seed_member)

    def factual_explainer(
        self, team: bool = False, seed_member: Optional[int] = None
    ) -> FactualExplainer:
        """A factual explainer bound to the chosen decision target."""
        return self._service.factual_explainer(team, seed_member)

    def counterfactual_explainer(
        self, team: bool = False, seed_member: Optional[int] = None
    ) -> CounterfactualExplainer:
        """A counterfactual explainer bound to the chosen decision target."""
        return self._service.counterfactual_explainer(team, seed_member)

    # ------------------------------------------------------------------
    # bulk requests (service front door)
    # ------------------------------------------------------------------
    def explain(self, request: ExplainRequest) -> ExplainResponse:
        """Answer one typed :class:`ExplainRequest` through the service."""
        return self._service.explain(request)

    def explain_many(
        self,
        requests: Sequence[ExplainRequest],
        max_workers: Optional[int] = None,
        coalesce: bool = True,
    ) -> List[ExplainResponse]:
        """Answer a batch of requests through the service: sharded by
        decision target across a thread pool (``max_workers=1`` for the
        deterministic single-thread mode), identical requests coalesced,
        responses in request order."""
        return self._service.explain_many(
            requests, max_workers=max_workers, coalesce=coalesce
        )

    # ------------------------------------------------------------------
    # the underlying systems (convenience passthroughs)
    # ------------------------------------------------------------------
    def top_k(self, query: Iterable[str]) -> List[int]:
        """The experts the ranker returns for this query."""
        return self.ranker.top_k(query, self.network, self.k)

    def rank_of(self, person: int, query: Iterable[str]) -> int:
        """R_pi(q, G): this person's 1-based rank for the query."""
        return self.ranker.rank_of(person, query, self.network)

    def is_expert(self, person: int, query: Iterable[str]) -> bool:
        """C_pi(q, G) on the unperturbed inputs."""
        return self.rank_of(person, query) <= self.k

    def form_team(
        self, query: Iterable[str], seed_member: Optional[int] = None
    ) -> Team:
        """F(q, G): form a team, optionally pinned to a seed member."""
        if self.former is None:
            raise ValueError("no team formation system was configured")
        return self.former.form(query, self.network, seed_member=seed_member)

    # ------------------------------------------------------------------
    # factual explanations (§3.2)
    # ------------------------------------------------------------------
    def explain_skills(
        self,
        person: int,
        query: Iterable[str],
        team: bool = False,
        seed_member: Optional[int] = None,
    ) -> FactualExplanation:
        """SHAP over the neighborhood's skill assignments."""
        return self.factual_explainer(team, seed_member).explain_skills(
            person, query, self.network
        )

    def explain_query(
        self,
        person: int,
        query: Iterable[str],
        team: bool = False,
        seed_member: Optional[int] = None,
    ) -> FactualExplanation:
        """SHAP over the query keywords."""
        return self.factual_explainer(team, seed_member).explain_query(
            person, query, self.network
        )

    def explain_collaborations(
        self,
        person: int,
        query: Iterable[str],
        team: bool = False,
        seed_member: Optional[int] = None,
    ) -> FactualExplanation:
        """SHAP over the influential collaborations (Pruning Strategy 2)."""
        return self.factual_explainer(team, seed_member).explain_collaborations(
            person, query, self.network
        )

    # ------------------------------------------------------------------
    # counterfactual explanations (§3.3)
    # ------------------------------------------------------------------
    def counterfactual_skills(
        self,
        person: int,
        query: Iterable[str],
        team: bool = False,
        seed_member: Optional[int] = None,
    ) -> CounterfactualExplanation:
        """Skill perturbations that flip the decision: removal for current
        experts/members, addition for the rest (career advancement)."""
        explainer = self.counterfactual_explainer(team, seed_member)
        engine = self.probe_engine(team, seed_member)
        if engine.decide(person, frozenset(query), self.network):
            return explainer.explain_skill_removal(person, query, self.network)
        return explainer.explain_skill_addition(person, query, self.network)

    def counterfactual_query(
        self,
        person: int,
        query: Iterable[str],
        team: bool = False,
        seed_member: Optional[int] = None,
    ) -> CounterfactualExplanation:
        """Query augmentations that flip the decision (§3.3.2)."""
        return self.counterfactual_explainer(team, seed_member).explain_query_augmentation(
            person, query, self.network
        )

    def counterfactual_collaborations(
        self,
        person: int,
        query: Iterable[str],
        team: bool = False,
        seed_member: Optional[int] = None,
    ) -> CounterfactualExplanation:
        """Edge perturbations that flip the decision: removal for current
        experts/members, addition for the rest (§3.3.3)."""
        explainer = self.counterfactual_explainer(team, seed_member)
        engine = self.probe_engine(team, seed_member)
        if engine.decide(person, frozenset(query), self.network):
            return explainer.explain_link_removal(person, query, self.network)
        return explainer.explain_link_addition(person, query, self.network)
