"""The ExES facade: one object that explains an expert search or team
formation system (paper Figure 2).

Wiring an :class:`ExES` by hand gives full control::

    exes = ExES(network, ranker, embedding, link_predictor, former, k=10)

or let :meth:`ExES.build` assemble the full paper stack from a dataset
bundle: PPMI skill embeddings from the corpus (Pruning Strategy 4), a
trained GCN ranker (the system under explanation), a trained GAE link
predictor (Pruning Strategy 5), and the build-around-a-member team former.

Every explanation method takes ``team=`` / ``seed_member=`` so the same
calls explain either relevance status C (expert search) or membership
status M (team formation, §3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.datasets import DatasetBundle
from repro.embeddings.ppmi import train_ppmi_embedding
from repro.embeddings.similarity import SkillEmbedding
from repro.explain.candidates import LinkPredictor
from repro.explain.counterfactual import BeamConfig, CounterfactualExplainer
from repro.explain.explanation import CounterfactualExplanation, FactualExplanation
from repro.explain.factual import FactualConfig, FactualExplainer
from repro.explain.targets import DecisionTarget, MembershipTarget, RelevanceTarget
from repro.graph.network import CollaborationNetwork
from repro.linkpred.gae import GaeConfig, train_gae
from repro.search.base import ExpertSearchSystem
from repro.search.engine import ProbeEngine
from repro.search.gcn import GcnExpertRanker, GcnRankerConfig
from repro.team.base import Team, TeamFormationSystem
from repro.team.greedy import CoverTeamFormer


@dataclass
class ExES:
    """Post-hoc explainer for expert search and team formation systems."""

    network: CollaborationNetwork
    ranker: ExpertSearchSystem
    embedding: SkillEmbedding
    link_predictor: LinkPredictor
    former: Optional[TeamFormationSystem] = None
    k: int = 10
    factual_config: FactualConfig = field(default_factory=FactualConfig)
    beam_config: BeamConfig = field(default_factory=BeamConfig)
    # One probe engine per decision target, shared by every explainer this
    # facade hands out — beam search, SHAP value functions, and candidate
    # generation all stop re-scoring identical perturbed states.
    _engines: Dict[Tuple[bool, Optional[int]], ProbeEngine] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        dataset: DatasetBundle,
        k: int = 10,
        embedding_dim: int = 32,
        ranker_config: Optional[GcnRankerConfig] = None,
        gae_config: Optional[GaeConfig] = None,
        factual_config: Optional[FactualConfig] = None,
        beam_config: Optional[BeamConfig] = None,
        seed: int = 0,
        ranker: Optional[ExpertSearchSystem] = None,
    ) -> "ExES":
        """Assemble and train the full paper stack on a dataset bundle.

        ``ranker=`` swaps the system under explanation: pass any
        :class:`ExpertSearchSystem` (e.g. the PageRank/HITS/TF-IDF
        baselines of Table 1) instead of training the default GCN.  All
        four shipped rankers carry delta-scoring sessions, so the probe
        engine explains any of them without materializing overlays.
        """
        embedding = train_ppmi_embedding(
            dataset.corpus.token_lists(), dim=embedding_dim, seed=seed
        )
        if ranker is None:
            ranker = GcnExpertRanker(
                embedding, ranker_config or GcnRankerConfig(seed=seed)
            ).fit(dataset.network)
        link_predictor = train_gae(
            dataset.network, gae_config or GaeConfig(seed=seed)
        )
        former = CoverTeamFormer(ranker)
        return cls(
            network=dataset.network,
            ranker=ranker,
            embedding=embedding,
            link_predictor=link_predictor,
            former=former,
            k=k,
            factual_config=factual_config or FactualConfig(),
            beam_config=beam_config or BeamConfig(),
        )

    # ------------------------------------------------------------------
    # targets & explainers
    # ------------------------------------------------------------------
    def target(
        self, team: bool = False, seed_member: Optional[int] = None
    ) -> DecisionTarget:
        """The decision being explained: relevance (default) or membership."""
        if not team:
            return RelevanceTarget(self.ranker, self.k)
        if self.former is None:
            raise ValueError("no team formation system was configured")
        return MembershipTarget(self.former, seed_member=seed_member)

    def set_full_rebuild(self, flag: bool) -> None:
        """Toggle the from-scratch escape hatch across the whole stack —
        the ranker's delta sessions *and* the former's team delta session —
        so parity tests and engine-off benchmarks flip one switch instead
        of chasing every system that might serve an overlay.  The cached
        probe engines are dropped too: their memos hold results computed
        under the previous setting, and an "engine-off" measurement must
        not be answered from a delta-path memo."""
        self.ranker.full_rebuild = flag
        if self.former is not None:
            self.former.full_rebuild = flag
        self._engines.clear()

    def probe_engine(
        self, team: bool = False, seed_member: Optional[int] = None
    ) -> ProbeEngine:
        """The shared, memoizing probe engine for the chosen target.

        Overlay probes that miss the two-level memo (decisions keyed per
        person, score vectors keyed per ``(query, flips)`` so sibling
        explainers and other people's SHAP sweeps reuse each other's
        forwards) reach the ranker as overlays, so any ranker with a
        :class:`~repro.search.engine.DeltaSession` (all four shipped
        systems) serves them in O(Δ), never through ``materialize()`` —
        and team-membership probes additionally reach the former's
        :class:`~repro.team.engine.TeamDeltaSession`, which answers from
        the cached base formation run when the flips provably cannot
        change it and re-forms greedily on the overlay otherwise.  Probe
        groups are flushed through the ranker's batched delta paths
        (:meth:`ProbeEngine.probe_batch`): same-query groups through
        :meth:`~repro.search.engine.DeltaSession.scores_batch`, and
        same-overlay multi-query sweeps (SHAP coalition masks) through
        one :class:`~repro.search.engine.SharedProbeContext` with the
        overlay's patches computed once."""
        key = (team, seed_member)
        engine = self._engines.get(key)
        if engine is None or engine.base is not self.network:
            engine = ProbeEngine(self.target(team, seed_member), self.network)
            self._engines[key] = engine
        return engine

    def factual_explainer(
        self, team: bool = False, seed_member: Optional[int] = None
    ) -> FactualExplainer:
        """A factual explainer bound to the chosen decision target."""
        engine = self.probe_engine(team, seed_member)
        return FactualExplainer(engine.target, self.factual_config, engine=engine)

    def counterfactual_explainer(
        self, team: bool = False, seed_member: Optional[int] = None
    ) -> CounterfactualExplainer:
        """A counterfactual explainer bound to the chosen decision target."""
        engine = self.probe_engine(team, seed_member)
        return CounterfactualExplainer(
            engine.target,
            self.embedding,
            self.link_predictor,
            self.beam_config,
            engine=engine,
        )

    # ------------------------------------------------------------------
    # the underlying systems (convenience passthroughs)
    # ------------------------------------------------------------------
    def top_k(self, query: Iterable[str]) -> List[int]:
        """The experts the ranker returns for this query."""
        return self.ranker.top_k(query, self.network, self.k)

    def rank_of(self, person: int, query: Iterable[str]) -> int:
        """R_pi(q, G): this person's 1-based rank for the query."""
        return self.ranker.rank_of(person, query, self.network)

    def is_expert(self, person: int, query: Iterable[str]) -> bool:
        """C_pi(q, G) on the unperturbed inputs."""
        return self.rank_of(person, query) <= self.k

    def form_team(
        self, query: Iterable[str], seed_member: Optional[int] = None
    ) -> Team:
        """F(q, G): form a team, optionally pinned to a seed member."""
        if self.former is None:
            raise ValueError("no team formation system was configured")
        return self.former.form(query, self.network, seed_member=seed_member)

    # ------------------------------------------------------------------
    # factual explanations (§3.2)
    # ------------------------------------------------------------------
    def explain_skills(
        self,
        person: int,
        query: Iterable[str],
        team: bool = False,
        seed_member: Optional[int] = None,
    ) -> FactualExplanation:
        """SHAP over the neighborhood's skill assignments."""
        return self.factual_explainer(team, seed_member).explain_skills(
            person, query, self.network
        )

    def explain_query(
        self,
        person: int,
        query: Iterable[str],
        team: bool = False,
        seed_member: Optional[int] = None,
    ) -> FactualExplanation:
        """SHAP over the query keywords."""
        return self.factual_explainer(team, seed_member).explain_query(
            person, query, self.network
        )

    def explain_collaborations(
        self,
        person: int,
        query: Iterable[str],
        team: bool = False,
        seed_member: Optional[int] = None,
    ) -> FactualExplanation:
        """SHAP over the influential collaborations (Pruning Strategy 2)."""
        return self.factual_explainer(team, seed_member).explain_collaborations(
            person, query, self.network
        )

    # ------------------------------------------------------------------
    # counterfactual explanations (§3.3)
    # ------------------------------------------------------------------
    def counterfactual_skills(
        self,
        person: int,
        query: Iterable[str],
        team: bool = False,
        seed_member: Optional[int] = None,
    ) -> CounterfactualExplanation:
        """Skill perturbations that flip the decision: removal for current
        experts/members, addition for the rest (career advancement)."""
        explainer = self.counterfactual_explainer(team, seed_member)
        engine = self.probe_engine(team, seed_member)
        if engine.decide(person, frozenset(query), self.network):
            return explainer.explain_skill_removal(person, query, self.network)
        return explainer.explain_skill_addition(person, query, self.network)

    def counterfactual_query(
        self,
        person: int,
        query: Iterable[str],
        team: bool = False,
        seed_member: Optional[int] = None,
    ) -> CounterfactualExplanation:
        """Query augmentations that flip the decision (§3.3.2)."""
        return self.counterfactual_explainer(team, seed_member).explain_query_augmentation(
            person, query, self.network
        )

    def counterfactual_collaborations(
        self,
        person: int,
        query: Iterable[str],
        team: bool = False,
        seed_member: Optional[int] = None,
    ) -> CounterfactualExplanation:
        """Edge perturbations that flip the decision: removal for current
        experts/members, addition for the rest (§3.3.3)."""
        explainer = self.counterfactual_explainer(team, seed_member)
        engine = self.probe_engine(team, seed_member)
        if engine.decide(person, frozenset(query), self.network):
            return explainer.explain_link_removal(person, query, self.network)
        return explainer.explain_link_addition(person, query, self.network)
