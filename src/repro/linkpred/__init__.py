"""Link prediction over the collaboration network (Pruning Strategy 5).

ExES uses a Graph Auto-encoder (GAE, Kipf & Welling 2016) as a recommender
for plausible new collaborations, so that edge-addition counterfactuals only
explore promising edges.  This package implements the GAE on the numpy
autograd engine, plus classical heuristics (common neighbours, Jaccard,
Adamic–Adar) and a ranking-quality evaluation harness (AUC / average
precision over held-out edges) used to validate the models.
"""

from repro.linkpred.heuristics import (
    HeuristicLinkPredictor,
    adamic_adar,
    common_neighbors,
    jaccard_coefficient,
    preferential_attachment,
)
from repro.linkpred.gae import GaeConfig, GraphAutoencoder, train_gae
from repro.linkpred.evaluation import (
    LinkPredictionSplit,
    auc_score,
    average_precision,
    evaluate_predictor,
    split_edges,
)

__all__ = [
    "GaeConfig",
    "GraphAutoencoder",
    "HeuristicLinkPredictor",
    "LinkPredictionSplit",
    "adamic_adar",
    "auc_score",
    "average_precision",
    "common_neighbors",
    "evaluate_predictor",
    "jaccard_coefficient",
    "preferential_attachment",
    "split_edges",
    "train_gae",
]
