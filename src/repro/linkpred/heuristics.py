"""Classical link-prediction heuristics.

These serve both as baselines for validating the GAE and as a dependency-free
fallback predictor for the edge-addition pruning strategy.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

from repro.graph.network import CollaborationNetwork


def common_neighbors(network: CollaborationNetwork, u: int, v: int) -> float:
    """|N(u) ∩ N(v)|."""
    return float(len(network.neighbors(u) & network.neighbors(v)))


def jaccard_coefficient(network: CollaborationNetwork, u: int, v: int) -> float:
    """|N(u) ∩ N(v)| / |N(u) ∪ N(v)|."""
    nu, nv = network.neighbors(u), network.neighbors(v)
    union = len(nu | nv)
    if union == 0:
        return 0.0
    return len(nu & nv) / union


def adamic_adar(network: CollaborationNetwork, u: int, v: int) -> float:
    """Σ_{w ∈ N(u) ∩ N(v)} 1 / log(deg(w)) — discounts popular brokers."""
    total = 0.0
    for w in network.neighbors(u) & network.neighbors(v):
        deg = network.degree(w)
        if deg > 1:
            total += 1.0 / math.log(deg)
    return total


def preferential_attachment(network: CollaborationNetwork, u: int, v: int) -> float:
    """deg(u) * deg(v)."""
    return float(network.degree(u) * network.degree(v))


_HEURISTICS = {
    "common_neighbors": common_neighbors,
    "jaccard": jaccard_coefficient,
    "adamic_adar": adamic_adar,
    "preferential_attachment": preferential_attachment,
}


class HeuristicLinkPredictor:
    """A named heuristic behind the same interface as the GAE.

    >>> predictor = HeuristicLinkPredictor("adamic_adar")
    """

    def __init__(self, name: str = "adamic_adar") -> None:
        if name not in _HEURISTICS:
            raise ValueError(
                f"unknown heuristic {name!r}; choose from {sorted(_HEURISTICS)}"
            )
        self.name = name
        self._fn = _HEURISTICS[name]
        self._network: CollaborationNetwork | None = None

    def fit(self, network: CollaborationNetwork) -> "HeuristicLinkPredictor":
        """Heuristics are training-free; fit just binds the network."""
        self._network = network
        return self

    def score(self, u: int, v: int) -> float:
        if self._network is None:
            raise RuntimeError("call fit(network) before score()")
        return self._fn(self._network, u, v)

    def score_pairs(self, pairs: Iterable[Tuple[int, int]]) -> List[float]:
        return [self.score(u, v) for u, v in pairs]

    def top_candidates(
        self,
        anchor: int,
        pool: Iterable[int],
        topn: int,
    ) -> List[Tuple[Tuple[int, int], float]]:
        """Best ``topn`` non-existing edges between ``anchor`` and ``pool``."""
        if self._network is None:
            raise RuntimeError("call fit(network) before top_candidates()")
        net = self._network
        scored = [
            ((min(anchor, other), max(anchor, other)), self.score(anchor, other))
            for other in pool
            if other != anchor and not net.has_edge(anchor, other)
        ]
        scored.sort(key=lambda kv: (-kv[1], kv[0]))
        return scored[:topn]
