"""Graph Auto-encoder for link prediction (Kipf & Welling 2016).

Encoder: two GCN layers over the normalized adjacency produce node
embeddings Z; decoder: ``σ(z_u · z_v)`` scores the probability of an edge.
Trained with binary cross-entropy on observed edges against an equal number
of sampled non-edges, exactly the non-variational GAE the ExES paper cites
for Pruning Strategy 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.graph.network import CollaborationNetwork
from repro.nn.autograd import Tensor
from repro.nn.layers import GCNConv, Module
from repro.nn.losses import bce_with_logits
from repro.nn.optim import Adam


@dataclass(frozen=True)
class GaeConfig:
    """GAE architecture and training hyperparameters."""

    hidden_dim: int = 32
    embedding_dim: int = 16
    epochs: int = 120
    learning_rate: float = 0.02
    negative_ratio: float = 1.0
    seed: int = 0


class GraphAutoencoder(Module):
    """GCN encoder + inner-product decoder.

    Node input features are the skill incidence rows (so people with similar
    skills embed nearby even before structure is considered), or identity
    features when the network carries no skills.
    """

    def __init__(
        self,
        n_features: int,
        config: GaeConfig,
    ) -> None:
        rng = np.random.default_rng(config.seed)
        self.config = config
        self.conv1 = GCNConv(n_features, config.hidden_dim, rng=rng)
        self.conv2 = GCNConv(config.hidden_dim, config.embedding_dim, rng=rng)
        self._embeddings: Optional[np.ndarray] = None
        self._network: Optional[CollaborationNetwork] = None

    # ------------------------------------------------------------------
    # model
    # ------------------------------------------------------------------
    def encode(self, features: np.ndarray, adj_norm) -> Tensor:
        h = self.conv1(Tensor(features), adj_norm).relu()
        return self.conv2(h, adj_norm)

    @staticmethod
    def _features_for(network: CollaborationNetwork) -> np.ndarray:
        vocab = network.skill_vocabulary()
        if vocab:
            return np.asarray(network.skill_matrix().todense())
        return np.eye(network.n_people)

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, network: CollaborationNetwork) -> "GraphAutoencoder":
        """Train on the network's observed edges; caches node embeddings."""
        rng = np.random.default_rng(self.config.seed + 1)
        features = self._features_for(network)
        adj_norm = network.normalized_adjacency()
        edges = list(network.edges())
        if not edges:
            # Nothing to learn from: embeddings from a single forward pass.
            self._embeddings = self.encode(features, adj_norm).numpy().copy()
            self._network = network
            return self

        pos = np.asarray(edges, dtype=np.int64)
        n_neg = max(1, int(round(len(edges) * self.config.negative_ratio)))
        optimizer = Adam(self.parameters(), lr=self.config.learning_rate)

        for _ in range(self.config.epochs):
            neg = _sample_non_edges(network, n_neg, rng)
            us = np.concatenate([pos[:, 0], neg[:, 0]])
            vs = np.concatenate([pos[:, 1], neg[:, 1]])
            labels = np.concatenate([np.ones(len(pos)), np.zeros(len(neg))])

            optimizer.zero_grad()
            z = self.encode(features, adj_norm)
            logits = (z.rows(us) * z.rows(vs)).sum(axis=1)
            loss = bce_with_logits(logits, labels)
            loss.backward()
            optimizer.step()

        self._embeddings = self.encode(features, adj_norm).numpy().copy()
        self._network = network
        return self

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def embeddings(self) -> np.ndarray:
        if self._embeddings is None:
            raise RuntimeError("call fit(network) before requesting embeddings")
        return self._embeddings

    def score(self, u: int, v: int) -> float:
        """Edge probability σ(z_u · z_v) on the training network."""
        z = self.embeddings()
        logit = float(z[u] @ z[v])
        return 1.0 / (1.0 + np.exp(-np.clip(logit, -60, 60)))

    def score_pairs(self, pairs: Iterable[Tuple[int, int]]) -> List[float]:
        return [self.score(u, v) for u, v in pairs]

    def top_candidates(
        self,
        anchor: int,
        pool: Iterable[int],
        topn: int,
    ) -> List[Tuple[Tuple[int, int], float]]:
        """Most likely new collaborations between ``anchor`` and ``pool``.

        Existing edges are excluded — the predictor recommends additions.
        """
        if self._network is None:
            raise RuntimeError("call fit(network) before top_candidates()")
        net = self._network
        scored = [
            ((min(anchor, other), max(anchor, other)), self.score(anchor, other))
            for other in pool
            if other != anchor and not net.has_edge(anchor, other)
        ]
        scored.sort(key=lambda kv: (-kv[1], kv[0]))
        return scored[:topn]


def _sample_non_edges(
    network: CollaborationNetwork, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniformly sample ``count`` node pairs that are not edges."""
    n = network.n_people
    out: List[Tuple[int, int]] = []
    attempts = 0
    max_attempts = 50 * count + 100
    while len(out) < count and attempts < max_attempts:
        batch = max(count - len(out), 32)
        us = rng.integers(0, n, size=batch)
        vs = rng.integers(0, n, size=batch)
        for u, v in zip(us, vs):
            if len(out) >= count:
                break
            if u == v or network.has_edge(int(u), int(v)):
                continue
            out.append((int(u), int(v)))
        attempts += batch
    if not out:  # complete graph corner case
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(out, dtype=np.int64)


def train_gae(
    network: CollaborationNetwork, config: GaeConfig | None = None
) -> GraphAutoencoder:
    """Convenience constructor: build + fit a GAE on ``network``."""
    config = config or GaeConfig()
    n_features = len(network.skill_vocabulary()) or network.n_people
    return GraphAutoencoder(n_features, config).fit(network)
