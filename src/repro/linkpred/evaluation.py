"""Link-prediction evaluation: edge splits, AUC, and average precision."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.graph.network import CollaborationNetwork


@dataclass
class LinkPredictionSplit:
    """A train network plus held-out positive and sampled negative pairs."""

    train_network: CollaborationNetwork
    test_positives: List[Tuple[int, int]]
    test_negatives: List[Tuple[int, int]]


def split_edges(
    network: CollaborationNetwork,
    test_fraction: float = 0.1,
    seed: int = 0,
) -> LinkPredictionSplit:
    """Hold out a fraction of edges (kept nodes intact) plus negatives.

    The returned train network is a copy with test edges removed; negatives
    are uniformly sampled non-edges of the *original* network, one per
    held-out positive.
    """
    if not (0.0 < test_fraction < 1.0):
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    edges = list(network.edges())
    if len(edges) < 2:
        raise ValueError("need at least 2 edges to split")
    n_test = max(1, int(round(len(edges) * test_fraction)))
    order = rng.permutation(len(edges))
    test_idx = set(order[:n_test].tolist())

    train = network.copy()
    test_positives = []
    for i in sorted(test_idx):
        u, v = edges[i]
        train.remove_edge(u, v)
        test_positives.append((u, v))

    negatives: List[Tuple[int, int]] = []
    n = network.n_people
    seen = set(test_positives)
    attempts = 0
    while len(negatives) < len(test_positives) and attempts < 1000 * n_test:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        attempts += 1
        if u == v:
            continue
        pair = (min(u, v), max(u, v))
        if network.has_edge(*pair) or pair in seen:
            continue
        seen.add(pair)
        negatives.append(pair)
    return LinkPredictionSplit(train, test_positives, negatives)


def auc_score(positive_scores: Sequence[float], negative_scores: Sequence[float]) -> float:
    """Probability a random positive outscores a random negative (ties = 0.5)."""
    pos = np.asarray(positive_scores, dtype=np.float64)
    neg = np.asarray(negative_scores, dtype=np.float64)
    if pos.size == 0 or neg.size == 0:
        raise ValueError("both score lists must be non-empty")
    wins = (pos[:, None] > neg[None, :]).sum()
    ties = (pos[:, None] == neg[None, :]).sum()
    return float((wins + 0.5 * ties) / (pos.size * neg.size))


def average_precision(
    positive_scores: Sequence[float], negative_scores: Sequence[float]
) -> float:
    """Area under the precision-recall curve (step interpolation)."""
    scores = list(positive_scores) + list(negative_scores)
    labels = [1] * len(positive_scores) + [0] * len(negative_scores)
    order = sorted(range(len(scores)), key=lambda i: (-scores[i], labels[i]))
    hits = 0
    total_pos = len(positive_scores)
    if total_pos == 0:
        raise ValueError("need at least one positive")
    ap = 0.0
    for rank, idx in enumerate(order, start=1):
        if labels[idx] == 1:
            hits += 1
            ap += hits / rank
    return ap / total_pos


def evaluate_predictor(predictor, split: LinkPredictionSplit) -> Tuple[float, float]:
    """(AUC, AP) of a fitted predictor on a held-out split."""
    pos_scores = predictor.score_pairs(split.test_positives)
    neg_scores = predictor.score_pairs(split.test_negatives)
    return (
        auc_score(pos_scores, neg_scores),
        average_precision(pos_scores, neg_scores),
    )
