"""Cooperative execution budgets, delta-path bypass, and fault hooks.

This is the dependency-free substrate of the resilience runtime in
:mod:`repro.service`.  It lives at the package root because the *hook
sites* are in the probe layer (:mod:`repro.search.engine`,
:mod:`repro.team.engine`) — which the service layer imports, so the
service-side policy objects (admission control, circuit breakers, fault
injectors) cannot be imported from here without a cycle.  The contract:

* :class:`Budget` — one request's wall-clock deadline and probe-count
  allowance.  It is *cooperative*: nothing is interrupted; the probe
  layer calls :func:`check_budget` at flush granularity (one batched
  delta forward, one uncached probe) and a spent budget raises
  :class:`BudgetExceeded` there.  Explainers that accumulate partial
  state catch it and return their best-so-far answer; everything else
  lets it propagate to the service, which types the outcome.
* :func:`budget_scope` — installs a budget for the current thread.  No
  scope (or ``None``) means every check is a no-op, so code outside the
  service — and the deterministic no-deadline service mode — pays one
  thread-local read per flush and nothing else.
* :func:`delta_bypass` — a thread-local switch that makes
  ``_try_delta_scores`` / ``_try_delta_form`` and the engine's batch
  sessions answer ``None``, routing every probe through the plain
  ranker/former paths *with overlays kept visible* — the per-request
  equivalent of ``full_rebuild = True`` on the systems, without mutating
  shared flags under concurrent shards.  This is the reference tier of
  the service's degradation ladder.
* :func:`localized_scope` — installs a :class:`LocalizedSpec` for the
  current thread: probe scoring runs the sessions' *localized plans*
  (exact k-hop splices where the math allows, bounded-error forward-push
  PageRank where it doesn't — see ``DeltaSession.scores_localized``) and
  the spec accumulates the per-mode plan counts the service stamps onto
  the response.
* :func:`fault_point` — named no-op hooks in the probe layer.  A
  :func:`fault injector <install_fault_injector>` (see
  :mod:`repro.service.faults`) makes them raise, stall, or evict
  deterministically; without one they cost a single global read.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional


class BudgetExceeded(RuntimeError):
    """A cooperative cancellation: the active request budget is spent.

    ``reason`` is machine-readable: ``"deadline"`` (wall clock) or
    ``"probe_budget"`` (probe-count allowance).
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class Budget:
    """One request's execution allowance: a wall-clock deadline and/or a
    probe-count limit, checked cooperatively at probe-flush granularity.

    ``tripped`` records the first reason a check failed — the service
    reads it after dispatch to distinguish "completed" from "completed
    partially because the budget ran out" (a consumer caught the
    :class:`BudgetExceeded` and salvaged best-so-far state).
    """

    __slots__ = ("started", "deadline", "probe_limit", "probes", "tripped")

    def __init__(
        self,
        timeout_seconds: Optional[float] = None,
        probe_limit: Optional[int] = None,
    ) -> None:
        self.started = time.perf_counter()
        self.deadline = (
            self.started + timeout_seconds if timeout_seconds is not None else None
        )
        self.probe_limit = probe_limit
        self.probes = 0
        self.tripped: Optional[str] = None

    def expired_reason(self) -> Optional[str]:
        """The reason this budget is spent right now, or None."""
        if self.deadline is not None and time.perf_counter() > self.deadline:
            return "deadline"
        if self.probe_limit is not None and self.probes >= self.probe_limit:
            return "probe_budget"
        return None

    def poll(self) -> Optional[str]:
        """Record (and return) expiry without raising — for consumers
        that honor the deadline through their own clock checks (beam
        search) but still need ``tripped`` stamped for the service."""
        reason = self.expired_reason()
        if reason is not None and self.tripped is None:
            self.tripped = reason
        return reason

    def check(self) -> None:
        """Raise :class:`BudgetExceeded` if the budget is spent."""
        reason = self.poll()
        if reason is not None:
            raise BudgetExceeded(reason)

    def charge(self, n_probes: int) -> None:
        """Account ``n_probes`` system evaluations, then check.  Charged
        *before* the work: a spent budget stops the flush from starting,
        and the overshoot is bounded by one flush."""
        self.probes += n_probes
        self.check()

    def remaining_seconds(self) -> Optional[float]:
        if self.deadline is None:
            return None
        return self.deadline - time.perf_counter()

    def __repr__(self) -> str:
        return (
            f"Budget(deadline={self.deadline}, probe_limit={self.probe_limit}, "
            f"probes={self.probes}, tripped={self.tripped!r})"
        )


#: ``Deadline`` is the request-facing name; the mechanics are one object.
Deadline = Budget

_state = threading.local()


def active_budget() -> Optional[Budget]:
    """The budget installed for the current thread, if any."""
    return getattr(_state, "budget", None)


@contextmanager
def budget_scope(budget: Optional[Budget]) -> Iterator[Optional[Budget]]:
    """Install ``budget`` for the current thread (``None`` = no limits).
    Scopes nest; the innermost wins."""
    previous = getattr(_state, "budget", None)
    _state.budget = budget
    try:
        yield budget
    finally:
        _state.budget = previous


def check_budget(n_probes: int = 0) -> None:
    """Charge-and-check the active budget; a no-op without one.  This is
    the single call sprinkled through the probe layer."""
    budget = getattr(_state, "budget", None)
    if budget is not None:
        if n_probes:
            budget.charge(n_probes)
        else:
            budget.check()


# ---------------------------------------------------------------------------
# delta bypass: per-thread full-rebuild reference routing
# ---------------------------------------------------------------------------


def delta_bypassed() -> bool:
    """Is the current thread routing probes around the delta sessions?"""
    return getattr(_state, "delta_bypass", False)


@contextmanager
def delta_bypass() -> Iterator[None]:
    """Route every probe on this thread through the plain ranker/former
    paths with overlays kept visible — per-request ``full_rebuild``
    semantics (the parity reference), without touching the shared
    ``full_rebuild`` flags that other threads are reading."""
    previous = getattr(_state, "delta_bypass", False)
    _state.delta_bypass = True
    try:
        yield
    finally:
        _state.delta_bypass = previous


# ---------------------------------------------------------------------------
# localized probe plans: per-thread bounded-cone scoring
# ---------------------------------------------------------------------------


class LocalizedSpec:
    """One request's localized-probe policy plus its plan accounting.

    Installed through :func:`localized_scope`, read by the probe engine and
    the delta sessions' ``scores_localized`` paths: probes touch only the
    flips' k-hop cone where the math allows an exact splice, and run the
    bounded-error forward-push PageRank kernel where it does not.

    * ``epsilon`` — the l1 error allowance for sampled (forward-push)
      probes; every sampled plan reports a certified ``residual_bound <=
      epsilon`` and the worst one is surfaced in :meth:`summary`.
    * ``max_cone_fraction`` — cone-size ceiling as a fraction of the
      network; a probe whose touched cone exceeds it falls back to the
      exact global kernel (mode ``"global"``).

    ``record`` is thread-safe: the service's shards may score probes for
    one request on several threads.
    """

    __slots__ = (
        "epsilon",
        "max_cone_fraction",
        "exact",
        "sampled",
        "global_fallbacks",
        "max_residual_bound",
        "_lock",
    )

    def __init__(
        self,
        epsilon: float = 1e-6,
        max_cone_fraction: float = 1 / 3,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be > 0, got {epsilon}")
        if not (0 < max_cone_fraction <= 1):
            raise ValueError(
                f"max_cone_fraction must be in (0, 1], got {max_cone_fraction}"
            )
        self.epsilon = float(epsilon)
        self.max_cone_fraction = float(max_cone_fraction)
        self.exact = 0
        self.sampled = 0
        self.global_fallbacks = 0
        self.max_residual_bound = 0.0
        self._lock = threading.Lock()

    def record(self, plan) -> None:
        """Account one served plan (any object with ``mode`` and
        ``residual_bound`` attributes — see ``LocalizedPlan``)."""
        with self._lock:
            mode = plan.mode
            if mode == "exact":
                self.exact += 1
            elif mode == "sampled":
                self.sampled += 1
                bound = plan.residual_bound
                if bound is not None and bound > self.max_residual_bound:
                    self.max_residual_bound = bound
            else:
                self.global_fallbacks += 1

    def summary(self) -> dict:
        """The response-facing digest of what this scope served."""
        with self._lock:
            return {
                "epsilon": self.epsilon,
                "exact": self.exact,
                "sampled": self.sampled,
                "global": self.global_fallbacks,
                "max_residual_bound": self.max_residual_bound,
            }

    def __repr__(self) -> str:
        return (
            f"LocalizedSpec(epsilon={self.epsilon}, "
            f"exact={self.exact}, sampled={self.sampled}, "
            f"global={self.global_fallbacks})"
        )


def active_localized() -> Optional[LocalizedSpec]:
    """The localized-probe spec installed for the current thread, if any."""
    return getattr(_state, "localized", None)


@contextmanager
def localized_scope(spec: Optional[LocalizedSpec]) -> Iterator[Optional[LocalizedSpec]]:
    """Route this thread's probes through the sessions' localized plans
    (``None`` = global scoring).  Scopes nest; the innermost wins."""
    previous = getattr(_state, "localized", None)
    _state.localized = spec
    try:
        yield spec
    finally:
        _state.localized = previous


# ---------------------------------------------------------------------------
# fault-injection hook points
# ---------------------------------------------------------------------------

_injector = None


def install_fault_injector(injector) -> None:
    """Install (or with ``None`` remove) the process-wide fault injector
    consulted by :func:`fault_point`.  See :mod:`repro.service.faults`
    for the deterministic injector the chaos suite uses."""
    global _injector
    _injector = injector


@contextmanager
def fault_injection(injector) -> Iterator[None]:
    """Scoped :func:`install_fault_injector`."""
    global _injector
    previous = _injector
    _injector = injector
    try:
        yield
    finally:
        _injector = previous


def fault_point(site: str, key: tuple = (), engine=None) -> None:
    """A named hook in the probe layer.  With no injector installed this
    is one global read.  An installed injector may raise (session
    errors, stale base versions), sleep (slow probes), or mutate the
    passed ``engine`` (memo evictions) — deterministically, keyed on
    ``(site, key)`` so the same probe faults the same way every run."""
    injector = _injector
    if injector is not None:
        injector.fire(site, key, engine=engine)
