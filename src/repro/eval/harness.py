"""End-to-end experiment loops producing the rows of Tables 7–14.

A :class:`Case` is one explanation task: a person, a query, and the
decision target (relevance for expert search, membership for team
formation — the latter carries its per-case seed member).  The two
``run_*_experiment`` functions iterate cases, run ExES and the requested
exhaustive baselines, and aggregate latency / size / count / precision
exactly the way the paper reports them.

:func:`run_workload_experiment` is the service-era loop: the paper's
100-query workloads, expressed as typed requests (see
:mod:`repro.eval.workload`), run through
``ExplanationService.explain_many`` — single-threaded or sharded — and
aggregate per-kind latency plus end-to-end throughput.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.embeddings.similarity import SkillEmbedding
from repro.eval.metrics import (
    cf_precision,
    cf_precision_star,
    factual_precision_at_k,
    mean_ignoring_none,
)
from repro.explain.candidates import LinkPredictor
from repro.explain.counterfactual import BeamConfig, CounterfactualExplainer
from repro.explain.exhaustive import (
    ExhaustiveConfig,
    ExhaustiveCounterfactualExplainer,
    ExhaustiveFactualExplainer,
)
from repro.explain.explanation import CounterfactualExplanation, FactualExplanation
from repro.explain.factual import FactualConfig, FactualExplainer
from repro.explain.targets import DecisionTarget
from repro.graph.network import CollaborationNetwork


@dataclass(frozen=True)
class Case:
    """One explanation task."""

    person: int
    query: Tuple[str, ...]
    target: DecisionTarget
    label: str = ""  # expert / non_expert / member / non_member


def _mean(values: Sequence[float]) -> Optional[float]:
    vals = list(values)
    return sum(vals) / len(vals) if vals else None


# ---------------------------------------------------------------------------
# factual experiments (Tables 7, 9, 11, 13)
# ---------------------------------------------------------------------------


@dataclass
class FactualRow:
    """One row of a factual results table."""

    kind: str
    dataset: str
    n_cases: int
    latency_exes: Optional[float]
    size_exes: Optional[float]
    latency_baseline: Optional[float] = None
    size_baseline: Optional[float] = None
    precision_at_1: Optional[float] = None
    precision_at_5: Optional[float] = None


_FACTUAL_METHODS = {
    "skills": ("explain_skills", "explain_skills"),
    "query": ("explain_query", "explain_query"),
    "collaborations": ("explain_collaborations", "explain_collaborations"),
}


def run_factual_experiment(
    cases: Sequence[Case],
    network: CollaborationNetwork,
    kinds: Iterable[str] = ("skills", "query", "collaborations"),
    factual_config: Optional[FactualConfig] = None,
    exhaustive_config: Optional[ExhaustiveConfig] = None,
    with_baseline: bool = True,
    dataset_name: str = "",
) -> List[FactualRow]:
    """Run pruned (and optionally exhaustive) factual explanations.

    Query factuals have no exhaustive counterpart distinct from ExES
    (Table 4), so their baseline columns stay None even with
    ``with_baseline=True`` — matching the dashes in the paper's Table 7.
    """
    rows: List[FactualRow] = []
    for kind in kinds:
        if kind not in _FACTUAL_METHODS:
            raise ValueError(f"unknown factual kind: {kind!r}")
        exes_method, baseline_method = _FACTUAL_METHODS[kind]
        latencies: List[float] = []
        sizes: List[float] = []
        base_latencies: List[float] = []
        base_sizes: List[float] = []
        p1: List[Optional[float]] = []
        p5: List[Optional[float]] = []
        run_baseline = with_baseline and kind != "query"
        for case in cases:
            explainer = FactualExplainer(case.target, factual_config)
            pruned: FactualExplanation = getattr(explainer, exes_method)(
                case.person, case.query, network
            )
            latencies.append(pruned.elapsed_seconds)
            sizes.append(pruned.size)
            if run_baseline:
                baseline_explainer = ExhaustiveFactualExplainer(
                    case.target, exhaustive_config
                )
                full: FactualExplanation = getattr(
                    baseline_explainer, baseline_method
                )(case.person, case.query, network)
                base_latencies.append(full.elapsed_seconds)
                base_sizes.append(full.size)
                p1.append(factual_precision_at_k(pruned, full, 1))
                p5.append(factual_precision_at_k(pruned, full, 5))
        rows.append(
            FactualRow(
                kind=kind,
                dataset=dataset_name,
                n_cases=len(cases),
                latency_exes=_mean(latencies),
                size_exes=_mean(sizes),
                latency_baseline=_mean(base_latencies) if run_baseline else None,
                size_baseline=_mean(base_sizes) if run_baseline else None,
                precision_at_1=mean_ignoring_none(p1) if run_baseline else None,
                precision_at_5=mean_ignoring_none(p5) if run_baseline else None,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# counterfactual experiments (Tables 8, 10, 12, 14)
# ---------------------------------------------------------------------------


@dataclass
class BaselineAggregate:
    """Aggregated exhaustive-baseline results for one CF experiment."""

    latency: Optional[float]
    size: Optional[float]
    n_explanations: int
    precision: Optional[float]
    precision_star: Optional[float]


@dataclass
class CounterfactualRow:
    """One row of a counterfactual results table."""

    kind: str
    dataset: str
    n_cases: int
    latency_exes: Optional[float]
    size_exes: Optional[float]
    n_explanations_exes: int
    baselines: Dict[str, BaselineAggregate] = field(default_factory=dict)

    @property
    def precision(self) -> Optional[float]:
        """Precision against the primary baseline (first configured)."""
        for agg in self.baselines.values():
            return agg.precision
        return None


_CF_METHODS = {
    "skill_removal": "explain_skill_removal",
    "skill_addition": "explain_skill_addition",
    "query_augmentation": "explain_query_augmentation",
    "link_removal": "explain_link_removal",
    "link_addition": "explain_link_addition",
}

_CF_BASELINE_METHODS = {
    "skill_removal": "explain_skill_removal",
    "query_augmentation": "explain_query_augmentation",
    "link_removal": "explain_link_removal",
    "link_addition": "explain_link_addition",
}


def _run_baseline(
    name: str,
    kind: str,
    case: Case,
    network: CollaborationNetwork,
    embedding: SkillEmbedding,
    exhaustive_config: Optional[ExhaustiveConfig],
    t_for_neighborhood: int,
    radius_for_skills: int,
) -> CounterfactualExplanation:
    explainer = ExhaustiveCounterfactualExplainer(case.target, exhaustive_config)
    if kind == "skill_addition":
        if name == "N":
            return explainer.explain_skill_addition_neighborhood(
                case.person, case.query, network, embedding, t=t_for_neighborhood
            )
        if name == "S":
            return explainer.explain_skill_addition_skills(
                case.person, case.query, network, radius=radius_for_skills
            )
        raise ValueError(
            f"skill_addition baselines are 'N' and 'S', got {name!r}"
        )
    if name != "full":
        raise ValueError(f"{kind} has a single baseline 'full', got {name!r}")
    return getattr(explainer, _CF_BASELINE_METHODS[kind])(
        case.person, case.query, network
    )


def run_counterfactual_experiment(
    cases: Sequence[Case],
    network: CollaborationNetwork,
    kind: str,
    embedding: SkillEmbedding,
    link_predictor: LinkPredictor,
    beam_config: Optional[BeamConfig] = None,
    exhaustive_config: Optional[ExhaustiveConfig] = None,
    baselines: Sequence[str] = ("full",),
    dataset_name: str = "",
    t_for_neighborhood: int = 10,
    radius_for_skills: int = 1,
) -> CounterfactualRow:
    """Run one counterfactual explanation type over all cases.

    ``baselines`` is ``("full",)`` for most kinds and ``("N", "S")`` for
    skill addition (the paper's two partial exhaustive baselines); pass
    ``()`` to skip baselines entirely (latency-only runs).
    """
    if kind not in _CF_METHODS:
        raise ValueError(f"unknown counterfactual kind: {kind!r}")
    latencies: List[float] = []
    sizes: List[float] = []
    n_explanations = 0
    per_baseline: Dict[str, Dict[str, list]] = {
        name: {"latency": [], "size": [], "count": [], "p": [], "p_star": []}
        for name in baselines
    }
    for case in cases:
        explainer = CounterfactualExplainer(
            case.target, embedding, link_predictor, beam_config
        )
        pruned: CounterfactualExplanation = getattr(explainer, _CF_METHODS[kind])(
            case.person, case.query, network
        )
        latencies.append(pruned.elapsed_seconds)
        n_explanations += len(pruned.counterfactuals)
        if pruned.counterfactuals:
            sizes.extend(c.size for c in pruned.counterfactuals)
        for name in baselines:
            full = _run_baseline(
                name, kind, case, network, embedding, exhaustive_config,
                t_for_neighborhood, radius_for_skills,
            )
            bucket = per_baseline[name]
            bucket["latency"].append(full.elapsed_seconds)
            bucket["count"].append(len(full.counterfactuals))
            if full.counterfactuals:
                bucket["size"].extend(c.size for c in full.counterfactuals)
            bucket["p"].append(cf_precision(pruned, full))
            bucket["p_star"].append(cf_precision_star(pruned, full))

    aggregates = {
        name: BaselineAggregate(
            latency=_mean(bucket["latency"]),
            size=_mean(bucket["size"]),
            n_explanations=sum(bucket["count"]),
            precision=mean_ignoring_none(bucket["p"]),
            precision_star=mean_ignoring_none(bucket["p_star"]),
        )
        for name, bucket in per_baseline.items()
    }
    return CounterfactualRow(
        kind=kind,
        dataset=dataset_name,
        n_cases=len(cases),
        latency_exes=_mean(latencies),
        size_exes=_mean(sizes),
        n_explanations_exes=n_explanations,
        baselines=aggregates,
    )


# ---------------------------------------------------------------------------
# service workloads (explain_many over typed requests)
# ---------------------------------------------------------------------------


@dataclass
class WorkloadKindRow:
    """Per-kind aggregation of one service workload run."""

    kind: str
    n_requests: int
    n_errors: int
    n_coalesced: int
    latency_mean: Optional[float]  # over computed (non-coalesced) responses
    size_mean: Optional[float]  # attributions (factual) / CFs found (CF)


@dataclass
class WorkloadReport:
    """The outcome of one ``explain_many`` workload pass."""

    n_requests: int
    n_errors: int
    n_coalesced: int
    elapsed_seconds: float
    max_workers: int
    rows: List[WorkloadKindRow] = field(default_factory=list)
    # Typed-outcome tally (ok/degraded/timed_out/rejected/failed) from
    # the service's resilience runtime; all-ok workloads show {"ok": n}.
    outcomes: Dict[str, int] = field(default_factory=dict)
    # Probe-flush fusion activity this workload generated: engine flush
    # counters plus ``bus_*`` merge counters from the registry's flush
    # bus (empty for services without a registry flush bus).
    fusion: Dict[str, int] = field(default_factory=dict)
    # Per-request latency tail over computed responses
    # ({"p50": ..., "p95": ..., "p99": ...}) — the interactive-service
    # quality signal mean latency hides.
    latency_percentiles: Dict[str, Optional[float]] = field(default_factory=dict)

    @property
    def requests_per_second(self) -> float:
        return self.n_requests / self.elapsed_seconds if self.elapsed_seconds else 0.0


def aggregate_workload(
    responses: Sequence,
    elapsed: float,
    max_workers: int,
    fusion: Optional[Dict[str, int]] = None,
) -> WorkloadReport:
    """Aggregate one batch of typed responses into a
    :class:`WorkloadReport` — the shared tail of the local
    (:func:`run_workload_experiment`) and remote
    (:func:`run_remote_workload_experiment`) loops, so both report
    identical shapes from identical responses."""
    from repro.eval.workload import latency_percentiles, outcome_counts

    per_kind: Dict[str, Dict[str, list]] = {}
    for response in responses:
        bucket = per_kind.setdefault(
            response.request.kind,
            {"latency": [], "size": [], "n": 0, "errors": 0, "coalesced": 0},
        )
        bucket["n"] += 1
        if not response.ok:
            bucket["errors"] += 1
            continue
        if response.coalesced:
            # Re-served from an identical request's answer: its ~0s
            # elapsed would deflate the latency mean, so it only counts
            # toward throughput (and the coalesced tally).
            bucket["coalesced"] += 1
        else:
            bucket["latency"].append(response.elapsed_seconds)
        explanation = response.explanation
        size = getattr(explanation, "size", None)
        if size is None:
            counterfactuals = getattr(explanation, "counterfactuals", None)
            size = len(counterfactuals) if counterfactuals is not None else None
        if size is not None:
            bucket["size"].append(float(size))
    rows = [
        WorkloadKindRow(
            kind=kind,
            n_requests=bucket["n"],
            n_errors=bucket["errors"],
            n_coalesced=bucket["coalesced"],
            latency_mean=_mean(bucket["latency"]),
            size_mean=_mean(bucket["size"]),
        )
        for kind, bucket in sorted(per_kind.items())
    ]
    return WorkloadReport(
        n_requests=len(responses),
        n_errors=sum(row.n_errors for row in rows),
        n_coalesced=sum(row.n_coalesced for row in rows),
        elapsed_seconds=elapsed,
        max_workers=max_workers,
        rows=rows,
        outcomes=outcome_counts(responses),
        fusion=fusion or {},
        latency_percentiles=latency_percentiles(responses),
    )


def run_workload_experiment(
    service,
    requests: Sequence,
    max_workers: int = 1,
) -> WorkloadReport:
    """Run a typed request workload through the explanation service.

    ``max_workers=1`` is the deterministic single-thread mode; larger
    values shard independent decision targets across a thread pool.
    Per-request failures are counted, never raised — matching the
    service's degrade-per-request contract.
    """
    registry = getattr(service, "registry", None)
    flush_before: Dict[str, int] = {}
    if registry is not None and hasattr(registry, "flush_counters"):
        flush_before = registry.flush_counters()
    start = time.perf_counter()
    responses = service.explain_many(requests, max_workers=max_workers)
    elapsed = time.perf_counter() - start
    fusion: Dict[str, int] = {}
    if registry is not None and hasattr(registry, "flush_counters"):
        for name, value in registry.flush_counters().items():
            if name == "bus_max_fused":
                # A high-water mark, not a rate — report it as-is.
                fusion[name] = value
            else:
                fusion[name] = value - flush_before.get(name, 0)
    return aggregate_workload(responses, elapsed, max_workers, fusion)


def run_remote_workload_experiment(
    host: str,
    port: int,
    requests: Sequence,
    max_workers: int = 1,
    session: str = "",
) -> WorkloadReport:
    """The remote mirror of :func:`run_workload_experiment`: the same
    typed requests driven over a socket through
    :class:`~repro.serve.server.ExplanationServer`, aggregated into the
    same report shape.  ``fusion`` comes from the server's ``batch_end``
    summary (the counters live in the server process, not here);
    ``elapsed_seconds`` is client wall clock, so it includes the wire."""
    from repro.serve.client import run_remote_workload

    start = time.perf_counter()
    responses, summary = run_remote_workload(
        host, port, requests, max_workers=max_workers, session=session or None
    )
    elapsed = time.perf_counter() - start
    return aggregate_workload(
        responses, elapsed, max_workers, summary.get("fusion", {})
    )


def run_edit_storm_experiment(
    service,
    requests: Sequence,
    n_edits: int,
    max_workers: int = 1,
    edit_interval_seconds: float = 0.02,
    edit_skill: str = "__storm",
):
    """Run a workload while a background thread commits live base edits.

    The ``--edits`` axis of ``python -m repro workload``: while
    :func:`run_workload_experiment` drives the request traffic, a storm
    thread toggles the synthetic skill ``edit_skill`` on a rotating
    person and promotes each flip through ``service.commit`` — so
    commits genuinely race ``explain_many`` shards through the service's
    version gate, and every response still lands on exactly one base
    version.  The synthetic skill never appears in any query, so the
    rebased sessions keep their warm caches across every commit.

    Returns ``(report, commits)`` — the usual :class:`WorkloadReport`
    plus the :class:`~repro.service.service.CommitResult` list (fewer
    than ``n_edits`` when the workload finishes first).
    """
    import threading

    from repro.graph.overlay import NetworkOverlay

    network = service.network
    commits: List = []
    stop = threading.Event()

    def storm() -> None:
        for i in range(n_edits):
            if stop.is_set():
                break
            person = i % network.n_people
            overlay = NetworkOverlay(network)
            if edit_skill in network.skills(person):
                overlay.remove_skill(person, edit_skill)
            else:
                overlay.add_skill(person, edit_skill)
            commits.append(service.commit(overlay))
            stop.wait(edit_interval_seconds)

    thread = threading.Thread(target=storm, name="edit-storm", daemon=True)
    thread.start()
    try:
        report = run_workload_experiment(service, requests, max_workers=max_workers)
    finally:
        stop.set()
        thread.join()
    return report, commits
