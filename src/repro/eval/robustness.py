"""Explanation robustness — the paper's §5 future-work question, implemented.

    "Another extension could be to investigate explanation robustness:
     are similar individuals explained similarly in terms of their
     inclusion or exclusion in the list of top experts?"

Protocol: sample pairs of similar individuals (high skill-Jaccard plus
overlapping neighborhoods), explain both against the same query, and
measure how similar the explanations are:

* factual robustness — Jaccard overlap of the top-k attributed *skill
  names* (skills, not (person, skill) pairs, so the comparison is across
  individuals);
* counterfactual robustness — Jaccard overlap of the *perturbation
  vocabularies* (which skills/terms the counterfactuals manipulate).

A robust explainer gives overlapping explanations to interchangeable
people; a brittle one explains near-twins with disjoint stories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.explain.counterfactual import CounterfactualExplainer
from repro.explain.explanation import CounterfactualExplanation, FactualExplanation
from repro.explain.factual import FactualExplainer
from repro.explain.features import SkillAssignmentFeature
from repro.graph.network import CollaborationNetwork
from repro.graph.perturbations import (
    AddQueryTerm,
    AddSkill,
    RemoveQueryTerm,
    RemoveSkill,
)


def person_similarity(
    network: CollaborationNetwork, a: int, b: int
) -> float:
    """Similarity of two individuals: mean of skill-set Jaccard and
    neighborhood Jaccard."""
    sa, sb = network.skills(a), network.skills(b)
    na, nb = network.neighbors(a) - {b}, network.neighbors(b) - {a}
    skill_j = len(sa & sb) / len(sa | sb) if (sa or sb) else 0.0
    nbr_j = len(na & nb) / len(na | nb) if (na or nb) else 0.0
    return 0.5 * skill_j + 0.5 * nbr_j


def similar_pairs(
    network: CollaborationNetwork,
    min_similarity: float = 0.25,
    max_pairs: int = 20,
    seed: int = 0,
) -> List[Tuple[int, int, float]]:
    """Sample up to ``max_pairs`` individual pairs above the similarity
    threshold (candidates share at least one neighbor or one skill)."""
    rng = np.random.default_rng(seed)
    candidates: Set[Tuple[int, int]] = set()
    for p in network.people():
        for q in network.neighbors(p):
            for r in network.neighbors(q):
                if p < r:
                    candidates.add((p, r))
    scored = [
        (a, b, s)
        for a, b in candidates
        if (s := person_similarity(network, a, b)) >= min_similarity
    ]
    scored.sort(key=lambda t: (-t[2], t[0], t[1]))
    if len(scored) > max_pairs:
        idx = rng.choice(len(scored), size=max_pairs, replace=False)
        scored = [scored[i] for i in sorted(idx)]
    return scored


def _factual_skill_set(explanation: FactualExplanation, top: int) -> Set[str]:
    out: Set[str] = set()
    for a in explanation.top():
        if len(out) >= top:
            break
        if isinstance(a.feature, SkillAssignmentFeature) and abs(a.value) > 1e-9:
            out.add(a.feature.skill)
    return out


def factual_explanation_overlap(
    fx_a: FactualExplanation, fx_b: FactualExplanation, top: int = 5
) -> Optional[float]:
    """Jaccard overlap of the top attributed skill names."""
    sa, sb = _factual_skill_set(fx_a, top), _factual_skill_set(fx_b, top)
    if not sa and not sb:
        return None
    return len(sa & sb) / len(sa | sb)


def _cf_vocabulary(explanation: CounterfactualExplanation) -> Set[str]:
    vocab: Set[str] = set()
    for cf in explanation.counterfactuals:
        for p in cf.perturbations:
            if isinstance(p, (AddSkill, RemoveSkill)):
                vocab.add(p.skill)
            elif isinstance(p, (AddQueryTerm, RemoveQueryTerm)):
                vocab.add(p.term)
    return vocab


def counterfactual_explanation_overlap(
    cf_a: CounterfactualExplanation, cf_b: CounterfactualExplanation
) -> Optional[float]:
    """Jaccard overlap of the skill/term vocabularies the counterfactuals
    manipulate; None when neither side found anything."""
    va, vb = _cf_vocabulary(cf_a), _cf_vocabulary(cf_b)
    if not va and not vb:
        return None
    return len(va & vb) / len(va | vb)


@dataclass
class RobustnessReport:
    """Aggregated robustness over sampled similar pairs."""

    n_pairs: int
    mean_person_similarity: float
    factual_overlap: Optional[float]
    counterfactual_overlap: Optional[float]

    def as_text(self) -> str:
        def fmt(v):
            return "—" if v is None else f"{v:.2f}"

        return (
            f"explanation robustness over {self.n_pairs} similar pairs "
            f"(mean person similarity {self.mean_person_similarity:.2f}): "
            f"factual overlap {fmt(self.factual_overlap)}, "
            f"counterfactual overlap {fmt(self.counterfactual_overlap)}"
        )


def measure_robustness(
    factual: FactualExplainer,
    counterfactual: CounterfactualExplainer,
    network: CollaborationNetwork,
    query: Sequence[str],
    pairs: Sequence[Tuple[int, int, float]],
    top: int = 5,
) -> RobustnessReport:
    """Explain both members of every pair and aggregate overlaps.

    Skill factuals and skill counterfactuals are used (the explanation
    types whose feature spaces are comparable across individuals).
    """
    if not pairs:
        return RobustnessReport(0, 0.0, None, None)
    factual_overlaps: List[float] = []
    cf_overlaps: List[float] = []
    for a, b, _sim in pairs:
        fx_a = factual.explain_skills(a, query, network)
        fx_b = factual.explain_skills(b, query, network)
        overlap = factual_explanation_overlap(fx_a, fx_b, top=top)
        if overlap is not None:
            factual_overlaps.append(overlap)

        decide = counterfactual.target.decide
        cf_a = (
            counterfactual.explain_skill_removal(a, query, network)
            if decide(a, frozenset(query), network)
            else counterfactual.explain_skill_addition(a, query, network)
        )
        cf_b = (
            counterfactual.explain_skill_removal(b, query, network)
            if decide(b, frozenset(query), network)
            else counterfactual.explain_skill_addition(b, query, network)
        )
        overlap = counterfactual_explanation_overlap(cf_a, cf_b)
        if overlap is not None:
            cf_overlaps.append(overlap)
    return RobustnessReport(
        n_pairs=len(pairs),
        mean_person_similarity=float(np.mean([s for _, _, s in pairs])),
        factual_overlap=float(np.mean(factual_overlaps)) if factual_overlaps else None,
        counterfactual_overlap=float(np.mean(cf_overlaps)) if cf_overlaps else None,
    )
