"""Effectiveness metrics from §4.1 of the paper.

* **Precision@k** (factual): of ExES's top-k features by |SHAP|, the
  fraction that also receive a non-zero score from exhaustive search.
* **Precision** (counterfactual): the fraction of ExES's explanations whose
  size equals the minimal size found by exhaustive search.
* **Precision*** (counterfactual): within one perturbation of minimal.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.explain.explanation import CounterfactualExplanation, FactualExplanation
from repro.explain.features import Feature

_ZERO = 1e-9


def factual_precision_at_k(
    pruned: FactualExplanation,
    exhaustive: FactualExplanation,
    k: int,
) -> Optional[float]:
    """Precision@k of a pruned factual explanation against exhaustive SHAP.

    Returns None when the pruned explanation has no non-zero features to
    rank (undefined precision, skipped by the aggregators).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    exhaustive_nonzero: Dict[Feature, float] = {
        a.feature: a.value
        for a in exhaustive.attributions
        if abs(a.value) > _ZERO
    }
    top = [a for a in pruned.top(k) if abs(a.value) > _ZERO]
    if not top:
        return None
    hits = sum(1 for a in top if a.feature in exhaustive_nonzero)
    return hits / len(top)


def cf_precision(
    pruned: CounterfactualExplanation,
    baseline: CounterfactualExplanation,
) -> Optional[float]:
    """Fraction of ExES counterfactuals matching the baseline's minimal size.

    None when either side found nothing (no ground truth to compare with).
    """
    baseline_min = baseline.minimal_size
    if baseline_min is None or not pruned.counterfactuals:
        return None
    same = sum(1 for c in pruned.counterfactuals if c.size == baseline_min)
    return same / len(pruned.counterfactuals)


def cf_precision_star(
    pruned: CounterfactualExplanation,
    baseline: CounterfactualExplanation,
) -> Optional[float]:
    """Like :func:`cf_precision`, but sizes within +1 of minimal count."""
    baseline_min = baseline.minimal_size
    if baseline_min is None or not pruned.counterfactuals:
        return None
    near = sum(
        1 for c in pruned.counterfactuals if c.size <= baseline_min + 1
    )
    return near / len(pruned.counterfactuals)


def mean_ignoring_none(values: Sequence[Optional[float]]) -> Optional[float]:
    """Average of the defined entries; None if all are undefined."""
    defined = [v for v in values if v is not None]
    if not defined:
        return None
    return sum(defined) / len(defined)
