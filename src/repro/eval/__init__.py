"""Experiment harness reproducing the paper's evaluation (Section 4).

* :mod:`repro.eval.workload` — random 3–5 keyword queries and the
  expert / non-expert / team-member / non-member sampling of §4.2–4.3;
* :mod:`repro.eval.metrics` — Precision@k for factuals, Precision and
  Precision* for counterfactuals;
* :mod:`repro.eval.harness` — end-to-end experiment loops producing the
  rows of Tables 7–14;
* :mod:`repro.eval.sensitivity` — the parameter sweeps of Figure 9;
* :mod:`repro.eval.tables` — paper-style table formatting.
"""

from repro.eval.metrics import (
    cf_precision,
    cf_precision_star,
    factual_precision_at_k,
)
from repro.eval.workload import (
    ExplanationSubjects,
    TeamSubjects,
    latency_percentiles,
    outcome_counts,
    random_queries,
    sample_search_subjects,
    sample_team_subjects,
    search_requests,
    team_requests,
)
from repro.eval.harness import (
    Case,
    CounterfactualRow,
    FactualRow,
    WorkloadKindRow,
    WorkloadReport,
    aggregate_workload,
    run_counterfactual_experiment,
    run_factual_experiment,
    run_remote_workload_experiment,
    run_workload_experiment,
)
from repro.eval.robustness import (
    RobustnessReport,
    counterfactual_explanation_overlap,
    factual_explanation_overlap,
    measure_robustness,
    person_similarity,
    similar_pairs,
)
from repro.eval.sensitivity import SweepPoint, sweep_beam_size, sweep_candidates, sweep_radius, sweep_tau
from repro.eval.tables import (
    format_counterfactual_table,
    format_factual_table,
    format_sweep,
)

__all__ = [
    "Case",
    "CounterfactualRow",
    "ExplanationSubjects",
    "FactualRow",
    "RobustnessReport",
    "SweepPoint",
    "counterfactual_explanation_overlap",
    "factual_explanation_overlap",
    "measure_robustness",
    "person_similarity",
    "similar_pairs",
    "TeamSubjects",
    "cf_precision",
    "cf_precision_star",
    "factual_precision_at_k",
    "format_counterfactual_table",
    "format_factual_table",
    "format_sweep",
    "WorkloadKindRow",
    "WorkloadReport",
    "aggregate_workload",
    "latency_percentiles",
    "outcome_counts",
    "random_queries",
    "run_counterfactual_experiment",
    "run_factual_experiment",
    "run_remote_workload_experiment",
    "run_workload_experiment",
    "sample_search_subjects",
    "sample_team_subjects",
    "search_requests",
    "team_requests",
    "sweep_beam_size",
    "sweep_candidates",
    "sweep_radius",
    "sweep_tau",
]
