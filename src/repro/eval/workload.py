"""Query workloads and explanation-subject sampling (paper §4.1–4.3).

The paper generates 100 random queries of 3–5 keywords sampled uniformly
from the dataset's skill universe.  For expert search it then samples
experts from the top-k and non-experts ranked k+1..2k; for team formation
it forms a team around a random top-k expert and samples one member (to
explain inclusion) and one non-member from the seed's neighborhood (to
explain exclusion).

The ``*_requests`` builders turn sampled subjects into the typed
:class:`~repro.service.requests.ExplainRequest` lists the explanation
service consumes, so the paper's 100-query workloads run through
``ExplanationService.explain_many`` instead of one facade call at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.network import CollaborationNetwork
from repro.search.base import ExpertSearchSystem
from repro.service.requests import EXPLANATION_KINDS, ExplainRequest, make_requests
from repro.team.base import TeamFormationSystem


def random_queries(
    network: CollaborationNetwork,
    n_queries: int,
    seed: int = 0,
    terms: Tuple[int, int] = (3, 5),
) -> List[List[str]]:
    """``n_queries`` random keyword queries, 3–5 terms each by default."""
    lo, hi = terms
    if lo < 1 or hi < lo:
        raise ValueError(f"invalid term range ({lo}, {hi})")
    skills = sorted(network.skill_universe())
    if not skills:
        raise ValueError("network has no skills to query")
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(n_queries):
        n_terms = min(int(rng.integers(lo, hi + 1)), len(skills))
        picks = rng.choice(len(skills), size=n_terms, replace=False)
        queries.append([skills[i] for i in picks])
    return queries


@dataclass(frozen=True)
class ExplanationSubjects:
    """One expert-search explanation case: a query plus sampled subjects."""

    query: Tuple[str, ...]
    expert: Optional[int]  # ranked within top-k
    non_expert: Optional[int]  # ranked k+1 .. 2k


def sample_search_subjects(
    ranker: ExpertSearchSystem,
    network: CollaborationNetwork,
    queries: List[List[str]],
    k: int,
    seed: int = 0,
) -> List[ExplanationSubjects]:
    """Per query: one random top-k expert and one random k+1..2k non-expert."""
    rng = np.random.default_rng(seed)
    subjects = []
    for query in queries:
        results = ranker.evaluate(query, network)
        order = results.order
        top = [int(p) for p in order[:k] if results.scores[p] > 0]
        band = [int(p) for p in order[k : 2 * k] if results.scores[p] > 0]
        expert = int(rng.choice(top)) if top else None
        non_expert = int(rng.choice(band)) if band else None
        subjects.append(
            ExplanationSubjects(
                query=tuple(query), expert=expert, non_expert=non_expert
            )
        )
    return subjects


@dataclass(frozen=True)
class TeamSubjects:
    """One team-formation explanation case (paper §4.3)."""

    query: Tuple[str, ...]
    seed_member: int
    member: Optional[int]  # team member other than the seed (inclusion)
    non_member: Optional[int]  # seed-neighborhood node off the team (exclusion)


def sample_team_subjects(
    former: TeamFormationSystem,
    ranker: ExpertSearchSystem,
    network: CollaborationNetwork,
    queries: List[List[str]],
    k: int,
    seed: int = 0,
) -> List[TeamSubjects]:
    """Per query: build a team around a random top-k expert, then sample one
    member to explain inclusion and one seed-neighbor to explain exclusion."""
    rng = np.random.default_rng(seed)
    subjects = []
    for query in queries:
        results = ranker.evaluate(query, network)
        top = [int(p) for p in results.order[:k] if results.scores[p] > 0]
        if not top:
            continue
        seed_member = int(rng.choice(top))
        team = former.form(query, network, seed_member=seed_member)
        others = sorted(team.members - {seed_member})
        member = int(rng.choice(others)) if others else None
        outside = sorted(network.neighbors(seed_member) - team.members)
        non_member = int(rng.choice(outside)) if outside else None
        subjects.append(
            TeamSubjects(
                query=tuple(query),
                seed_member=seed_member,
                member=member,
                non_member=non_member,
            )
        )
    return subjects


# ---------------------------------------------------------------------------
# service workloads: subjects -> typed explanation requests
# ---------------------------------------------------------------------------


def search_requests(
    subjects: Sequence[ExplanationSubjects],
    kinds: Iterable[str] = EXPLANATION_KINDS,
    timeout_seconds: Optional[float] = None,
    probe_limit: Optional[int] = None,
    session: str = "",
) -> List[ExplainRequest]:
    """One request per (subject, kind) over sampled search subjects: the
    expert (explaining inclusion in the top-k) and the non-expert
    (explaining exclusion) each get every requested kind, tagged with
    their role for per-role aggregation.  ``timeout_seconds`` /
    ``probe_limit`` / ``session`` stamp every request with a budget and a
    caller identity for the service's resilience runtime (None/"" keeps
    the deterministic unlimited mode)."""
    kinds = tuple(kinds)
    requests: List[ExplainRequest] = []
    for subject in subjects:
        if subject.expert is not None:
            requests.extend(
                make_requests(
                    kinds, subject.expert, subject.query, tag="expert",
                    timeout_seconds=timeout_seconds, probe_limit=probe_limit,
                    session=session,
                )
            )
        if subject.non_expert is not None:
            requests.extend(
                make_requests(
                    kinds, subject.non_expert, subject.query, tag="non_expert",
                    timeout_seconds=timeout_seconds, probe_limit=probe_limit,
                    session=session,
                )
            )
    return requests


def team_requests(
    subjects: Sequence[TeamSubjects],
    kinds: Iterable[str] = EXPLANATION_KINDS,
    timeout_seconds: Optional[float] = None,
    probe_limit: Optional[int] = None,
    session: str = "",
) -> List[ExplainRequest]:
    """One membership request per (subject, kind): the sampled member
    (explaining inclusion) and the seed-neighborhood non-member
    (explaining exclusion), pinned to each case's seed member.  Budget
    and session stamping as in :func:`search_requests`."""
    kinds = tuple(kinds)
    requests: List[ExplainRequest] = []
    for subject in subjects:
        for person, tag in ((subject.member, "member"), (subject.non_member, "non_member")):
            if person is None:
                continue
            requests.extend(
                make_requests(
                    kinds, person, subject.query,
                    team=True, seed_member=subject.seed_member, tag=tag,
                    timeout_seconds=timeout_seconds, probe_limit=probe_limit,
                    session=session,
                )
            )
    return requests


def outcome_counts(responses: Iterable) -> dict:
    """Tally of response outcomes — the workload-level observability
    summary the bench's resilience row and experiment harness report."""
    counts: dict = {}
    for response in responses:
        outcome = getattr(response, "outcome", "ok")
        counts[outcome] = counts.get(outcome, 0) + 1
    return counts


def latency_percentiles(
    responses: Iterable, percentiles: Sequence[int] = (50, 95, 99)
) -> dict:
    """Per-request latency tail (``{"p50": ..., "p95": ..., "p99": ...}``)
    over *computed* responses.  Coalesced re-serves (~0s, answered from a
    duplicate) and admission sheds (rejected before any work) would
    flatter the tail, so both are excluded; timed-out and failed requests
    spent real wall clock and stay in.  All-None when nothing computed."""
    latencies = [
        float(r.elapsed_seconds)
        for r in responses
        if not getattr(r, "coalesced", False)
        and getattr(r, "outcome", "ok") != "rejected"
    ]
    if not latencies:
        return {f"p{int(p)}": None for p in percentiles}
    values = np.percentile(np.asarray(latencies, dtype=float), list(percentiles))
    return {f"p{int(p)}": float(v) for p, v in zip(percentiles, values)}
