"""Query workloads and explanation-subject sampling (paper §4.1–4.3).

The paper generates 100 random queries of 3–5 keywords sampled uniformly
from the dataset's skill universe.  For expert search it then samples
experts from the top-k and non-experts ranked k+1..2k; for team formation
it forms a team around a random top-k expert and samples one member (to
explain inclusion) and one non-member from the seed's neighborhood (to
explain exclusion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.graph.network import CollaborationNetwork
from repro.search.base import ExpertSearchSystem
from repro.team.base import TeamFormationSystem


def random_queries(
    network: CollaborationNetwork,
    n_queries: int,
    seed: int = 0,
    terms: Tuple[int, int] = (3, 5),
) -> List[List[str]]:
    """``n_queries`` random keyword queries, 3–5 terms each by default."""
    lo, hi = terms
    if lo < 1 or hi < lo:
        raise ValueError(f"invalid term range ({lo}, {hi})")
    skills = sorted(network.skill_universe())
    if not skills:
        raise ValueError("network has no skills to query")
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(n_queries):
        n_terms = min(int(rng.integers(lo, hi + 1)), len(skills))
        picks = rng.choice(len(skills), size=n_terms, replace=False)
        queries.append([skills[i] for i in picks])
    return queries


@dataclass(frozen=True)
class ExplanationSubjects:
    """One expert-search explanation case: a query plus sampled subjects."""

    query: Tuple[str, ...]
    expert: Optional[int]  # ranked within top-k
    non_expert: Optional[int]  # ranked k+1 .. 2k


def sample_search_subjects(
    ranker: ExpertSearchSystem,
    network: CollaborationNetwork,
    queries: List[List[str]],
    k: int,
    seed: int = 0,
) -> List[ExplanationSubjects]:
    """Per query: one random top-k expert and one random k+1..2k non-expert."""
    rng = np.random.default_rng(seed)
    subjects = []
    for query in queries:
        results = ranker.evaluate(query, network)
        order = results.order
        top = [int(p) for p in order[:k] if results.scores[p] > 0]
        band = [int(p) for p in order[k : 2 * k] if results.scores[p] > 0]
        expert = int(rng.choice(top)) if top else None
        non_expert = int(rng.choice(band)) if band else None
        subjects.append(
            ExplanationSubjects(
                query=tuple(query), expert=expert, non_expert=non_expert
            )
        )
    return subjects


@dataclass(frozen=True)
class TeamSubjects:
    """One team-formation explanation case (paper §4.3)."""

    query: Tuple[str, ...]
    seed_member: int
    member: Optional[int]  # team member other than the seed (inclusion)
    non_member: Optional[int]  # seed-neighborhood node off the team (exclusion)


def sample_team_subjects(
    former: TeamFormationSystem,
    ranker: ExpertSearchSystem,
    network: CollaborationNetwork,
    queries: List[List[str]],
    k: int,
    seed: int = 0,
) -> List[TeamSubjects]:
    """Per query: build a team around a random top-k expert, then sample one
    member to explain inclusion and one seed-neighbor to explain exclusion."""
    rng = np.random.default_rng(seed)
    subjects = []
    for query in queries:
        results = ranker.evaluate(query, network)
        top = [int(p) for p in results.order[:k] if results.scores[p] > 0]
        if not top:
            continue
        seed_member = int(rng.choice(top))
        team = former.form(query, network, seed_member=seed_member)
        others = sorted(team.members - {seed_member})
        member = int(rng.choice(others)) if others else None
        outside = sorted(network.neighbors(seed_member) - team.members)
        non_member = int(rng.choice(outside)) if outside else None
        subjects.append(
            TeamSubjects(
                query=tuple(query),
                seed_member=seed_member,
                member=member,
                non_member=non_member,
            )
        )
    return subjects
