"""Parameter-sensitivity sweeps — Figure 9 of the paper.

Each sweep varies one knob with the others at their §4.1 defaults and
measures the quantities plotted in the corresponding subfigure:

* 9a/9b — beam size b → latency / precision (skill removal, experts);
* 9c/9d — candidate count t → latency / precision (query augmentation,
  non-experts);
* 9e/9f/9g — neighborhood radius d → #explanations / latency / precision
  (skill addition, non-experts);
* 9h — SHAP threshold τ → collaboration factual explanation size.

Baselines (for precision) are computed once per case and shared across all
sweep points, since they do not depend on the swept parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.embeddings.similarity import SkillEmbedding
from repro.eval.harness import Case
from repro.eval.metrics import cf_precision, mean_ignoring_none
from repro.explain.candidates import LinkPredictor
from repro.explain.counterfactual import BeamConfig, CounterfactualExplainer
from repro.explain.exhaustive import (
    ExhaustiveConfig,
    ExhaustiveCounterfactualExplainer,
)
from repro.explain.explanation import CounterfactualExplanation
from repro.explain.factual import FactualConfig, FactualExplainer
from repro.graph.network import CollaborationNetwork


@dataclass(frozen=True)
class SweepPoint:
    """One point on a Figure 9 curve."""

    parameter: float
    latency: Optional[float]
    precision: Optional[float] = None
    n_explanations: Optional[int] = None
    size: Optional[float] = None


def _mean(values: Sequence[float]) -> Optional[float]:
    vals = list(values)
    return sum(vals) / len(vals) if vals else None


def _baseline_results(
    cases: Sequence[Case],
    network: CollaborationNetwork,
    kind: str,
    embedding: SkillEmbedding,
    exhaustive_config: Optional[ExhaustiveConfig],
    t_for_neighborhood: int = 10,
) -> List[CounterfactualExplanation]:
    out = []
    for case in cases:
        explainer = ExhaustiveCounterfactualExplainer(case.target, exhaustive_config)
        if kind == "skill_removal":
            out.append(
                explainer.explain_skill_removal(case.person, case.query, network)
            )
        elif kind == "query_augmentation":
            out.append(
                explainer.explain_query_augmentation(case.person, case.query, network)
            )
        elif kind == "skill_addition":
            out.append(
                explainer.explain_skill_addition_neighborhood(
                    case.person, case.query, network, embedding, t=t_for_neighborhood
                )
            )
        else:
            raise ValueError(f"unsupported sweep kind: {kind!r}")
    return out


def _sweep_cf(
    cases: Sequence[Case],
    network: CollaborationNetwork,
    kind: str,
    method_name: str,
    embedding: SkillEmbedding,
    link_predictor: LinkPredictor,
    base_config: BeamConfig,
    parameter_name: str,
    values: Sequence[float],
    exhaustive_config: Optional[ExhaustiveConfig],
) -> List[SweepPoint]:
    baselines = _baseline_results(
        cases, network, kind, embedding, exhaustive_config,
        t_for_neighborhood=base_config.n_candidates,
    )
    points: List[SweepPoint] = []
    for value in values:
        config = replace(base_config, **{parameter_name: int(value) if parameter_name != "timeout_seconds" else value})
        latencies: List[float] = []
        precisions: List[Optional[float]] = []
        count = 0
        for case, baseline in zip(cases, baselines):
            explainer = CounterfactualExplainer(
                case.target, embedding, link_predictor, config
            )
            result = getattr(explainer, method_name)(case.person, case.query, network)
            latencies.append(result.elapsed_seconds)
            count += len(result.counterfactuals)
            precisions.append(cf_precision(result, baseline))
        points.append(
            SweepPoint(
                parameter=float(value),
                latency=_mean(latencies),
                precision=mean_ignoring_none(precisions),
                n_explanations=count,
            )
        )
    return points


def sweep_beam_size(
    cases: Sequence[Case],
    network: CollaborationNetwork,
    embedding: SkillEmbedding,
    link_predictor: LinkPredictor,
    values: Sequence[int] = (10, 15, 20, 25, 30),
    base_config: Optional[BeamConfig] = None,
    exhaustive_config: Optional[ExhaustiveConfig] = None,
) -> List[SweepPoint]:
    """Figures 9a/9b: beam size b on skill-removal explanations (experts)."""
    return _sweep_cf(
        cases, network, "skill_removal", "explain_skill_removal",
        embedding, link_predictor, base_config or BeamConfig(),
        "beam_size", values, exhaustive_config,
    )


def sweep_candidates(
    cases: Sequence[Case],
    network: CollaborationNetwork,
    embedding: SkillEmbedding,
    link_predictor: LinkPredictor,
    values: Sequence[int] = (10, 20, 30, 40, 50, 60),
    base_config: Optional[BeamConfig] = None,
    exhaustive_config: Optional[ExhaustiveConfig] = None,
) -> List[SweepPoint]:
    """Figures 9c/9d: candidate count t on query augmentation (non-experts)."""
    return _sweep_cf(
        cases, network, "query_augmentation", "explain_query_augmentation",
        embedding, link_predictor, base_config or BeamConfig(),
        "n_candidates", values, exhaustive_config,
    )


def sweep_radius(
    cases: Sequence[Case],
    network: CollaborationNetwork,
    embedding: SkillEmbedding,
    link_predictor: LinkPredictor,
    values: Sequence[int] = (0, 1, 2, 3),
    base_config: Optional[BeamConfig] = None,
    exhaustive_config: Optional[ExhaustiveConfig] = None,
) -> List[SweepPoint]:
    """Figures 9e/9f/9g: neighborhood radius d on skill addition
    (non-experts): #explanations, latency, and precision vs the
    Exhaustive-neighborhood baseline."""
    return _sweep_cf(
        cases, network, "skill_addition", "explain_skill_addition",
        embedding, link_predictor, base_config or BeamConfig(),
        "radius", values, exhaustive_config,
    )


def sweep_tau(
    cases: Sequence[Case],
    network: CollaborationNetwork,
    values: Sequence[float] = (0.05, 0.1, 0.15),
    base_config: Optional[FactualConfig] = None,
) -> List[SweepPoint]:
    """Figure 9h: threshold τ → collaboration factual explanation size."""
    base = base_config or FactualConfig()
    points: List[SweepPoint] = []
    for tau in values:
        config = replace(base, tau=float(tau))
        latencies: List[float] = []
        sizes: List[float] = []
        for case in cases:
            explainer = FactualExplainer(case.target, config)
            result = explainer.explain_collaborations(
                case.person, case.query, network
            )
            latencies.append(result.elapsed_seconds)
            sizes.append(result.size)
        points.append(
            SweepPoint(
                parameter=float(tau),
                latency=_mean(latencies),
                size=_mean(sizes),
            )
        )
    return points
