"""Paper-style table formatting for experiment results."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.eval.harness import CounterfactualRow, FactualRow
from repro.eval.sensitivity import SweepPoint


def _fmt(value: Optional[float], digits: int = 2, width: int = 8) -> str:
    if value is None:
        return f"{'—':>{width}}"
    return f"{value:>{width}.{digits}f}"


def format_factual_table(rows: Sequence[FactualRow], title: str) -> str:
    """Latency + size table in the shape of the paper's Tables 7/11,
    with the precision columns of Tables 9/13 appended when present."""
    lines = [
        title,
        f"{'Features':<16} {'Dataset':<8} {'Lat ExES':>8} {'Lat Base':>8} "
        f"{'Sz ExES':>8} {'Sz Base':>8} {'P@1':>6} {'P@5':>6}",
        "-" * 74,
    ]
    for row in rows:
        lines.append(
            f"{row.kind:<16} {row.dataset:<8} "
            f"{_fmt(row.latency_exes)} {_fmt(row.latency_baseline)} "
            f"{_fmt(row.size_exes)} {_fmt(row.size_baseline)} "
            f"{_fmt(row.precision_at_1, 2, 6)} {_fmt(row.precision_at_5, 2, 6)}"
        )
    return "\n".join(lines)


def format_counterfactual_table(
    rows: Sequence[CounterfactualRow], title: str
) -> str:
    """Latency/size/#expl/precision table in the shape of Tables 8+10 (and
    12+14 for teams); skill-addition rows expand into their N and S
    baselines like the paper's nested cells."""
    lines = [
        title,
        f"{'Method':<22} {'Dataset':<8} {'Lat ExES':>8} {'Lat Base':>9} "
        f"{'Sz ExES':>8} {'Sz Base':>8} {'#ExES':>6} {'#Base':>6} "
        f"{'Prec':>6} {'Prec*':>6}",
        "-" * 96,
    ]
    for row in rows:
        if not row.baselines:
            lines.append(
                f"{row.kind:<22} {row.dataset:<8} {_fmt(row.latency_exes)} "
                f"{'—':>9} {_fmt(row.size_exes)} {'—':>8} "
                f"{row.n_explanations_exes:>6} {'—':>6} {'—':>6} {'—':>6}"
            )
            continue
        first = True
        for name, agg in row.baselines.items():
            label = row.kind if first else ""
            suffix = f"[{name}]" if name != "full" else ""
            lines.append(
                f"{(label + suffix):<22} {row.dataset if first else '':<8} "
                f"{_fmt(row.latency_exes) if first else ' ' * 8} "
                f"{_fmt(agg.latency, 2, 9)} "
                f"{_fmt(row.size_exes) if first else ' ' * 8} "
                f"{_fmt(agg.size)} "
                f"{row.n_explanations_exes if first else '':>6} "
                f"{agg.n_explanations:>6} "
                f"{_fmt(agg.precision, 2, 6)} {_fmt(agg.precision_star, 2, 6)}"
            )
            first = False
    return "\n".join(lines)


def format_sweep(points: Sequence[SweepPoint], title: str, parameter: str) -> str:
    """One Figure 9 curve as a table of points."""
    lines = [
        title,
        f"{parameter:>8} {'latency':>9} {'precision':>10} {'#expl':>6} {'size':>8}",
        "-" * 46,
    ]
    for p in points:
        n_expl = f"{p.n_explanations:>6}" if p.n_explanations is not None else f"{'—':>6}"
        lines.append(
            f"{p.parameter:>8.3g} {_fmt(p.latency, 3, 9)} "
            f"{_fmt(p.precision, 2, 10)} {n_expl} {_fmt(p.size, 2, 8)}"
        )
    return "\n".join(lines)
