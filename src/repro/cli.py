"""Command-line interface: ``python -m repro <command>``.

A headless equivalent of the paper's web app (Figure 2): generate a
dataset, rank experts, form teams, and produce factual/counterfactual
explanations from a shell.

Commands:

* ``stats``     — generate a dataset and print its Table-6 row
* ``rank``      — top-k experts for a query
* ``team``      — form a team for a query
* ``explain``   — factual + counterfactual explanations for one person
* ``workload``  — a paper-style random-query workload through the
  explanation service (``explain_many``), single-threaded or sharded;
  ``--remote HOST:PORT`` drives the same requests over a socket against
  a running ``serve`` instance instead
* ``serve``     — boot the asyncio serving front end (newline-delimited
  JSON frames over TCP; see :mod:`repro.serve`)

Example::

    python -m repro rank --dataset dblp --scale 0.02 --query graph mining
    python -m repro explain --dataset dblp --scale 0.02 \
        --query graph mining --person "Ada Lovelace" --json out.json
    python -m repro workload --dataset dblp --scale 0.01 \
        --queries 10 --workers 4 --kinds skills cf_skills
    python -m repro serve --dataset dblp --scale 0.01 --port 7821 &
    python -m repro workload --dataset dblp --scale 0.01 \
        --queries 10 --remote 127.0.0.1:7821
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.datasets import DatasetBundle, dblp_like, github_like
from repro.exes import ExES
from repro.explain.render import (
    render_counterfactuals,
    render_force_plot,
    render_team,
)
from repro.explain.serialize import counterfactual_to_dict, factual_to_dict
from repro.graph.stats import compute_stats


def _load_dataset(args: argparse.Namespace) -> DatasetBundle:
    maker = {"dblp": dblp_like, "github": github_like}[args.dataset]
    return maker(scale=args.scale, seed=args.seed)


def _resolve_person(network, spec: str) -> int:
    """Accept either a numeric id or a display name."""
    try:
        person = int(spec)
    except ValueError:
        return network.find_person(spec)
    if not (0 <= person < network.n_people):
        raise SystemExit(f"person id {person} out of range")
    return person


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=("dblp", "github"), default="dblp")
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=13)


def cmd_stats(args: argparse.Namespace) -> int:
    """Print the dataset's Table-6 row and connectivity summary."""
    dataset = _load_dataset(args)
    stats = compute_stats(dataset.network)
    print(stats.as_table_row(dataset.name))
    print(
        f"mean degree {stats.mean_degree:.1f}, max degree {stats.max_degree}, "
        f"components {stats.n_components} (largest {stats.largest_component})"
    )
    return 0


def cmd_rank(args: argparse.Namespace) -> int:
    """Print the top-k experts for the query."""
    dataset = _load_dataset(args)
    exes = ExES.build(dataset, k=args.k, seed=args.seed)
    results = exes.ranker.evaluate(args.query, dataset.network)
    for rank, person in enumerate(results.top_k(args.k), start=1):
        skills = ", ".join(sorted(dataset.network.skills(person))[:6])
        print(f"{rank:3d}. {dataset.network.name(person)}  ({skills})")
    return 0


def cmd_team(args: argparse.Namespace) -> int:
    """Form and print a team for the query."""
    dataset = _load_dataset(args)
    exes = ExES.build(dataset, k=args.k, seed=args.seed)
    seed_member: Optional[int] = None
    if args.seed_member is not None:
        seed_member = _resolve_person(dataset.network, args.seed_member)
    team = exes.form_team(args.query, seed_member=seed_member)
    print(render_team(team, dataset.network))
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Print factual + counterfactual explanations for one person."""
    dataset = _load_dataset(args)
    exes = ExES.build(dataset, k=args.k, seed=args.seed)
    network = dataset.network
    person = _resolve_person(network, args.person)

    rank = exes.rank_of(person, args.query)
    status = "an expert" if rank <= args.k else "not an expert"
    print(
        f"{network.name(person)} is ranked {rank} for {args.query} "
        f"({status} at k={args.k})\n"
    )
    factual = exes.explain_skills(person, args.query)
    print(render_force_plot(factual, network, top=args.top))
    print()
    cf_skills = exes.counterfactual_skills(person, args.query)
    print(render_counterfactuals(cf_skills, network, limit=args.top))
    print()
    cf_query = exes.counterfactual_query(person, args.query)
    print(render_counterfactuals(cf_query, network, limit=args.top))

    if args.json:
        payload = {
            "person": person,
            "name": network.name(person),
            "rank": rank,
            "factual_skills": factual_to_dict(factual),
            "counterfactual_skills": counterfactual_to_dict(cf_skills),
            "counterfactual_query": counterfactual_to_dict(cf_query),
        }
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=1)
        print(f"\nwrote {args.json}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Boot the asyncio serving front end over one built dataset."""
    import asyncio
    import signal

    from repro.serve import ExplanationServer, ServeConfig

    dataset = _load_dataset(args)
    exes = ExES.build(dataset, k=args.k, seed=args.seed)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        default_batch_workers=args.workers,
        max_batch_workers=max(args.workers, 4),
        spill_path=args.spill,
    )

    async def run() -> None:
        server = await ExplanationServer(exes.service, config).start()
        if args.spill and server.restore_stats is not None:
            restored = server.restore_stats
            if "skipped" in restored:
                print(f"spill restore skipped ({restored['skipped']})", flush=True)
            else:
                print(
                    f"spill restored {restored['sessions']} sessions, "
                    f"{restored['team_sessions']} team sessions, "
                    f"{restored['memo_entries']} memo entries",
                    flush=True,
                )
        # The readiness line CI (and shell scripts) wait for.
        print(
            f"serving {args.dataset} (scale={args.scale}, k={args.k}) "
            f"on {args.host}:{server.port}",
            flush=True,
        )
        # SIGTERM/SIGINT must reach shutdown() — that's what drains
        # in-flight batches and rewrites the --spill file, so a plain
        # `kill` leaves a warm registry behind for the next boot.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-unix event loop: fall back to KeyboardInterrupt
        serve_task = asyncio.ensure_future(server.serve_forever())
        stop_task = asyncio.ensure_future(stop.wait())
        try:
            await asyncio.wait(
                {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            serve_task.cancel()
            stop_task.cancel()
            await server.shutdown()
            print("drained and shut down", flush=True)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; drained and shut down", flush=True)
    return 0


def _parse_remote(spec: str):
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"--remote must be HOST:PORT, got {spec!r}")
    return host, int(port)


def cmd_workload(args: argparse.Namespace) -> int:
    """Run a random-query explanation workload through the service —
    in-process by default, over a socket with ``--remote``."""
    from repro.eval import (
        random_queries,
        run_workload_experiment,
        sample_search_subjects,
        sample_team_subjects,
        search_requests,
        team_requests,
    )
    from repro.eval.harness import (
        run_edit_storm_experiment,
        run_remote_workload_experiment,
    )

    dataset = _load_dataset(args)
    exes = ExES.build(dataset, k=args.k, seed=args.seed)
    network = dataset.network
    queries = random_queries(network, args.queries, seed=args.seed + 1)
    requests = search_requests(
        sample_search_subjects(exes.ranker, network, queries, args.k, seed=args.seed),
        kinds=args.kinds,
    )
    if args.team:
        requests += team_requests(
            sample_team_subjects(
                exes.former, exes.ranker, network, queries, args.k, seed=args.seed
            ),
            kinds=args.kinds,
        )
    where = f"remote {args.remote}" if args.remote else "in-process"
    print(
        f"{len(requests)} requests over {args.queries} queries "
        f"({', '.join(args.kinds)}; team={'on' if args.team else 'off'}), "
        f"max_workers={args.workers}, {where}"
        + (f", edits={args.edits}" if args.edits else "")
    )
    commits = []
    if args.remote:
        if args.edits:
            raise SystemExit("--edits runs in-process only (drop --remote)")
        host, port = _parse_remote(args.remote)
        report = run_remote_workload_experiment(
            host, port, requests, max_workers=args.workers, session=args.session
        )
    elif args.edits:
        report, commits = run_edit_storm_experiment(
            exes.service, requests, args.edits, max_workers=args.workers
        )
    else:
        report = run_workload_experiment(
            exes.service, requests, max_workers=args.workers
        )
    for row in report.rows:
        latency = f"{row.latency_mean:.3f}s" if row.latency_mean is not None else "-"
        size = f"{row.size_mean:.1f}" if row.size_mean is not None else "-"
        print(
            f"  {row.kind:>18}: {row.n_requests:4d} requests, "
            f"mean latency {latency}, mean size {size}, errors {row.n_errors}"
        )
    print(
        f"total: {report.n_requests} requests in {report.elapsed_seconds:.2f}s "
        f"({report.requests_per_second:.2f} req/s, {report.n_coalesced} "
        f"coalesced, {report.n_errors} errors)"
    )
    print(
        "outcomes: "
        + ", ".join(f"{k}={v}" for k, v in sorted(report.outcomes.items()))
    )
    if commits:
        retained = sum(c.stats.get("retained_memo_entries", 0) for c in commits)
        dropped = sum(c.stats.get("dropped_memo_entries", 0) for c in commits)
        print(
            f"edits: {len(commits)} commits landed mid-workload "
            f"(base v{commits[0].old_version} -> v{commits[-1].new_version}; "
            f"memo entries retained {retained}, dropped {dropped})"
        )
    tail = report.latency_percentiles
    if tail and tail.get("p50") is not None:
        print(
            "latency p50/p95/p99: "
            + "/".join(f"{tail[p]:.3f}s" for p in ("p50", "p95", "p99"))
        )
    if report.fusion:
        flushes = report.fusion.get("multi_flushes", 0) + report.fusion.get(
            "batch_flushes", 0
        )
        print(
            f"fusion: {flushes} probe flushes "
            f"({report.fusion.get('flushed_probes', 0)} probes), "
            f"{report.fusion.get('bus_merged_flushes', 0)} bus-merged "
            f"(max fused {report.fusion.get('bus_max_fused', 0)})"
        )
    if args.json:
        payload = {
            "n_requests": report.n_requests,
            "n_errors": report.n_errors,
            "n_coalesced": report.n_coalesced,
            "elapsed_seconds": report.elapsed_seconds,
            "max_workers": report.max_workers,
            "requests_per_second": report.requests_per_second,
            "rows": [vars(row) for row in report.rows],
            "fusion": report.fusion,
            "outcomes": report.outcomes,
            "latency_percentiles": report.latency_percentiles,
            "n_commits": len(commits),
        }
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=1)
        print(f"wrote {args.json}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description="ExES reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="dataset statistics (Table 6)")
    _add_common(p_stats)
    p_stats.set_defaults(fn=cmd_stats)

    p_rank = sub.add_parser("rank", help="top-k experts for a query")
    _add_common(p_rank)
    p_rank.add_argument("--query", nargs="+", required=True)
    p_rank.add_argument("--k", type=int, default=10)
    p_rank.set_defaults(fn=cmd_rank)

    p_team = sub.add_parser("team", help="form a team for a query")
    _add_common(p_team)
    p_team.add_argument("--query", nargs="+", required=True)
    p_team.add_argument("--k", type=int, default=10)
    p_team.add_argument("--seed-member", default=None)
    p_team.set_defaults(fn=cmd_team)

    p_explain = sub.add_parser("explain", help="explain one individual")
    _add_common(p_explain)
    p_explain.add_argument("--query", nargs="+", required=True)
    p_explain.add_argument("--person", required=True, help="person id or name")
    p_explain.add_argument("--k", type=int, default=10)
    p_explain.add_argument("--top", type=int, default=6)
    p_explain.add_argument("--json", default=None, help="write explanations to JSON")
    p_explain.set_defaults(fn=cmd_explain)

    p_workload = sub.add_parser(
        "workload", help="run an explanation workload through the service"
    )
    _add_common(p_workload)
    p_workload.add_argument("--queries", type=int, default=5)
    p_workload.add_argument("--k", type=int, default=10)
    from repro.service import EXPLANATION_KINDS

    p_workload.add_argument(
        "--kinds",
        nargs="+",
        choices=EXPLANATION_KINDS,
        default=["skills", "query", "cf_skills"],
        help="explanation kinds to request per subject",
    )
    p_workload.add_argument(
        "--team", action="store_true", help="include team-membership requests"
    )
    p_workload.add_argument(
        "--workers", type=int, default=1,
        help="thread-pool size for explain_many (1 = deterministic)",
    )
    p_workload.add_argument(
        "--edits", type=int, default=0, metavar="N",
        help="commit N live base edits racing the workload (in-process only)",
    )
    p_workload.add_argument("--json", default=None, help="write the report to JSON")
    p_workload.add_argument(
        "--remote", default=None, metavar="HOST:PORT",
        help="drive the workload over a socket against a running serve instance",
    )
    p_workload.add_argument(
        "--session", default="",
        help="session name for the remote connection (admission-control tenant)",
    )
    p_workload.set_defaults(fn=cmd_workload)

    p_serve = sub.add_parser(
        "serve", help="boot the asyncio serving front end (NDJSON over TCP)"
    )
    _add_common(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0, help="0 picks an ephemeral port"
    )
    p_serve.add_argument("--k", type=int, default=10)
    p_serve.add_argument(
        "--workers", type=int, default=1,
        help="default explain_many worker count per batch (1 = deterministic)",
    )
    p_serve.add_argument(
        "--spill", default=None, metavar="PATH",
        help="warm-registry spill file: restore on boot, rewrite on shutdown",
    )
    p_serve.set_defaults(fn=cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
