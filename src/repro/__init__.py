"""repro — a reproduction of "Explaining Expert Search and Team Formation
Systems with ExES" (ICDE 2025).

Public API tour:

* :class:`repro.ExES` — the explainer facade (factual + counterfactual).
* :mod:`repro.datasets` — DBLP-like / GitHub-like dataset presets.
* :mod:`repro.search` — expert search systems (GCN, PageRank, TF-IDF, HITS).
* :mod:`repro.team` — team formation systems.
* :mod:`repro.explain` — SHAP, beam-search counterfactuals, baselines.
* :mod:`repro.service` — the long-lived explanation service: typed
  requests, the shared engine registry, concurrent ``explain_many``.
* :mod:`repro.eval` — the experiment harness behind the paper's tables.

Quickstart::

    from repro import ExES
    from repro.datasets import dblp_like

    dataset = dblp_like(scale=0.02)
    exes = ExES.build(dataset, k=10)
    expert = exes.top_k(["graph", "mining"])[0]
    print(exes.explain_skills(expert, ["graph", "mining"]).top(5))
"""

from repro.exes import ExES
from repro.datasets import (
    DatasetBundle,
    dblp_like,
    figure1_network,
    github_like,
    toy_network,
)
from repro.graph.network import CollaborationNetwork
from repro.service import (
    EngineRegistry,
    ExplainRequest,
    ExplainResponse,
    ExplanationService,
)

__version__ = "1.1.0"

__all__ = [
    "CollaborationNetwork",
    "DatasetBundle",
    "EngineRegistry",
    "ExES",
    "ExplainRequest",
    "ExplainResponse",
    "ExplanationService",
    "dblp_like",
    "figure1_network",
    "github_like",
    "toy_network",
    "__version__",
]
