"""Perturbations of the (query, network) feature space.

ExES explains a decision by probing the underlying system with perturbed
inputs (Section 3.1 of the paper).  The feature space consists of the query
keywords, each (person, skill) assignment, and each collaboration edge.  A
*perturbation* is a small, declarative edit to that space; counterfactual
explanations are sets of perturbations that flip the system's decision.

Each perturbation knows how to apply itself, how to invert itself, and
whether it is a no-op against a given state — the latter matters because
beam search must not claim credit for "removing" a skill the person never
had.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple, Union

from repro.graph.network import CollaborationNetwork
from repro.graph.overlay import NetworkOverlay

Query = FrozenSet[str]


def as_query(terms: Iterable[str]) -> Query:
    """Normalize an iterable of keywords into the canonical query form."""
    return frozenset(terms)


@dataclass(frozen=True)
class AddSkill:
    """Attach ``skill`` to ``person``'s skill set."""

    person: int
    skill: str

    def is_applicable(self, network: CollaborationNetwork, query: Query) -> bool:
        return not network.has_skill(self.person, self.skill)

    def apply(self, network: CollaborationNetwork, query: Query) -> Query:
        network.add_skill(self.person, self.skill)
        return query

    def inverse(self) -> "RemoveSkill":
        return RemoveSkill(self.person, self.skill)

    def describe(self, network: CollaborationNetwork) -> str:
        return f"add skill {self.skill!r} to {network.name(self.person)}"


@dataclass(frozen=True)
class RemoveSkill:
    """Detach ``skill`` from ``person``'s skill set."""

    person: int
    skill: str

    def is_applicable(self, network: CollaborationNetwork, query: Query) -> bool:
        return network.has_skill(self.person, self.skill)

    def apply(self, network: CollaborationNetwork, query: Query) -> Query:
        network.remove_skill(self.person, self.skill)
        return query

    def inverse(self) -> AddSkill:
        return AddSkill(self.person, self.skill)

    def describe(self, network: CollaborationNetwork) -> str:
        return f"remove skill {self.skill!r} from {network.name(self.person)}"


@dataclass(frozen=True)
class AddEdge:
    """Create a collaboration between ``u`` and ``v``."""

    u: int
    v: int

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError(f"self loop perturbation on node {self.u}")
        if self.u > self.v:  # canonical order so equal edits hash equal
            u, v = self.v, self.u
            object.__setattr__(self, "u", u)
            object.__setattr__(self, "v", v)

    def is_applicable(self, network: CollaborationNetwork, query: Query) -> bool:
        return not network.has_edge(self.u, self.v)

    def apply(self, network: CollaborationNetwork, query: Query) -> Query:
        network.add_edge(self.u, self.v)
        return query

    def inverse(self) -> "RemoveEdge":
        return RemoveEdge(self.u, self.v)

    def describe(self, network: CollaborationNetwork) -> str:
        return f"add collaboration {network.name(self.u)} -- {network.name(self.v)}"


@dataclass(frozen=True)
class RemoveEdge:
    """Delete the collaboration between ``u`` and ``v``."""

    u: int
    v: int

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError(f"self loop perturbation on node {self.u}")
        if self.u > self.v:
            u, v = self.v, self.u
            object.__setattr__(self, "u", u)
            object.__setattr__(self, "v", v)

    def is_applicable(self, network: CollaborationNetwork, query: Query) -> bool:
        return network.has_edge(self.u, self.v)

    def apply(self, network: CollaborationNetwork, query: Query) -> Query:
        network.remove_edge(self.u, self.v)
        return query

    def inverse(self) -> AddEdge:
        return AddEdge(self.u, self.v)

    def describe(self, network: CollaborationNetwork) -> str:
        return f"remove collaboration {network.name(self.u)} -- {network.name(self.v)}"


@dataclass(frozen=True)
class AddQueryTerm:
    """Append ``term`` to the search query (query augmentation, §3.3.2)."""

    term: str

    def is_applicable(self, network: CollaborationNetwork, query: Query) -> bool:
        return self.term not in query

    def apply(self, network: CollaborationNetwork, query: Query) -> Query:
        return query | {self.term}

    def inverse(self) -> "RemoveQueryTerm":
        return RemoveQueryTerm(self.term)

    def describe(self, network: CollaborationNetwork) -> str:
        return f"add {self.term!r} to the query"


@dataclass(frozen=True)
class RemoveQueryTerm:
    """Drop ``term`` from the search query."""

    term: str

    def is_applicable(self, network: CollaborationNetwork, query: Query) -> bool:
        return self.term in query

    def apply(self, network: CollaborationNetwork, query: Query) -> Query:
        return query - {self.term}

    def inverse(self) -> AddQueryTerm:
        return AddQueryTerm(self.term)

    def describe(self, network: CollaborationNetwork) -> str:
        return f"remove {self.term!r} from the query"


Perturbation = Union[AddSkill, RemoveSkill, AddEdge, RemoveEdge, AddQueryTerm, RemoveQueryTerm]

_NETWORK_PERTURBATIONS = (AddSkill, RemoveSkill, AddEdge, RemoveEdge)


def touches_network(perturbation: Perturbation) -> bool:
    """True if the perturbation edits the graph (vs the query)."""
    return isinstance(perturbation, _NETWORK_PERTURBATIONS)


def apply_perturbations(
    network: CollaborationNetwork,
    query: Iterable[str],
    perturbations: Iterable[Perturbation],
    full_rebuild: bool = False,
) -> Tuple[CollaborationNetwork, Query]:
    """Apply a perturbation set without mutating the inputs.

    This is the ``Apply(perturbation, G, q)`` step of Algorithm 1 (line 10).
    The original network is never touched.  When at least one perturbation
    edits the graph, the result is a copy-on-write :class:`NetworkOverlay`
    recording just the flips — O(Δ) per probe instead of a deep copy — which
    also lets delta-aware rankers (see ``repro.search.engine``) skip the
    from-scratch feature/adjacency rebuild.  ``full_rebuild=True`` restores
    the seed behaviour (an independent deep copy) as an escape hatch and as
    the reference implementation for parity tests.

    Inapplicable perturbations (e.g. adding a skill the person already has)
    raise ``ValueError`` — silently skipping them would let beam search count
    no-ops toward explanation size.
    """
    q = as_query(query)
    perts = list(perturbations)
    needs_net = any(touches_network(p) for p in perts)
    if not needs_net:
        net = network
    elif full_rebuild:
        net = network.copy()  # an overlay's copy() materializes fully
    else:
        net = NetworkOverlay(network)  # flattens if network is an overlay
    for p in perts:
        if not p.is_applicable(net, q):
            raise ValueError(f"perturbation is a no-op in this state: {p}")
        q = p.apply(net, q)
    return net, q
