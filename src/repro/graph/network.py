"""The skill-labeled collaboration network at the heart of ExES.

The paper (Section 3.1) models a collaboration network ``G = (P, E)`` with
individuals ``P`` as nodes, undirected collaboration edges ``E``, and a skill
set ``S_i ⊂ S`` attached to every individual ``p_i``.  This module implements
that structure with:

* O(1) skill and adjacency membership tests (sets),
* cheap whole-network copies so counterfactual search can probe thousands of
  perturbed variants,
* version-stamped caches for the derived numpy/scipy artifacts the neural
  rankers need (adjacency CSR, normalized adjacency, skill incidence matrix).

Node identity is a dense integer id assigned at insertion time; a display
name is kept alongside for rendering and case studies.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np
import scipy.sparse as sp


@dataclass(frozen=True)
class BaseDelta:
    """The structured record of one committed base-network edit batch.

    Emitted by :meth:`~repro.graph.overlay.NetworkOverlay.commit` when an
    overlay's flips are promoted into the base network in place.  Delta
    sessions and registries consume it to *rebase* cached operators,
    features, and memos O(Δ) instead of cold-starting on the version bump:
    every field is in the canonical flip shape the overlay already exposes,
    sorted for deterministic iteration.

    ``skill_flips`` holds ``(person, skill, added)`` triples and
    ``edge_flips`` holds ``(u, v, added)`` with ``u < v`` — exactly the
    edits that turned base version ``old_version`` into ``new_version``.
    """

    old_version: int
    new_version: int
    skill_flips: Tuple[Tuple[int, str, bool], ...]
    edge_flips: Tuple[Tuple[int, int, bool], ...]

    @property
    def is_empty(self) -> bool:
        return not self.skill_flips and not self.edge_flips

    @property
    def touched_people(self) -> FrozenSet[int]:
        """Every person a flip touches directly (skill holder or edge
        endpoint) — the 0-hop dependency cone."""
        out: Set[int] = {p for p, _, _ in self.skill_flips}
        for u, v, _ in self.edge_flips:
            out.add(u)
            out.add(v)
        return frozenset(out)

    @property
    def skills_changed(self) -> FrozenSet[str]:
        """Skill names whose holder sets changed."""
        return frozenset(s for _, s, _ in self.skill_flips)

    def edge_pairs(self) -> Tuple[Tuple[int, int], ...]:
        """The flipped edges, endpoints only."""
        return tuple((u, v) for u, v, _ in self.edge_flips)


class CollaborationNetwork:
    """A mutable, undirected, node-labeled collaboration network.

    Example::

        net = CollaborationNetwork()
        a = net.add_person("Ada", {"databases", "xai"})
        b = net.add_person("Grace", {"compilers"})
        net.add_edge(a, b)
        assert net.has_edge(b, a)
        assert "xai" in net.skills(a)
    """

    __slots__ = ("_names", "_skills", "_adj", "_n_edges", "_version", "_cache", "_name_index")

    def __init__(self) -> None:
        self._names: List[str] = []
        self._skills: List[Set[str]] = []
        self._adj: List[Set[int]] = []
        self._n_edges: int = 0
        self._version: int = 0
        self._cache: Dict[str, Tuple[int, object]] = {}
        self._name_index: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_parts(
        cls,
        names: Sequence[str],
        skills: Sequence[Iterable[str]],
        edges: Iterable[Tuple[int, int]],
    ) -> "CollaborationNetwork":
        """Build a network from parallel name/skill sequences and an edge list."""
        if len(names) != len(skills):
            raise ValueError(
                f"names and skills must align: {len(names)} names vs {len(skills)} skill sets"
            )
        net = cls()
        for name, skill_set in zip(names, skills):
            net.add_person(name, skill_set)
        for u, v in edges:
            net.add_edge(u, v)
        return net

    def add_person(self, name: str, skills: Iterable[str] = ()) -> int:
        """Add an individual and return their integer id."""
        pid = len(self._names)
        self._names.append(name)
        self._skills.append(set(skills))
        self._adj.append(set())
        self._touch()
        self._name_index = None
        return pid

    def add_edge(self, u: int, v: int) -> bool:
        """Add an undirected collaboration edge; returns False if it existed."""
        self._check_pair(u, v)
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._n_edges += 1
        self._touch()
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Remove an undirected edge; returns False if it was absent."""
        self._check_pair(u, v)
        if v not in self._adj[u]:
            return False
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._n_edges -= 1
        self._touch()
        return True

    def add_skill(self, person: int, skill: str) -> bool:
        """Attach ``skill`` to ``person``; returns False if already present."""
        self._check_person(person)
        if skill in self._skills[person]:
            return False
        self._skills[person].add(skill)
        self._touch()
        return True

    def remove_skill(self, person: int, skill: str) -> bool:
        """Detach ``skill`` from ``person``; returns False if absent."""
        self._check_person(person)
        if skill not in self._skills[person]:
            return False
        self._skills[person].discard(skill)
        self._touch()
        return True

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n_people(self) -> int:
        """Number of individuals |P|."""
        return len(self._names)

    @property
    def n_edges(self) -> int:
        """Number of undirected edges |E|."""
        return self._n_edges

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every mutation (for cache keying)."""
        return self._version

    def people(self) -> range:
        """Iterate over all person ids."""
        return range(len(self._names))

    def name(self, person: int) -> str:
        self._check_person(person)
        return self._names[person]

    def find_person(self, name: str) -> int:
        """Return the id of the first person with this display name."""
        if self._name_index is None:
            index: Dict[str, int] = {}
            for pid, nm in enumerate(self._names):
                index.setdefault(nm, pid)
            self._name_index = index
        try:
            return self._name_index[name]
        except KeyError:
            raise KeyError(f"no person named {name!r}") from None

    def skills(self, person: int) -> FrozenSet[str]:
        """The skill set S_i of ``person`` (immutable view)."""
        self._check_person(person)
        return frozenset(self._skills[person])

    def has_skill(self, person: int, skill: str) -> bool:
        self._check_person(person)
        return skill in self._skills[person]

    def neighbors(self, person: int) -> FrozenSet[int]:
        """Direct collaborators of ``person``."""
        self._check_person(person)
        return frozenset(self._adj[person])

    def degree(self, person: int) -> int:
        self._check_person(person)
        return len(self._adj[person])

    def has_edge(self, u: int, v: int) -> bool:
        self._check_pair(u, v)
        return v in self._adj[u]

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate undirected edges once each, as (u, v) with u < v."""
        for u, nbrs in enumerate(self._adj):
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def skill_universe(self) -> FrozenSet[str]:
        """The universe of skills S actually attached to some node."""
        cached = self._cache_get("skill_universe")
        if cached is not None:
            return cached  # type: ignore[return-value]
        universe = frozenset(s for skills in self._skills for s in skills)
        self._cache_put("skill_universe", universe)
        return universe

    def total_skill_assignments(self) -> int:
        """Sum of |S_i| over all individuals (size of the skill relation)."""
        return sum(len(s) for s in self._skills)

    def people_with_skill(self, skill: str) -> FrozenSet[int]:
        """All individuals holding ``skill``."""
        index = self._cache_get("skill_index")
        if index is None:
            built: Dict[str, Set[int]] = {}
            for pid, skills in enumerate(self._skills):
                for s in skills:
                    built.setdefault(s, set()).add(pid)
            index = {s: frozenset(ids) for s, ids in built.items()}
            self._cache_put("skill_index", index)
        return index.get(skill, frozenset())  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    # neighborhoods (Pruning Strategy 1: network locality)
    # ------------------------------------------------------------------
    def neighborhood(self, person: int, radius: int) -> FrozenSet[int]:
        """N(p_i): nodes within BFS distance ``radius`` of ``person``, inclusive.

        The paper defines the neighborhood as the induced subgraph of nodes
        within a distance threshold ``d`` (Pruning Strategy 1); ``radius=0``
        is the singleton {p_i}, ``radius=1`` adds immediate collaborators.
        """
        self._check_person(person)
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        seen = {person}
        frontier = [person]
        for _ in range(radius):
            nxt: List[int] = []
            for u in frontier:
                for v in self._adj[u]:
                    if v not in seen:
                        seen.add(v)
                        nxt.append(v)
            if not nxt:
                break
            frontier = nxt
        return frozenset(seen)

    def neighborhood_skills(self, person: int, radius: int) -> FrozenSet[str]:
        """S_N(p_i): the union of skills held inside the ``radius``-neighborhood."""
        nodes = self.neighborhood(person, radius)
        out: Set[str] = set()
        for p in nodes:
            out.update(self._skills[p])
        return frozenset(out)

    def edges_within(self, nodes: Iterable[int]) -> List[Tuple[int, int]]:
        """Edges of the subgraph induced by ``nodes``, as (u, v) with u < v."""
        node_set = set(nodes)
        out: List[Tuple[int, int]] = []
        for u in sorted(node_set):
            for v in self._adj[u]:
                if u < v and v in node_set:
                    out.append((u, v))
        return out

    def incident_edges(self, person: int) -> List[Tuple[int, int]]:
        """Edges touching ``person``, each as (u, v) with u < v."""
        self._check_person(person)
        return [(min(person, v), max(person, v)) for v in sorted(self._adj[person])]

    def shortest_path_length(self, source: int, target: int) -> Optional[int]:
        """BFS hop distance, or None if disconnected."""
        self._check_pair_allow_equal(source, target)
        if source == target:
            return 0
        seen = {source}
        frontier = [source]
        dist = 0
        while frontier:
            dist += 1
            nxt: List[int] = []
            for u in frontier:
                for v in self._adj[u]:
                    if v == target:
                        return dist
                    if v not in seen:
                        seen.add(v)
                        nxt.append(v)
            frontier = nxt
        return None

    # ------------------------------------------------------------------
    # derived numpy / scipy artifacts (cached by version)
    # ------------------------------------------------------------------
    def skill_vocabulary(self) -> Tuple[str, ...]:
        """Sorted tuple of the skill universe; index positions are stable
        for a given network version."""
        cached = self._cache_get("skill_vocab")
        if cached is not None:
            return cached  # type: ignore[return-value]
        vocab = tuple(sorted(self.skill_universe()))
        self._cache_put("skill_vocab", vocab)
        return vocab

    def skill_vocabulary_index(self) -> Dict[str, int]:
        """Mapping skill -> column index in :meth:`skill_matrix`."""
        cached = self._cache_get("skill_vocab_index")
        if cached is not None:
            return cached  # type: ignore[return-value]
        index = {s: i for i, s in enumerate(self.skill_vocabulary())}
        self._cache_put("skill_vocab_index", index)
        return index

    def adjacency_csr(self) -> sp.csr_matrix:
        """Symmetric 0/1 adjacency matrix in CSR form."""
        cached = self._cache_get("adj_csr")
        if cached is not None:
            return cached  # type: ignore[return-value]
        n = self.n_people
        rows: List[int] = []
        cols: List[int] = []
        for u, nbrs in enumerate(self._adj):
            for v in nbrs:
                rows.append(u)
                cols.append(v)
        data = np.ones(len(rows), dtype=np.float64)
        mat = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
        self._cache_put("adj_csr", mat)
        return mat

    def normalized_adjacency(self) -> sp.csr_matrix:
        """Symmetrically normalized adjacency with self loops:
        ``D^-1/2 (A + I) D^-1/2`` — the GCN propagation operator."""
        cached = self._cache_get("adj_norm")
        if cached is not None:
            return cached  # type: ignore[return-value]
        n = self.n_people
        a_hat = self.adjacency_csr() + sp.identity(n, format="csr")
        deg = np.asarray(a_hat.sum(axis=1)).ravel()
        inv_sqrt = 1.0 / np.sqrt(np.maximum(deg, 1e-12))
        d_inv = sp.diags(inv_sqrt)
        mat = (d_inv @ a_hat @ d_inv).tocsr()
        self._cache_put("adj_norm", mat)
        return mat

    def skill_matrix(self, vocab_index: Optional[Dict[str, int]] = None) -> sp.csr_matrix:
        """Node-by-skill 0/1 incidence matrix.

        ``vocab_index`` maps skill string -> column; defaults to this
        network's own vocabulary.  Skills absent from the index are dropped,
        which lets perturbed networks (with added skills) be projected onto a
        base vocabulary.
        """
        if vocab_index is None:
            vocab_index = self.skill_vocabulary_index()
            cached = self._cache_get("skill_matrix_default")
            if cached is not None:
                return cached  # type: ignore[return-value]
            mat = self._build_skill_matrix(vocab_index)
            self._cache_put("skill_matrix_default", mat)
            return mat
        return self._build_skill_matrix(vocab_index)

    def _build_skill_matrix(self, vocab_index: Dict[str, int]) -> sp.csr_matrix:
        rows: List[int] = []
        cols: List[int] = []
        for pid, skills in enumerate(self._skills):
            for s in skills:
                col = vocab_index.get(s)
                if col is not None:
                    rows.append(pid)
                    cols.append(col)
        data = np.ones(len(rows), dtype=np.float64)
        return sp.csr_matrix(
            (data, (rows, cols)), shape=(self.n_people, len(vocab_index))
        )

    # ------------------------------------------------------------------
    # base-delta commits (dynamic networks)
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        skill_flips: Iterable[Tuple[int, str, bool]],
        edge_flips: Iterable[Tuple[int, int, bool]],
    ) -> "BaseDelta":
        """Apply a batch of canonical flips in place as ONE version bump.

        This is the commit primitive behind
        :meth:`~repro.graph.overlay.NetworkOverlay.commit`: each flip must
        be applicable against the current state (add only what is absent,
        remove only what is present — an overlay's recorded flips satisfy
        this by construction), all flips land atomically, and ``_version``
        advances exactly once so consumers see a single old→new delta
        rather than one bump per flip.  An empty batch is a no-op that
        does not bump the version.  Returns the :class:`BaseDelta`.
        """
        skill_flips = tuple(sorted(skill_flips))
        edge_flips = tuple(sorted(edge_flips))
        old_version = self._version
        if not skill_flips and not edge_flips:
            return BaseDelta(old_version, old_version, (), ())
        for person, skill, added in skill_flips:
            self._check_person(person)
            if (skill in self._skills[person]) == added:
                verb = "add" if added else "remove"
                raise ValueError(
                    f"inapplicable skill flip: cannot {verb} {skill!r} "
                    f"{'to' if added else 'from'} person {person}"
                )
        for u, v, added in edge_flips:
            self._check_pair(u, v)
            if (v in self._adj[u]) == added:
                verb = "add" if added else "remove"
                raise ValueError(
                    f"inapplicable edge flip: cannot {verb} edge ({u}, {v})"
                )
        for person, skill, added in skill_flips:
            if added:
                self._skills[person].add(skill)
            else:
                self._skills[person].discard(skill)
        for u, v, added in edge_flips:
            if added:
                self._adj[u].add(v)
                self._adj[v].add(u)
                self._n_edges += 1
            else:
                self._adj[u].discard(v)
                self._adj[v].discard(u)
                self._n_edges -= 1
        self._touch()
        return BaseDelta(old_version, self._version, skill_flips, edge_flips)

    def state_digest(self) -> str:
        """Content hash of names, skills, and edges (version-independent).

        Two networks with identical structure digest identically even if
        their mutation histories (and so ``version`` counters) differ —
        the binding key the registry spill/restore path uses to decide a
        serialized warm state still matches the live network.
        """
        h = hashlib.blake2b(digest_size=16)
        for name, skills in zip(self._names, self._skills):
            h.update(name.encode("utf-8"))
            h.update(b"\x00")
            for s in sorted(skills):
                h.update(s.encode("utf-8"))
                h.update(b"\x01")
            h.update(b"\x02")
        for u, nbrs in enumerate(self._adj):
            for v in sorted(nbrs):
                if u < v:
                    h.update(f"{u},{v};".encode("ascii"))
        return h.hexdigest()

    # ------------------------------------------------------------------
    # copies & export
    # ------------------------------------------------------------------
    def copy(self) -> "CollaborationNetwork":
        """Deep copy of names, skills and adjacency (caches are not copied)."""
        out = CollaborationNetwork()
        out._names = list(self._names)
        out._skills = [set(s) for s in self._skills]
        out._adj = [set(a) for a in self._adj]
        out._n_edges = self._n_edges
        return out

    def to_networkx(self):
        """Export to a ``networkx.Graph`` with ``name``/``skills`` attributes."""
        import networkx as nx

        g = nx.Graph()
        for pid in self.people():
            g.add_node(pid, name=self._names[pid], skills=frozenset(self._skills[pid]))
        g.add_edges_from(self.edges())
        return g

    def validate(self) -> None:
        """Check structural invariants; raises ValueError on corruption."""
        n = self.n_people
        if not (len(self._skills) == len(self._adj) == n):
            raise ValueError("parallel arrays out of sync")
        count = 0
        for u, nbrs in enumerate(self._adj):
            if u in nbrs:
                raise ValueError(f"self loop at node {u}")
            for v in nbrs:
                if not (0 <= v < n):
                    raise ValueError(f"edge endpoint {v} out of range")
                if u not in self._adj[v]:
                    raise ValueError(f"asymmetric edge ({u}, {v})")
                count += 1
        if count != 2 * self._n_edges:
            raise ValueError(
                f"edge count mismatch: counted {count // 2}, recorded {self._n_edges}"
            )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _touch(self) -> None:
        self._version += 1
        if self._cache:
            self._cache.clear()

    def _cache_get(self, key: str):
        entry = self._cache.get(key)
        if entry is not None and entry[0] == self._version:
            return entry[1]
        return None

    def _cache_put(self, key: str, value: object) -> None:
        self._cache[key] = (self._version, value)

    def _check_person(self, person: int) -> None:
        if not (0 <= person < len(self._names)):
            raise IndexError(f"person id {person} out of range [0, {len(self._names)})")

    def _check_pair(self, u: int, v: int) -> None:
        self._check_person(u)
        self._check_person(v)
        if u == v:
            raise ValueError(f"self loops are not allowed (node {u})")

    def _check_pair_allow_equal(self, u: int, v: int) -> None:
        self._check_person(u)
        self._check_person(v)

    def __repr__(self) -> str:
        return (
            f"CollaborationNetwork(n_people={self.n_people}, n_edges={self.n_edges}, "
            f"n_skills={len(self.skill_universe())})"
        )
