"""The skill-labeled collaboration network at the heart of ExES.

The paper (Section 3.1) models a collaboration network ``G = (P, E)`` with
individuals ``P`` as nodes, undirected collaboration edges ``E``, and a skill
set ``S_i ⊂ S`` attached to every individual ``p_i``.  This module implements
that structure with:

* O(1) skill and adjacency membership tests (sets),
* cheap whole-network copies so counterfactual search can probe thousands of
  perturbed variants,
* version-stamped caches for the derived numpy/scipy artifacts the neural
  rankers need (adjacency CSR, normalized adjacency, skill incidence matrix).

Node identity is a dense integer id assigned at insertion time; a display
name is kept alongside for rendering and case studies.

Storage modes
-------------

A network lives in one of two representations:

* **set mode** (the default): per-person Python sets for skills and
  adjacency.  O(1) membership, cheap in-place mutation — right for the
  interactive / dynamic-network path, but ~100 bytes per entry, which caps
  benches far below the million-node north star.
* **compact mode**: CSR arrays are the source of truth — ``_adj_indptr`` /
  ``_adj_indices`` for adjacency and ``_skill_indptr`` / ``_skill_ids``
  (integer ids into ``_skill_vocab``) for the skill relation.  The frozenset
  accessors (:meth:`skills`, :meth:`neighbors`, …) become lazy adapters that
  materialize one row on demand; membership tests are ``searchsorted`` on
  the sorted row.  Built by :meth:`from_csr` (the streaming generators) or
  :meth:`compact`.

Both modes answer every query identically (same digests, same derived
matrices, same iteration output).  Mutating a compact network *thaws* it
back to set mode first — an intentional densification: the scale path
treats bases as frozen, and commits ride the dynamic-network path.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np
import scipy.sparse as sp


@dataclass(frozen=True)
class BaseDelta:
    """The structured record of one committed base-network edit batch.

    Emitted by :meth:`~repro.graph.overlay.NetworkOverlay.commit` when an
    overlay's flips are promoted into the base network in place.  Delta
    sessions and registries consume it to *rebase* cached operators,
    features, and memos O(Δ) instead of cold-starting on the version bump:
    every field is in the canonical flip shape the overlay already exposes,
    sorted for deterministic iteration.

    ``skill_flips`` holds ``(person, skill, added)`` triples and
    ``edge_flips`` holds ``(u, v, added)`` with ``u < v`` — exactly the
    edits that turned base version ``old_version`` into ``new_version``.
    """

    old_version: int
    new_version: int
    skill_flips: Tuple[Tuple[int, str, bool], ...]
    edge_flips: Tuple[Tuple[int, int, bool], ...]

    @property
    def is_empty(self) -> bool:
        return not self.skill_flips and not self.edge_flips

    @property
    def touched_people(self) -> FrozenSet[int]:
        """Every person a flip touches directly (skill holder or edge
        endpoint) — the 0-hop dependency cone."""
        out: Set[int] = {p for p, _, _ in self.skill_flips}
        for u, v, _ in self.edge_flips:
            out.add(u)
            out.add(v)
        return frozenset(out)

    @property
    def skills_changed(self) -> FrozenSet[str]:
        """Skill names whose holder sets changed."""
        return frozenset(s for _, s, _ in self.skill_flips)

    def edge_pairs(self) -> Tuple[Tuple[int, int], ...]:
        """The flipped edges, endpoints only."""
        return tuple((u, v) for u, v, _ in self.edge_flips)


class CollaborationNetwork:
    """A mutable, undirected, node-labeled collaboration network.

    Example::

        net = CollaborationNetwork()
        a = net.add_person("Ada", {"databases", "xai"})
        b = net.add_person("Grace", {"compilers"})
        net.add_edge(a, b)
        assert net.has_edge(b, a)
        assert "xai" in net.skills(a)
    """

    __slots__ = (
        "_names",
        "_skills",
        "_adj",
        "_n_edges",
        "_version",
        "_cache",
        "_name_index",
        # compact-mode source of truth (None while in set mode)
        "_adj_indptr",
        "_adj_indices",
        "_skill_indptr",
        "_skill_ids",
        "_skill_vocab",
    )

    def __init__(self) -> None:
        self._names: List[str] = []
        self._skills: Optional[List[Set[str]]] = []
        self._adj: Optional[List[Set[int]]] = []
        self._n_edges: int = 0
        self._version: int = 0
        self._cache: Dict[str, Tuple[int, object]] = {}
        self._name_index: Optional[Dict[str, int]] = None
        self._adj_indptr: Optional[np.ndarray] = None
        self._adj_indices: Optional[np.ndarray] = None
        self._skill_indptr: Optional[np.ndarray] = None
        self._skill_ids: Optional[np.ndarray] = None
        self._skill_vocab: Optional[Tuple[str, ...]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_parts(
        cls,
        names: Sequence[str],
        skills: Sequence[Iterable[str]],
        edges: Iterable[Tuple[int, int]],
    ) -> "CollaborationNetwork":
        """Build a network from parallel name/skill sequences and an edge list."""
        if len(names) != len(skills):
            raise ValueError(
                f"names and skills must align: {len(names)} names vs {len(skills)} skill sets"
            )
        net = cls()
        for name, skill_set in zip(names, skills):
            net.add_person(name, skill_set)
        for u, v in edges:
            net.add_edge(u, v)
        return net

    @classmethod
    def from_csr(
        cls,
        names: Sequence[str],
        adj_indptr: np.ndarray,
        adj_indices: np.ndarray,
        skill_indptr: np.ndarray,
        skill_ids: np.ndarray,
        skill_vocab: Sequence[str],
    ) -> "CollaborationNetwork":
        """Build a network directly in compact mode from CSR arrays.

        ``adj_indptr``/``adj_indices`` is the symmetric adjacency in CSR
        layout (both directions present, no self loops);
        ``skill_indptr``/``skill_ids`` is the person→skill incidence with
        ids indexing ``skill_vocab``.  Rows are sorted internally, so
        callers may hand over unsorted per-row entries.  This is the
        streaming-generator entry point: no per-person Python set is ever
        materialized.
        """
        n = len(names)
        adj_indptr = np.ascontiguousarray(adj_indptr, dtype=np.int64)
        adj_indices = np.ascontiguousarray(adj_indices, dtype=np.int32)
        skill_indptr = np.ascontiguousarray(skill_indptr, dtype=np.int64)
        skill_ids = np.ascontiguousarray(skill_ids, dtype=np.int32)
        if adj_indptr.shape != (n + 1,) or skill_indptr.shape != (n + 1,):
            raise ValueError("indptr arrays must have length n_people + 1")
        if adj_indptr[-1] != len(adj_indices) or skill_indptr[-1] != len(skill_ids):
            raise ValueError("indptr terminal entry must match indices length")
        # Sort each row in place: row id ascending, then column ascending.
        adj_indices = _sort_rows(adj_indptr, adj_indices)
        skill_ids = _sort_rows(skill_indptr, skill_ids)
        net = cls()
        net._names = list(names)
        net._skills = None
        net._adj = None
        net._adj_indptr = adj_indptr
        net._adj_indices = adj_indices
        net._skill_indptr = skill_indptr
        net._skill_ids = skill_ids
        net._skill_vocab = tuple(skill_vocab)
        if len(adj_indices) % 2:
            raise ValueError("symmetric adjacency must have an even entry count")
        net._n_edges = len(adj_indices) // 2
        return net

    @property
    def is_compact(self) -> bool:
        """True when CSR arrays (not Python sets) are the source of truth."""
        return self._adj is None

    def compact(self) -> "CollaborationNetwork":
        """Convert to compact mode in place (no version bump — the content
        is identical) and return self.  No-op when already compact."""
        if self.is_compact:
            return self
        n = self.n_people
        vocab = self.skill_vocabulary()
        vocab_index = self.skill_vocabulary_index()
        adj_counts = np.fromiter(
            (len(a) for a in self._adj), dtype=np.int64, count=n
        )
        adj_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(adj_counts, out=adj_indptr[1:])
        adj_indices = np.empty(int(adj_indptr[-1]), dtype=np.int32)
        for u, nbrs in enumerate(self._adj):
            adj_indices[adj_indptr[u] : adj_indptr[u + 1]] = sorted(nbrs)
        skill_counts = np.fromiter(
            (len(s) for s in self._skills), dtype=np.int64, count=n
        )
        skill_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(skill_counts, out=skill_indptr[1:])
        skill_ids = np.empty(int(skill_indptr[-1]), dtype=np.int32)
        for p, skills in enumerate(self._skills):
            # vocab is sorted, so sorted names <=> sorted ids
            skill_ids[skill_indptr[p] : skill_indptr[p + 1]] = sorted(
                vocab_index[s] for s in skills
            )
        self._adj_indptr = adj_indptr
        self._adj_indices = adj_indices
        self._skill_indptr = skill_indptr
        self._skill_ids = skill_ids
        self._skill_vocab = vocab
        self._skills = None
        self._adj = None
        return self

    def _thaw(self) -> None:
        """Materialize per-person sets from the CSR arrays (compact →
        set mode) so a mutation can proceed.  Content-identical, so the
        version is NOT bumped; derived caches stay valid until the
        mutation itself calls :meth:`_touch`."""
        if not self.is_compact:
            return
        vocab = self._skill_vocab
        skill_indptr, skill_ids = self._skill_indptr, self._skill_ids
        adj_indptr, adj_indices = self._adj_indptr, self._adj_indices
        self._skills = [
            {vocab[i] for i in skill_ids[skill_indptr[p] : skill_indptr[p + 1]].tolist()}
            for p in range(self.n_people)
        ]
        self._adj = [
            set(adj_indices[adj_indptr[p] : adj_indptr[p + 1]].tolist())
            for p in range(self.n_people)
        ]
        self._adj_indptr = None
        self._adj_indices = None
        self._skill_indptr = None
        self._skill_ids = None
        self._skill_vocab = None

    def add_person(self, name: str, skills: Iterable[str] = ()) -> int:
        """Add an individual and return their integer id."""
        self._thaw()
        pid = len(self._names)
        self._names.append(name)
        self._skills.append(set(skills))
        self._adj.append(set())
        self._touch()
        self._name_index = None
        return pid

    def add_edge(self, u: int, v: int) -> bool:
        """Add an undirected collaboration edge; returns False if it existed."""
        self._check_pair(u, v)
        self._thaw()
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._n_edges += 1
        self._touch()
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Remove an undirected edge; returns False if it was absent."""
        self._check_pair(u, v)
        self._thaw()
        if v not in self._adj[u]:
            return False
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._n_edges -= 1
        self._touch()
        return True

    def add_skill(self, person: int, skill: str) -> bool:
        """Attach ``skill`` to ``person``; returns False if already present."""
        self._check_person(person)
        self._thaw()
        if skill in self._skills[person]:
            return False
        self._skills[person].add(skill)
        self._touch()
        return True

    def remove_skill(self, person: int, skill: str) -> bool:
        """Detach ``skill`` from ``person``; returns False if absent."""
        self._check_person(person)
        self._thaw()
        if skill not in self._skills[person]:
            return False
        self._skills[person].discard(skill)
        self._touch()
        return True

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n_people(self) -> int:
        """Number of individuals |P|."""
        return len(self._names)

    @property
    def n_edges(self) -> int:
        """Number of undirected edges |E|."""
        return self._n_edges

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every mutation (for cache keying)."""
        return self._version

    def people(self) -> range:
        """Iterate over all person ids."""
        return range(len(self._names))

    def name(self, person: int) -> str:
        self._check_person(person)
        return self._names[person]

    def find_person(self, name: str) -> int:
        """Return the id of the first person with this display name."""
        if self._name_index is None:
            index: Dict[str, int] = {}
            for pid, nm in enumerate(self._names):
                index.setdefault(nm, pid)
            self._name_index = index
        try:
            return self._name_index[name]
        except KeyError:
            raise KeyError(f"no person named {name!r}") from None

    def skills(self, person: int) -> FrozenSet[str]:
        """The skill set S_i of ``person`` (immutable view)."""
        self._check_person(person)
        if self.is_compact:
            s, e = self._skill_indptr[person], self._skill_indptr[person + 1]
            vocab = self._skill_vocab
            return frozenset(vocab[i] for i in self._skill_ids[s:e].tolist())
        return frozenset(self._skills[person])

    def has_skill(self, person: int, skill: str) -> bool:
        self._check_person(person)
        if self.is_compact:
            sid = self._vocab_lookup().get(skill)
            if sid is None:
                return False
            s, e = self._skill_indptr[person], self._skill_indptr[person + 1]
            row = self._skill_ids[s:e]
            j = np.searchsorted(row, sid)
            return bool(j < len(row) and row[j] == sid)
        return skill in self._skills[person]

    def neighbors(self, person: int) -> FrozenSet[int]:
        """Direct collaborators of ``person``."""
        self._check_person(person)
        if self.is_compact:
            s, e = self._adj_indptr[person], self._adj_indptr[person + 1]
            return frozenset(self._adj_indices[s:e].tolist())
        return frozenset(self._adj[person])

    def degree(self, person: int) -> int:
        self._check_person(person)
        if self.is_compact:
            return int(self._adj_indptr[person + 1] - self._adj_indptr[person])
        return len(self._adj[person])

    def has_edge(self, u: int, v: int) -> bool:
        self._check_pair(u, v)
        if self.is_compact:
            s, e = self._adj_indptr[u], self._adj_indptr[u + 1]
            row = self._adj_indices[s:e]
            j = np.searchsorted(row, v)
            return bool(j < len(row) and row[j] == v)
        return v in self._adj[u]

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate undirected edges once each, as (u, v) with u < v."""
        if self.is_compact:
            indptr, indices = self._adj_indptr, self._adj_indices
            for u in range(self.n_people):
                for v in indices[indptr[u] : indptr[u + 1]].tolist():
                    if u < v:
                        yield (u, v)
            return
        for u, nbrs in enumerate(self._adj):
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def skill_universe(self) -> FrozenSet[str]:
        """The universe of skills S actually attached to some node."""
        cached = self._cache_get("skill_universe")
        if cached is not None:
            return cached  # type: ignore[return-value]
        if self.is_compact:
            vocab = self._skill_vocab
            universe = frozenset(vocab[i] for i in np.unique(self._skill_ids).tolist())
        else:
            universe = frozenset(s for skills in self._skills for s in skills)
        self._cache_put("skill_universe", universe)
        return universe

    def total_skill_assignments(self) -> int:
        """Sum of |S_i| over all individuals (size of the skill relation)."""
        if self.is_compact:
            return len(self._skill_ids)
        return sum(len(s) for s in self._skills)

    def people_with_skill(self, skill: str) -> FrozenSet[int]:
        """All individuals holding ``skill``."""
        if self.is_compact:
            sid = self._vocab_lookup().get(skill)
            if sid is None:
                return frozenset()
            uniq, indptr, people = self._skill_csc_compact()
            j = np.searchsorted(uniq, sid)
            if j >= len(uniq) or uniq[j] != sid:
                return frozenset()
            return frozenset(people[indptr[j] : indptr[j + 1]].tolist())
        index = self._cache_get("skill_index")
        if index is None:
            built: Dict[str, Set[int]] = {}
            for pid, skills in enumerate(self._skills):
                for s in skills:
                    built.setdefault(s, set()).add(pid)
            index = {s: frozenset(ids) for s, ids in built.items()}
            self._cache_put("skill_index", index)
        return index.get(skill, frozenset())  # type: ignore[union-attr]

    def match_counts(self, query: Iterable[str]) -> np.ndarray:
        """Per-person count of query terms held, as float64.

        The O(nnz) building block behind restart vectors and lexical match
        bonuses: one incidence-column slice per term instead of a Python
        scan over holder sets.  Counts are exact small integers, so the
        result is bit-identical to the per-person loop it replaces.
        """
        out = np.zeros(self.n_people)
        if self.is_compact:
            lookup = self._vocab_lookup()
            uniq, indptr, people = self._skill_csc_compact()
            for term in query:
                sid = lookup.get(term)
                if sid is None:
                    continue
                j = np.searchsorted(uniq, sid)
                if j < len(uniq) and uniq[j] == sid:
                    out[people[indptr[j] : indptr[j + 1]]] += 1.0
            return out
        csc = self._cache_get("skill_csc")
        if csc is None:
            csc = self.skill_matrix().tocsc()
            self._cache_put("skill_csc", csc)
        vocab_index = self.skill_vocabulary_index()
        for term in query:
            col = vocab_index.get(term)
            if col is not None:
                out[csc.indices[csc.indptr[col] : csc.indptr[col + 1]]] += 1.0
        return out

    def _vocab_lookup(self) -> Dict[str, int]:
        """Compact mode: skill name -> id into ``_skill_vocab``."""
        cached = self._cache_get("compact_vocab_lookup")
        if cached is None:
            cached = {s: i for i, s in enumerate(self._skill_vocab)}
            self._cache_put("compact_vocab_lookup", cached)
        return cached  # type: ignore[return-value]

    def _skill_csc_compact(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Compact mode: the skill relation grouped by skill id —
        ``(unique_ids, group_indptr, people)`` so the holders of skill
        ``unique_ids[j]`` are ``people[group_indptr[j]:group_indptr[j+1]]``."""
        cached = self._cache_get("skill_csc_compact")
        if cached is None:
            counts = np.diff(self._skill_indptr)
            rows = np.repeat(np.arange(self.n_people, dtype=np.int64), counts)
            order = np.argsort(self._skill_ids, kind="stable")
            sids = self._skill_ids[order]
            people = rows[order]
            uniq, starts = np.unique(sids, return_index=True)
            indptr = np.append(starts, len(sids)).astype(np.int64)
            cached = (uniq, indptr, people)
            self._cache_put("skill_csc_compact", cached)
        return cached  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # neighborhoods (Pruning Strategy 1: network locality)
    # ------------------------------------------------------------------
    def _adjacency_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """(indptr, indices) of the symmetric adjacency, rows sorted —
        the compact arrays themselves, or a version-cached build from the
        set representation."""
        if self.is_compact:
            return self._adj_indptr, self._adj_indices
        cached = self._cache_get("adj_arrays")
        if cached is None:
            n = self.n_people
            counts = np.fromiter((len(a) for a in self._adj), dtype=np.int64, count=n)
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            indices = np.empty(int(indptr[-1]), dtype=np.int32)
            for u, nbrs in enumerate(self._adj):
                indices[indptr[u] : indptr[u + 1]] = sorted(nbrs)
            cached = (indptr, indices)
            self._cache_put("adj_arrays", cached)
        return cached  # type: ignore[return-value]

    def neighborhood_array(self, person: int, radius: int) -> np.ndarray:
        """N(p_i) as a sorted int64 id array — the O(cone) CSR frontier
        walk behind :meth:`neighborhood`.

        Visited marks live in a version-cached epoch array (one int64 per
        node, reused across calls without clearing), so a walk allocates
        only its own frontier/cone arrays: O(cone) work and memory, never
        O(n) per call.
        """
        self._check_person(person)
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        indptr, indices = self._adjacency_arrays()
        scratch = self._cache_get("nbh_scratch")
        if scratch is None:
            scratch = (
                threading.Lock(),
                np.full(self.n_people, -1, dtype=np.int64),
                [0],
            )
            self._cache_put("nbh_scratch", scratch)
        lock, epoch, counter = scratch
        with lock:
            counter[0] += 1
            cur = counter[0]
            epoch[person] = cur
            frontier = np.array([person], dtype=np.int64)
            layers = [frontier]
            for _ in range(radius):
                starts = indptr[frontier]
                lens = indptr[frontier + 1] - starts
                total = int(lens.sum())
                if total == 0:
                    break
                shifts = np.cumsum(lens)
                offsets = np.repeat(starts - np.concatenate(([0], shifts[:-1])), lens)
                nbrs = indices[offsets + np.arange(total, dtype=np.int64)]
                fresh = nbrs[epoch[nbrs] != cur]
                if fresh.size == 0:
                    break
                fresh = np.unique(fresh).astype(np.int64)
                epoch[fresh] = cur
                layers.append(fresh)
                frontier = fresh
            out = np.concatenate(layers) if len(layers) > 1 else layers[0]
        return np.sort(out)

    def neighborhood(self, person: int, radius: int) -> FrozenSet[int]:
        """N(p_i): nodes within BFS distance ``radius`` of ``person``, inclusive.

        The paper defines the neighborhood as the induced subgraph of nodes
        within a distance threshold ``d`` (Pruning Strategy 1); ``radius=0``
        is the singleton {p_i}, ``radius=1`` adds immediate collaborators.
        """
        return frozenset(self.neighborhood_array(person, radius).tolist())

    def neighborhood_skills(self, person: int, radius: int) -> FrozenSet[str]:
        """S_N(p_i): the union of skills held inside the ``radius``-neighborhood."""
        nodes = self.neighborhood_array(person, radius)
        if self.is_compact:
            indptr, ids, vocab = self._skill_indptr, self._skill_ids, self._skill_vocab
            chunks = [ids[indptr[p] : indptr[p + 1]] for p in nodes.tolist()]
            if not chunks:
                return frozenset()
            used = np.unique(np.concatenate(chunks)) if chunks else np.empty(0)
            return frozenset(vocab[i] for i in used.tolist())
        out: Set[str] = set()
        for p in nodes.tolist():
            out.update(self._skills[p])
        return frozenset(out)

    def edges_within(self, nodes: Iterable[int]) -> List[Tuple[int, int]]:
        """Edges of the subgraph induced by ``nodes``, as (u, v) with u < v."""
        node_set = set(nodes)
        out: List[Tuple[int, int]] = []
        for u in sorted(node_set):
            for v in self._sorted_neighbors(u):
                if u < v and v in node_set:
                    out.append((u, v))
        return out

    def incident_edges(self, person: int) -> List[Tuple[int, int]]:
        """Edges touching ``person``, each as (u, v) with u < v."""
        self._check_person(person)
        return [
            (min(person, v), max(person, v)) for v in self._sorted_neighbors(person)
        ]

    def _sorted_neighbors(self, person: int) -> List[int]:
        if self.is_compact:
            s, e = self._adj_indptr[person], self._adj_indptr[person + 1]
            return self._adj_indices[s:e].tolist()
        return sorted(self._adj[person])

    def shortest_path_length(self, source: int, target: int) -> Optional[int]:
        """BFS hop distance, or None if disconnected."""
        self._check_pair_allow_equal(source, target)
        if source == target:
            return 0
        indptr, indices = self._adjacency_arrays()
        seen = {source}
        frontier = [source]
        dist = 0
        while frontier:
            dist += 1
            nxt: List[int] = []
            for u in frontier:
                for v in indices[indptr[u] : indptr[u + 1]].tolist():
                    if v == target:
                        return dist
                    if v not in seen:
                        seen.add(v)
                        nxt.append(v)
            frontier = nxt
        return None

    # ------------------------------------------------------------------
    # derived numpy / scipy artifacts (cached by version)
    # ------------------------------------------------------------------
    def skill_vocabulary(self) -> Tuple[str, ...]:
        """Sorted tuple of the skill universe; index positions are stable
        for a given network version."""
        cached = self._cache_get("skill_vocab")
        if cached is not None:
            return cached  # type: ignore[return-value]
        vocab = tuple(sorted(self.skill_universe()))
        self._cache_put("skill_vocab", vocab)
        return vocab

    def skill_vocabulary_index(self) -> Dict[str, int]:
        """Mapping skill -> column index in :meth:`skill_matrix`."""
        cached = self._cache_get("skill_vocab_index")
        if cached is not None:
            return cached  # type: ignore[return-value]
        index = {s: i for i, s in enumerate(self.skill_vocabulary())}
        self._cache_put("skill_vocab_index", index)
        return index

    def adjacency_csr(self) -> sp.csr_matrix:
        """Symmetric 0/1 adjacency matrix in CSR form."""
        cached = self._cache_get("adj_csr")
        if cached is not None:
            return cached  # type: ignore[return-value]
        n = self.n_people
        if self.is_compact:
            data = np.ones(len(self._adj_indices), dtype=np.float64)
            mat = sp.csr_matrix(
                (data, self._adj_indices, self._adj_indptr), shape=(n, n)
            )
        else:
            indptr, indices = self._adjacency_arrays()
            data = np.ones(len(indices), dtype=np.float64)
            mat = sp.csr_matrix((data, indices.copy(), indptr.copy()), shape=(n, n))
        self._cache_put("adj_csr", mat)
        return mat

    def normalized_adjacency(self) -> sp.csr_matrix:
        """Symmetrically normalized adjacency with self loops:
        ``D^-1/2 (A + I) D^-1/2`` — the GCN propagation operator."""
        cached = self._cache_get("adj_norm")
        if cached is not None:
            return cached  # type: ignore[return-value]
        n = self.n_people
        a_hat = self.adjacency_csr() + sp.identity(n, format="csr")
        deg = np.asarray(a_hat.sum(axis=1)).ravel()
        inv_sqrt = 1.0 / np.sqrt(np.maximum(deg, 1e-12))
        d_inv = sp.diags(inv_sqrt)
        mat = (d_inv @ a_hat @ d_inv).tocsr()
        self._cache_put("adj_norm", mat)
        return mat

    def skill_matrix(self, vocab_index: Optional[Dict[str, int]] = None) -> sp.csr_matrix:
        """Node-by-skill 0/1 incidence matrix.

        ``vocab_index`` maps skill string -> column; defaults to this
        network's own vocabulary.  Skills absent from the index are dropped,
        which lets perturbed networks (with added skills) be projected onto a
        base vocabulary.
        """
        if vocab_index is None:
            vocab_index = self.skill_vocabulary_index()
            cached = self._cache_get("skill_matrix_default")
            if cached is not None:
                return cached  # type: ignore[return-value]
            mat = self._build_skill_matrix(vocab_index)
            self._cache_put("skill_matrix_default", mat)
            return mat
        return self._build_skill_matrix(vocab_index)

    def _build_skill_matrix(self, vocab_index: Dict[str, int]) -> sp.csr_matrix:
        if self.is_compact:
            lookup = self._vocab_lookup()
            col_map = np.full(len(self._skill_vocab), -1, dtype=np.int64)
            for s, col in vocab_index.items():
                sid = lookup.get(s)
                if sid is not None:
                    col_map[sid] = col
            cols = col_map[self._skill_ids]
            keep = cols >= 0
            counts = np.diff(self._skill_indptr)
            rows = np.repeat(np.arange(self.n_people, dtype=np.int64), counts)[keep]
            data = np.ones(int(keep.sum()), dtype=np.float64)
            return sp.csr_matrix(
                (data, (rows, cols[keep])),
                shape=(self.n_people, len(vocab_index)),
            )
        rows_l: List[int] = []
        cols_l: List[int] = []
        for pid, skills in enumerate(self._skills):
            for s in skills:
                col = vocab_index.get(s)
                if col is not None:
                    rows_l.append(pid)
                    cols_l.append(col)
        data = np.ones(len(rows_l), dtype=np.float64)
        return sp.csr_matrix(
            (data, (rows_l, cols_l)), shape=(self.n_people, len(vocab_index))
        )

    # ------------------------------------------------------------------
    # base-delta commits (dynamic networks)
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        skill_flips: Iterable[Tuple[int, str, bool]],
        edge_flips: Iterable[Tuple[int, int, bool]],
    ) -> "BaseDelta":
        """Apply a batch of canonical flips in place as ONE version bump.

        This is the commit primitive behind
        :meth:`~repro.graph.overlay.NetworkOverlay.commit`: each flip must
        be applicable against the current state (add only what is absent,
        remove only what is present — an overlay's recorded flips satisfy
        this by construction), all flips land atomically, and ``_version``
        advances exactly once so consumers see a single old→new delta
        rather than one bump per flip.  An empty batch is a no-op that
        does not bump the version.  Returns the :class:`BaseDelta`.
        """
        skill_flips = tuple(sorted(skill_flips))
        edge_flips = tuple(sorted(edge_flips))
        old_version = self._version
        if not skill_flips and not edge_flips:
            return BaseDelta(old_version, old_version, (), ())
        self._thaw()
        for person, skill, added in skill_flips:
            self._check_person(person)
            if (skill in self._skills[person]) == added:
                verb = "add" if added else "remove"
                raise ValueError(
                    f"inapplicable skill flip: cannot {verb} {skill!r} "
                    f"{'to' if added else 'from'} person {person}"
                )
        for u, v, added in edge_flips:
            self._check_pair(u, v)
            if (v in self._adj[u]) == added:
                verb = "add" if added else "remove"
                raise ValueError(
                    f"inapplicable edge flip: cannot {verb} edge ({u}, {v})"
                )
        for person, skill, added in skill_flips:
            if added:
                self._skills[person].add(skill)
            else:
                self._skills[person].discard(skill)
        for u, v, added in edge_flips:
            if added:
                self._adj[u].add(v)
                self._adj[v].add(u)
                self._n_edges += 1
            else:
                self._adj[u].discard(v)
                self._adj[v].discard(u)
                self._n_edges -= 1
        self._touch()
        return BaseDelta(old_version, self._version, skill_flips, edge_flips)

    def state_digest(self) -> str:
        """Content hash of names, skills, and edges (version-independent).

        Two networks with identical structure digest identically even if
        their mutation histories (and so ``version`` counters) differ —
        the binding key the registry spill/restore path uses to decide a
        serialized warm state still matches the live network.  Compact and
        set representations of the same content digest identically.
        """
        h = hashlib.blake2b(digest_size=16)
        for pid, name in enumerate(self._names):
            h.update(name.encode("utf-8"))
            h.update(b"\x00")
            for s in self._sorted_skills(pid):
                h.update(s.encode("utf-8"))
                h.update(b"\x01")
            h.update(b"\x02")
        for u in range(self.n_people):
            for v in self._sorted_neighbors(u):
                if u < v:
                    h.update(f"{u},{v};".encode("ascii"))
        return h.hexdigest()

    def _sorted_skills(self, person: int) -> List[str]:
        if self.is_compact:
            s, e = self._skill_indptr[person], self._skill_indptr[person + 1]
            vocab = self._skill_vocab
            return sorted(vocab[i] for i in self._skill_ids[s:e].tolist())
        return sorted(self._skills[person])

    # ------------------------------------------------------------------
    # copies & export
    # ------------------------------------------------------------------
    def copy(self) -> "CollaborationNetwork":
        """Deep copy of names, skills and adjacency (caches are not copied).

        A compact network copies compact — the arrays are duplicated but no
        Python sets are materialized."""
        out = CollaborationNetwork()
        out._names = list(self._names)
        if self.is_compact:
            out._skills = None
            out._adj = None
            out._adj_indptr = self._adj_indptr.copy()
            out._adj_indices = self._adj_indices.copy()
            out._skill_indptr = self._skill_indptr.copy()
            out._skill_ids = self._skill_ids.copy()
            out._skill_vocab = self._skill_vocab
        else:
            out._skills = [set(s) for s in self._skills]
            out._adj = [set(a) for a in self._adj]
        out._n_edges = self._n_edges
        return out

    def to_networkx(self):
        """Export to a ``networkx.Graph`` with ``name``/``skills`` attributes."""
        import networkx as nx

        g = nx.Graph()
        for pid in self.people():
            g.add_node(pid, name=self._names[pid], skills=self.skills(pid))
        g.add_edges_from(self.edges())
        return g

    def validate(self) -> None:
        """Check structural invariants; raises ValueError on corruption."""
        n = self.n_people
        if self.is_compact:
            self._validate_compact()
            return
        if not (len(self._skills) == len(self._adj) == n):
            raise ValueError("parallel arrays out of sync")
        count = 0
        for u, nbrs in enumerate(self._adj):
            if u in nbrs:
                raise ValueError(f"self loop at node {u}")
            for v in nbrs:
                if not (0 <= v < n):
                    raise ValueError(f"edge endpoint {v} out of range")
                if u not in self._adj[v]:
                    raise ValueError(f"asymmetric edge ({u}, {v})")
                count += 1
        if count != 2 * self._n_edges:
            raise ValueError(
                f"edge count mismatch: counted {count // 2}, recorded {self._n_edges}"
            )

    def _validate_compact(self) -> None:
        n = self.n_people
        indptr, indices = self._adj_indptr, self._adj_indices
        if indptr.shape != (n + 1,) or self._skill_indptr.shape != (n + 1,):
            raise ValueError("parallel arrays out of sync")
        if len(indices):
            if indices.min() < 0 or indices.max() >= n:
                raise ValueError("edge endpoint out of range")
        counts = np.diff(indptr)
        if counts.min(initial=0) < 0:
            raise ValueError("adjacency indptr not monotone")
        src = np.repeat(np.arange(n, dtype=np.int64), counts)
        if np.any(src == indices):
            bad = int(src[src == indices][0])
            raise ValueError(f"self loop at node {bad}")
        # Symmetry: the multiset of directed edges equals its reverse.
        fwd = np.sort(src * n + indices)
        rev = np.sort(indices.astype(np.int64) * n + src)
        if not np.array_equal(fwd, rev):
            raise ValueError("asymmetric edge in compact adjacency")
        if len(indices) != 2 * self._n_edges:
            raise ValueError(
                f"edge count mismatch: counted {len(indices) // 2}, "
                f"recorded {self._n_edges}"
            )
        if len(self._skill_ids):
            if self._skill_ids.min() < 0 or self._skill_ids.max() >= len(
                self._skill_vocab
            ):
                raise ValueError("skill id out of vocabulary range")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _touch(self) -> None:
        self._version += 1
        if self._cache:
            self._cache.clear()

    def _cache_get(self, key: str):
        entry = self._cache.get(key)
        if entry is not None and entry[0] == self._version:
            return entry[1]
        return None

    def _cache_put(self, key: str, value: object) -> None:
        self._cache[key] = (self._version, value)

    def _check_person(self, person: int) -> None:
        if not (0 <= person < len(self._names)):
            raise IndexError(f"person id {person} out of range [0, {len(self._names)})")

    def _check_pair(self, u: int, v: int) -> None:
        self._check_person(u)
        self._check_person(v)
        if u == v:
            raise ValueError(f"self loops are not allowed (node {u})")

    def _check_pair_allow_equal(self, u: int, v: int) -> None:
        self._check_person(u)
        self._check_person(v)

    def __repr__(self) -> str:
        return (
            f"CollaborationNetwork(n_people={self.n_people}, n_edges={self.n_edges}, "
            f"n_skills={len(self.skill_universe())})"
        )


def _sort_rows(indptr: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Sort each CSR row's entries ascending (stable across rows)."""
    if len(values) == 0:
        return values
    counts = np.diff(indptr)
    rows = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    order = np.lexsort((values, rows))
    return np.ascontiguousarray(values[order])
