"""Copy-on-write view of a :class:`CollaborationNetwork`.

Counterfactual search probes the ranker with thousands of perturbed
networks, each differing from the base by a handful of skill or edge
flips.  Deep-copying the network for every probe (the seed behaviour of
``apply_perturbations``) makes every probe O(|P| + |E| + Σ|S_i|) before a
single score is computed.  :class:`NetworkOverlay` records the flips
against a *frozen* base network instead:

* reads (``skills``, ``neighbors``, ``has_edge``, ``people_with_skill``,
  …) consult the delta first and fall back to the base,
* writes (``add_skill``, ``remove_edge``, …) touch only the delta, so a
  probe state costs O(Δ) to build,
* :meth:`flips` exposes the delta in canonical form — the probe engine
  uses it both as a memoization key and to apply O(Δ) updates to cached
  feature/adjacency matrices,
* anything exotic (``to_networkx``, ``normalized_adjacency`` for rankers
  without a delta path, …) transparently falls back to a lazily
  materialized full copy, so an overlay is accepted anywhere a
  ``CollaborationNetwork`` is.

The base network must not mutate while overlays over it are alive; every
overlay records the base version at creation and raises if it drifts.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

SkillFlip = Tuple[str, int, str, bool]  # ("s", person, skill, added)
EdgeFlip = Tuple[str, int, int, bool]  # ("e", u, v, added)
Flip = Tuple  # union of the two shapes above


class NetworkOverlay:
    """A perturbed view of a frozen base :class:`CollaborationNetwork`."""

    def __init__(self, base) -> None:
        # Chaining: an overlay over an overlay flattens onto the same base,
        # so delta size stays proportional to the total edit distance.
        if isinstance(base, NetworkOverlay):
            src = base
            base = src.base
            self._skill_flips: Dict[Tuple[int, str], bool] = dict(src._skill_flips)
            self._edge_flips: Dict[Tuple[int, int], bool] = dict(src._edge_flips)
            self._skills_touched: Dict[int, Set[str]] = {
                p: set(s) for p, s in src._skills_touched.items()
            }
            self._adj_touched: Dict[int, Set[int]] = {
                p: set(a) for p, a in src._adj_touched.items()
            }
            self._n_edges = src._n_edges
        else:
            self._skill_flips = {}
            self._edge_flips = {}
            self._skills_touched = {}
            self._adj_touched = {}
            self._n_edges = base.n_edges
        self._base = base
        self._base_version = base.version
        self._mat = None  # lazily materialized full CollaborationNetwork

    # ------------------------------------------------------------------
    # identity & delta
    # ------------------------------------------------------------------
    @property
    def base(self):
        """The frozen base network this overlay perturbs."""
        return self._base

    @property
    def base_version(self) -> int:
        """The base's version stamp at overlay creation."""
        return self._base_version

    def flips(self) -> FrozenSet[Flip]:
        """The delta in canonical, hashable form (memoization key)."""
        self._check_base()
        out: Set[Flip] = set()
        for (p, s), added in self._skill_flips.items():
            out.add(("s", p, s, added))
        for (u, v), added in self._edge_flips.items():
            out.add(("e", u, v, added))
        return frozenset(out)

    def skill_flips(self) -> Dict[Tuple[int, str], bool]:
        """(person, skill) -> added?  (live view; do not mutate)."""
        self._check_base()
        return self._skill_flips

    def edge_flips(self) -> Dict[Tuple[int, int], bool]:
        """(u, v) with u < v -> added?  (live view; do not mutate)."""
        self._check_base()
        return self._edge_flips

    @property
    def n_flips(self) -> int:
        return len(self._skill_flips) + len(self._edge_flips)

    def branch(self) -> "NetworkOverlay":
        """An independent overlay with the same delta (for further edits)."""
        return NetworkOverlay(self)

    def materialize(self):
        """A real :class:`CollaborationNetwork` equal to this view.

        Cached until the next overlay mutation; the ``full_rebuild``
        escape hatch of the probe engine and any method without a direct
        overlay implementation go through here.
        """
        self._check_base()
        if self._mat is None:
            from repro.graph.network import CollaborationNetwork

            net = CollaborationNetwork.from_parts(
                [self._base.name(p) for p in range(self.n_people)],
                [self.skills(p) for p in range(self.n_people)],
                self.edges(),
            )
            self._mat = net
        return self._mat

    def copy(self):
        """An independent deep copy (a real network, matching the base API)."""
        return self.materialize().copy()

    def commit(self):
        """Promote this overlay's flips into the base network in place.

        The base applies every recorded flip atomically and bumps its
        version exactly once; the returned
        :class:`~repro.graph.network.BaseDelta` describes the old→new
        transition in canonical flip form, ready for delta sessions and
        registries to rebase O(Δ).  A flip-free overlay commits as a
        no-op (no version bump, empty delta).

        A non-empty commit *consumes* the overlay: its recorded base
        version is now stale, so any further read or mutation through it
        raises the standard frozen-base :class:`RuntimeError`.  Other
        overlays over the same base are invalidated the same way — the
        commit is a deliberate epoch boundary, not a concurrent edit.
        """
        self._check_base()
        return self._base.apply_delta(
            ((p, s, added) for (p, s), added in self._skill_flips.items()),
            ((u, v, added) for (u, v), added in self._edge_flips.items()),
        )

    def _check_base(self) -> None:
        if self._base.version != self._base_version:
            raise RuntimeError(
                "base network mutated underneath a NetworkOverlay "
                f"(version {self._base_version} -> {self._base.version}); "
                "overlays require a frozen base"
            )

    # ------------------------------------------------------------------
    # mutation (records flips; cancelling edits annihilate)
    # ------------------------------------------------------------------
    def add_skill(self, person: int, skill: str) -> bool:
        self._check_person(person)
        own = self._own_skills(person)
        if skill in own:
            return False
        own.add(skill)
        self._flip_skill(person, skill, True)
        return True

    def remove_skill(self, person: int, skill: str) -> bool:
        self._check_person(person)
        own = self._own_skills(person)
        if skill not in own:
            return False
        own.discard(skill)
        self._flip_skill(person, skill, False)
        return True

    def add_edge(self, u: int, v: int) -> bool:
        self._check_pair(u, v)
        if v in self._own_adj(u):
            return False
        self._own_adj(u).add(v)
        self._own_adj(v).add(u)
        self._n_edges += 1
        self._flip_edge(u, v, True)
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        self._check_pair(u, v)
        if v not in self._own_adj(u):
            return False
        self._own_adj(u).discard(v)
        self._own_adj(v).discard(u)
        self._n_edges -= 1
        self._flip_edge(u, v, False)
        return True

    def add_person(self, name: str, skills: Iterable[str] = ()) -> int:
        raise NotImplementedError(
            "NetworkOverlay cannot grow the node set; mutate the base "
            "network (or materialize() first)"
        )

    def _own_skills(self, person: int) -> Set[str]:
        own = self._skills_touched.get(person)
        if own is None:
            own = set(self._base.skills(person))
            self._skills_touched[person] = own
        return own

    def _own_adj(self, person: int) -> Set[int]:
        own = self._adj_touched.get(person)
        if own is None:
            own = set(self._base.neighbors(person))
            self._adj_touched[person] = own
        return own

    def _flip_skill(self, person: int, skill: str, added: bool) -> None:
        self._mat = None
        key = (person, skill)
        prior = self._skill_flips.get(key)
        if prior is not None and prior != added:
            del self._skill_flips[key]  # add-then-remove cancels
        else:
            self._skill_flips[key] = added

    def _flip_edge(self, u: int, v: int, added: bool) -> None:
        self._mat = None
        key = (min(u, v), max(u, v))
        prior = self._edge_flips.get(key)
        if prior is not None and prior != added:
            del self._edge_flips[key]
        else:
            self._edge_flips[key] = added

    # ------------------------------------------------------------------
    # reads (delta-aware, O(Δ) over the base operation)
    # ------------------------------------------------------------------
    @property
    def n_people(self) -> int:
        return self._base.n_people

    @property
    def n_edges(self) -> int:
        return self._n_edges

    def people(self) -> range:
        return range(self._base.n_people)

    def name(self, person: int) -> str:
        return self._base.name(person)

    def find_person(self, name: str) -> int:
        return self._base.find_person(name)

    def skills(self, person: int) -> FrozenSet[str]:
        self._check_base()
        own = self._skills_touched.get(person)
        if own is not None:
            return frozenset(own)
        return self._base.skills(person)

    def has_skill(self, person: int, skill: str) -> bool:
        self._check_base()
        own = self._skills_touched.get(person)
        if own is not None:
            return skill in own
        return self._base.has_skill(person, skill)

    def neighbors(self, person: int) -> FrozenSet[int]:
        self._check_base()
        own = self._adj_touched.get(person)
        if own is not None:
            return frozenset(own)
        return self._base.neighbors(person)

    def degree(self, person: int) -> int:
        self._check_base()
        own = self._adj_touched.get(person)
        if own is not None:
            return len(own)
        return self._base.degree(person)

    def has_edge(self, u: int, v: int) -> bool:
        self._check_pair(u, v)
        self._check_base()
        own = self._adj_touched.get(u)
        if own is not None:
            return v in own
        return self._base.has_edge(u, v)

    def edges(self) -> Iterator[Tuple[int, int]]:
        self._check_base()
        removed = {e for e, added in self._edge_flips.items() if not added}
        for u, v in self._base.edges():
            if (u, v) not in removed:
                yield (u, v)
        for (u, v), added in sorted(self._edge_flips.items()):
            if added:
                yield (u, v)

    def people_with_skill(self, skill: str) -> FrozenSet[int]:
        self._check_base()
        base_set = self._base.people_with_skill(skill)
        add: Set[int] = set()
        rem: Set[int] = set()
        for (p, s), added in self._skill_flips.items():
            if s == skill:
                (add if added else rem).add(p)
        if not add and not rem:
            return base_set
        return frozenset((set(base_set) | add) - rem)

    def skill_universe(self) -> FrozenSet[str]:
        self._check_base()
        universe = set(self._base.skill_universe())
        maybe_gone: Set[str] = set()
        for (_, s), added in self._skill_flips.items():
            if added:
                universe.add(s)
            else:
                maybe_gone.add(s)
        for s in maybe_gone:
            if s in universe and not self.people_with_skill(s):
                universe.discard(s)
        return frozenset(universe)

    def total_skill_assignments(self) -> int:
        self._check_base()
        delta = sum(1 if added else -1 for added in self._skill_flips.values())
        return self._base.total_skill_assignments() + delta

    def neighborhood(self, person: int, radius: int) -> FrozenSet[int]:
        self._check_person(person)
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        seen = {person}
        frontier = [person]
        for _ in range(radius):
            nxt: List[int] = []
            for u in frontier:
                for v in self.neighbors(u):
                    if v not in seen:
                        seen.add(v)
                        nxt.append(v)
            if not nxt:
                break
            frontier = nxt
        return frozenset(seen)

    def neighborhood_skills(self, person: int, radius: int) -> FrozenSet[str]:
        out: Set[str] = set()
        for p in self.neighborhood(person, radius):
            out.update(self.skills(p))
        return frozenset(out)

    def edges_within(self, nodes: Iterable[int]) -> List[Tuple[int, int]]:
        node_set = set(nodes)
        out: List[Tuple[int, int]] = []
        for u in sorted(node_set):
            for v in self.neighbors(u):
                if u < v and v in node_set:
                    out.append((u, v))
        return out

    def incident_edges(self, person: int) -> List[Tuple[int, int]]:
        self._check_person(person)
        return [
            (min(person, v), max(person, v)) for v in sorted(self.neighbors(person))
        ]

    def validate(self) -> None:
        self.materialize().validate()

    def _check_person(self, person: int) -> None:
        if not (0 <= person < self._base.n_people):
            raise IndexError(
                f"person id {person} out of range [0, {self._base.n_people})"
            )

    def _check_pair(self, u: int, v: int) -> None:
        self._check_person(u)
        self._check_person(v)
        if u == v:
            raise ValueError(f"self loops are not allowed (node {u})")

    # ------------------------------------------------------------------
    # fallback: anything else goes through the materialized copy
    # ------------------------------------------------------------------
    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.materialize(), name)

    def __repr__(self) -> str:
        return (
            f"NetworkOverlay(base={self._base!r}, "
            f"skill_flips={len(self._skill_flips)}, "
            f"edge_flips={len(self._edge_flips)})"
        )
