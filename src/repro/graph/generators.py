"""Synthetic collaboration-network generation.

The paper evaluates ExES on two real collaboration networks (DBLP and
GitHub, Table 6).  Those datasets are not redistributable here, so we
synthesize networks with the same shape (see DESIGN.md "Substitutions"):

* **community structure** — individuals belong to a handful of topical
  communities (research areas / software ecosystems) and collaborate mostly
  inside them;
* **heavy-tailed degrees** — a small number of prolific collaborators, many
  peripheral ones (degree-corrected preferential attachment inside each
  community);
* **topic-correlated skills** — when skills are attached directly (without
  the corpus pipeline in :mod:`repro.text`), each person samples skills from
  their communities' Zipf-weighted skill pools, giving the locality that
  Pruning Strategy 1 exploits.

The generator is fully deterministic given the recipe's seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graph.network import CollaborationNetwork

_FIRST_NAMES = (
    "Ada", "Alan", "Barbara", "Claude", "Donald", "Edgar", "Frances", "Grace",
    "Hedy", "Ivan", "John", "Katherine", "Leslie", "Margaret", "Niklaus",
    "Olga", "Peter", "Radia", "Shafi", "Tim", "Ursula", "Vint", "Whitfield",
    "Xiaoyun", "Yann", "Zohar", "Andrew", "Bjarne", "Cynthia", "David",
    "Elena", "Fei", "Geoffrey", "Hanna", "Ilya", "Judea", "Kunle", "Lise",
    "Manuel", "Noga", "Oded", "Prabhakar", "Quoc", "Rediet", "Silvio",
    "Tal", "Umesh", "Vered", "Wei", "Yoshua",
)

_LAST_NAMES = (
    "Lovelace", "Turing", "Liskov", "Shannon", "Knuth", "Codd", "Allen",
    "Hopper", "Lamarr", "Sutherland", "Backus", "Johnson", "Lamport",
    "Hamilton", "Wirth", "Tausova", "Naur", "Perlman", "Goldwasser",
    "Berners-Lee", "Franklin", "Cerf", "Diffie", "Wang", "LeCun", "Manna",
    "Yao", "Stroustrup", "Dwork", "Patterson", "Pasqua", "Li", "Hinton",
    "Neumann", "Sutskever", "Pearl", "Olukotun", "Getoor", "Blum", "Alon",
    "Goldreich", "Raghavan", "Le", "Abebe", "Micali", "Rabin", "Vazirani",
    "Shaked", "Zhang", "Bengio",
)


@dataclass(frozen=True)
class NetworkRecipe:
    """Parameters controlling synthetic network generation.

    ``n_people``/``n_edges``/``n_skills`` set the Table 6 shape;
    ``n_communities`` controls modularity; ``intra_community_fraction`` is
    the share of edges placed inside a community; ``degree_exponent`` sets
    the heavy tail of the collaborator-activity distribution;
    ``skills_per_person`` is the mean size of S_i when skills are attached
    directly (the corpus pipeline overrides it).
    """

    n_people: int
    n_edges: int
    n_skills: int
    n_communities: int = 12
    communities_per_person: int = 2
    intra_community_fraction: float = 0.85
    degree_exponent: float = 0.9
    skills_per_person: int = 15
    skills_per_community: int = 60
    skill_zipf_exponent: float = 1.1
    seed: int = 0
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if self.n_people < 2:
            raise ValueError(f"need at least 2 people, got {self.n_people}")
        max_edges = self.n_people * (self.n_people - 1) // 2
        if not (0 <= self.n_edges <= max_edges):
            raise ValueError(f"n_edges={self.n_edges} outside [0, {max_edges}]")
        if self.n_skills < 1:
            raise ValueError("need at least one skill")
        if not (0.0 <= self.intra_community_fraction <= 1.0):
            raise ValueError("intra_community_fraction must be in [0, 1]")
        if self.n_communities < 1:
            raise ValueError("need at least one community")


@dataclass
class SynthesisResult:
    """A generated network plus the latent structure that produced it.

    The latent community memberships are reused by :mod:`repro.text` to
    generate a publication corpus consistent with the graph, mirroring how
    DBLP skills come from each author's own papers.
    """

    network: CollaborationNetwork
    person_communities: List[Tuple[int, ...]]
    community_skill_pools: List[Tuple[str, ...]]
    skill_vocabulary: Tuple[str, ...]
    recipe: NetworkRecipe = field(repr=False)


def make_person_names(n: int, rng: np.random.Generator) -> List[str]:
    """Deterministic, mostly-unique human-readable names."""
    names: List[str] = []
    seen: Dict[str, int] = {}
    firsts = rng.integers(0, len(_FIRST_NAMES), size=n)
    lasts = rng.integers(0, len(_LAST_NAMES), size=n)
    for i in range(n):
        base = f"{_FIRST_NAMES[firsts[i]]} {_LAST_NAMES[lasts[i]]}"
        count = seen.get(base, 0)
        seen[base] = count + 1
        names.append(base if count == 0 else f"{base} {count + 1}")
    return names


def make_skill_vocabulary(n_skills: int, rng: np.random.Generator) -> Tuple[str, ...]:
    """Generate a CS-flavoured skill vocabulary of exactly ``n_skills`` terms.

    Single-token terms (matching how the paper's TF-IDF extraction yields
    unigram keywords such as "social", "graph", "embedding").
    """
    roots = (
        "graph", "social", "network", "query", "index", "stream", "database",
        "neural", "deep", "learning", "mining", "pattern", "cluster",
        "classification", "embedding", "ranking", "retrieval", "search",
        "vision", "language", "speech", "privacy", "security", "crypto",
        "distributed", "parallel", "cache", "storage", "transaction",
        "consensus", "scheduling", "compiler", "verification", "testing",
        "optimization", "inference", "training", "supervised", "recurrent",
        "convolution", "attention", "transformer", "kernel", "bayesian",
        "sampling", "estimation", "regression", "recommendation", "community",
        "discovery", "knowledge", "ontology", "semantic", "entity", "relation",
        "extraction", "summarization", "translation", "quality", "cleaning",
        "integration", "provenance", "visualization", "analytics", "benchmark",
        "simulation", "hardware", "compression", "encoding", "decoding",
        "routing", "protocol", "wireless", "sensor", "mobile", "cloud",
        "container", "microservice", "api", "frontend", "backend", "web",
        "crawler", "spark", "hadoop", "sql", "nosql", "keyvalue", "document",
        "columnar", "timeseries", "spatial", "temporal", "probabilistic",
        "logic", "automata", "complexity", "approximation", "heuristic",
        "genetic", "reinforcement", "multiagent", "game", "auction", "market",
        "fairness", "ethics", "interpretability", "xai", "counterfactual",
        "causal", "robustness", "adversarial", "federated", "transfer",
        "meta", "fewshot", "zeroshot", "pretraining", "finetuning", "prompt",
        "generation", "diffusion", "gan", "autoencoder", "variational",
        "contrastive", "selfsupervised", "multimodal", "image", "video",
        "audio", "text", "code", "program", "synthesis", "repair", "debugging",
        "profiling", "tracing", "monitoring", "observability", "reliability",
        "availability", "consistency", "replication", "partitioning",
        "sharding", "locking", "concurrency", "versioning", "migration",
        "workflow", "pipeline", "orchestration", "deployment", "statistics",
        "algebra", "geometry", "topology", "spectral", "matrix", "tensor",
        "sparse", "dense", "random", "walk", "motif", "subgraph", "isomorphism",
        "centrality", "influence", "diffusionmodel", "epidemic", "citation",
        "bibliometric", "crowdsourcing", "annotation", "labeling", "evaluation",
        "metric", "precision", "recall", "calibration", "uncertainty",
        "anomaly", "outlier", "fraud", "intrusion", "malware", "forensics",
    )
    suffixes = (
        "", "systems", "models", "theory", "methods", "analysis", "design",
        "engines", "algorithms", "architecture", "frameworks", "processing",
        "management", "applications", "platforms", "services", "structures",
        "languages", "tools", "protocols",
    )
    vocab: List[str] = []
    seen: Set[str] = set()
    for root in roots:
        if len(vocab) >= n_skills:
            break
        if root not in seen:
            seen.add(root)
            vocab.append(root)
    # Compound terms fill out large vocabularies deterministically.
    order = rng.permutation(len(roots) * (len(suffixes) - 1))
    for idx in order:
        if len(vocab) >= n_skills:
            break
        root = roots[idx % len(roots)]
        suffix = suffixes[1 + idx // len(roots)]
        term = f"{root}-{suffix}"
        if term not in seen:
            seen.add(term)
            vocab.append(term)
    counter = 0
    while len(vocab) < n_skills:  # pathological sizes: numbered filler
        term = f"skill{counter:04d}"
        if term not in seen:
            seen.add(term)
            vocab.append(term)
        counter += 1
    return tuple(vocab[:n_skills])


def _assign_communities(
    recipe: NetworkRecipe, rng: np.random.Generator
) -> List[Tuple[int, ...]]:
    """Give each person 1..communities_per_person community memberships."""
    memberships: List[Tuple[int, ...]] = []
    # Community popularity is itself skewed: some areas are much larger.
    popularity = rng.dirichlet(np.full(recipe.n_communities, 0.8))
    for _ in range(recipe.n_people):
        k = int(rng.integers(1, recipe.communities_per_person + 1))
        k = min(k, recipe.n_communities)
        chosen = rng.choice(recipe.n_communities, size=k, replace=False, p=popularity)
        memberships.append(tuple(int(c) for c in sorted(chosen)))
    return memberships


def _build_skill_pools(
    recipe: NetworkRecipe,
    vocabulary: Sequence[str],
    rng: np.random.Generator,
) -> List[Tuple[str, ...]]:
    """Each community draws a Zipf-weighted pool of skills (with overlap)."""
    pools: List[Tuple[str, ...]] = []
    n_vocab = len(vocabulary)
    pool_size = min(recipe.skills_per_community, n_vocab)
    for _ in range(recipe.n_communities):
        idx = rng.choice(n_vocab, size=pool_size, replace=False)
        pools.append(tuple(vocabulary[i] for i in idx))
    return pools


def _zipf_weights(n: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks ** (-exponent)
    return w / w.sum()


#: Accepted-edge chunk size for the streaming path; RNG-neutral (the
#: sampler's draw sequence never depends on it).
_EDGE_CHUNK = 65536


def _edge_key_chunks(
    recipe: NetworkRecipe,
    memberships: Sequence[Tuple[int, ...]],
    rng: np.random.Generator,
) -> "Iterator[np.ndarray]":
    """Degree-corrected community edges + a random inter-community remainder,
    yielded as chunks of packed ``u * n + v`` int64 keys (u < v).

    The single edge sampler behind both the eager and the streaming build
    paths: it draws from ``rng`` in exactly one order and dedupes through
    an integer-key set (identical membership semantics to the tuple set it
    replaced), so the two paths are RNG-identical by construction.  No
    per-node Python structure is ever materialized here — a chunk is a
    plain int64 array.
    """
    n = recipe.n_people
    activity = rng.permutation(_zipf_weights(n, recipe.degree_exponent))

    community_members: List[List[int]] = [[] for _ in range(recipe.n_communities)]
    for person, comms in enumerate(memberships):
        for c in comms:
            community_members[c].append(person)

    seen: Set[int] = set()
    buffer: List[int] = []
    target_intra = int(round(recipe.n_edges * recipe.intra_community_fraction))

    # Community weight = total member activity; bigger/busier communities
    # host more collaborations.
    comm_weight = np.array(
        [max(activity[m].sum(), 1e-12) if (m := np.array(mem, dtype=int)).size else 0.0
         for mem in community_members]
    )
    eligible = [i for i, mem in enumerate(community_members) if len(mem) >= 2]
    if eligible and target_intra > 0:
        w = comm_weight[eligible]
        w = w / w.sum()
        quotas = rng.multinomial(target_intra, w)
        for comm, quota in zip(eligible, quotas):
            members = np.array(community_members[comm], dtype=int)
            probs = activity[members]
            probs = probs / probs.sum()
            attempts = 0
            placed = 0
            max_pairs = len(members) * (len(members) - 1) // 2
            quota = min(int(quota), max_pairs)
            while placed < quota and attempts < 20 * quota + 50:
                batch = max(quota - placed, 16)
                us = rng.choice(members, size=batch, p=probs)
                vs = rng.choice(members, size=batch, p=probs)
                for u, v in zip(us, vs):
                    if placed >= quota:
                        break
                    if u == v:
                        continue
                    key = int(min(u, v)) * n + int(max(u, v))
                    if key not in seen:
                        seen.add(key)
                        buffer.append(key)
                        placed += 1
                attempts += batch
                if len(buffer) >= _EDGE_CHUNK:
                    yield np.array(buffer, dtype=np.int64)
                    buffer.clear()

    # Random inter-community (or overflow) edges up to the global target.
    global_probs = activity / activity.sum()
    attempts = 0
    max_attempts = 40 * recipe.n_edges + 1000
    while len(seen) < recipe.n_edges and attempts < max_attempts:
        batch = max(recipe.n_edges - len(seen), 64)
        us = rng.choice(n, size=batch, p=global_probs)
        vs = rng.integers(0, n, size=batch)
        for u, v in zip(us, vs):
            if len(seen) >= recipe.n_edges:
                break
            if u == v:
                continue
            key = int(min(u, v)) * n + int(max(u, v))
            if key not in seen:
                seen.add(key)
                buffer.append(key)
        attempts += batch
        if len(buffer) >= _EDGE_CHUNK:
            yield np.array(buffer, dtype=np.int64)
            buffer.clear()
    if buffer:
        yield np.array(buffer, dtype=np.int64)


def _sample_edges(
    recipe: NetworkRecipe,
    memberships: Sequence[Tuple[int, ...]],
    rng: np.random.Generator,
) -> Set[Tuple[int, int]]:
    """Eager view of :func:`_edge_key_chunks` as the historical tuple set."""
    n = recipe.n_people
    return {
        (int(k // n), int(k % n))
        for chunk in _edge_key_chunks(recipe, memberships, rng)
        for k in chunk.tolist()
    }


def _chosen_skills(
    recipe: NetworkRecipe,
    comms: Tuple[int, ...],
    pools: Sequence[Tuple[str, ...]],
    rng: np.random.Generator,
) -> List[str]:
    """One person's S_i draw from their communities' pools — the shared
    per-person sampler of the eager and streaming attach paths (one RNG
    call sequence, so the two are draw-identical)."""
    merged: List[str] = []
    for c in comms:
        merged.extend(pools[c])
    merged = sorted(set(merged))
    if not merged:
        return []
    weights = _zipf_weights(len(merged), recipe.skill_zipf_exponent)
    # Skill-count varies around the configured mean.
    lo = max(1, recipe.skills_per_person - 5)
    hi = recipe.skills_per_person + 6
    count = int(rng.integers(lo, hi))
    count = min(count, len(merged))
    chosen = rng.choice(len(merged), size=count, replace=False, p=weights)
    return [merged[idx] for idx in chosen]


def _attach_skills(
    network: CollaborationNetwork,
    recipe: NetworkRecipe,
    memberships: Sequence[Tuple[int, ...]],
    pools: Sequence[Tuple[str, ...]],
    rng: np.random.Generator,
) -> None:
    """Directly sample each person's S_i from their communities' pools."""
    for person in network.people():
        for skill in _chosen_skills(recipe, memberships[person], pools, rng):
            network.add_skill(person, skill)


def _skill_id_arrays(
    recipe: NetworkRecipe,
    memberships: Sequence[Tuple[int, ...]],
    pools: Sequence[Tuple[str, ...]],
    vocabulary: Tuple[str, ...],
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Streaming attach: the same per-person draws as :func:`_attach_skills`
    collected straight into (indptr, ids) CSR arrays over ``vocabulary``."""
    vid = {s: i for i, s in enumerate(vocabulary)}
    indptr = np.zeros(recipe.n_people + 1, dtype=np.int64)
    chunks: List[np.ndarray] = []
    total = 0
    for person in range(recipe.n_people):
        skills = _chosen_skills(recipe, memberships[person], pools, rng)
        if skills:
            chunks.append(np.array([vid[s] for s in skills], dtype=np.int32))
            total += len(skills)
        indptr[person + 1] = total
    ids = (
        np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int32)
    )
    return indptr, ids


def synthesize_network(
    recipe: NetworkRecipe,
    attach_skills: bool = True,
) -> SynthesisResult:
    """Generate a collaboration network from ``recipe``.

    With ``attach_skills=False`` the nodes carry no skills; the caller is
    expected to run the corpus + TF-IDF pipeline (:mod:`repro.text`) to
    attach them, which is what the dataset presets in :mod:`repro.datasets`
    do to mirror the paper's extraction methodology.
    """
    rng = np.random.default_rng(recipe.seed)
    names = make_person_names(recipe.n_people, rng)
    vocabulary = make_skill_vocabulary(recipe.n_skills, rng)
    memberships = _assign_communities(recipe, rng)
    pools = _build_skill_pools(recipe, vocabulary, rng)

    network = CollaborationNetwork()
    for name in names:
        network.add_person(name)
    for u, v in sorted(_sample_edges(recipe, memberships, rng)):
        network.add_edge(u, v)

    if attach_skills:
        _attach_skills(network, recipe, memberships, pools, rng)

    return SynthesisResult(
        network=network,
        person_communities=memberships,
        community_skill_pools=pools,
        skill_vocabulary=vocabulary,
        recipe=recipe,
    )


def synthesize_network_streaming(
    recipe: NetworkRecipe,
    attach_skills: bool = True,
) -> SynthesisResult:
    """Generate the same network as :func:`synthesize_network` (same seed ⇒
    bit-identical :meth:`~repro.graph.network.CollaborationNetwork.state_digest`)
    but build it directly in compact CSR form.

    Edges stream out of the shared sampler as packed-key chunks and land in
    flat arrays; skills land as (indptr, ids) arrays; no per-person Python
    set is ever materialized, so peak memory is O(edges + skill
    assignments) machine words instead of O(n) Python containers — the
    build path for the 1e5/1e6-node bench tiers.
    """
    rng = np.random.default_rng(recipe.seed)
    names = make_person_names(recipe.n_people, rng)
    vocabulary = make_skill_vocabulary(recipe.n_skills, rng)
    memberships = _assign_communities(recipe, rng)
    pools = _build_skill_pools(recipe, vocabulary, rng)

    n = recipe.n_people
    # Consume the edge stream fully before skill draws — the eager path's
    # RNG order (edges first, then skills) must be preserved exactly.
    key_chunks = list(_edge_key_chunks(recipe, memberships, rng))
    keys = (
        np.concatenate(key_chunks) if key_chunks else np.empty(0, dtype=np.int64)
    )
    us = (keys // n).astype(np.int32)
    vs = (keys % n).astype(np.int32)
    src = np.concatenate([us, vs])
    dst = np.concatenate([vs, us])
    adj_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=adj_indptr[1:])
    order = np.lexsort((dst, src))
    adj_indices = dst[order]

    if attach_skills:
        skill_indptr, skill_ids = _skill_id_arrays(
            recipe, memberships, pools, vocabulary, rng
        )
    else:
        skill_indptr = np.zeros(n + 1, dtype=np.int64)
        skill_ids = np.empty(0, dtype=np.int32)

    network = CollaborationNetwork.from_csr(
        names, adj_indptr, adj_indices, skill_indptr, skill_ids, vocabulary
    )
    return SynthesisResult(
        network=network,
        person_communities=memberships,
        community_skill_pools=pools,
        skill_vocabulary=vocabulary,
        recipe=recipe,
    )
