"""Descriptive statistics for collaboration networks (Table 6 support).

These are used to validate that the synthetic DBLP-like / GitHub-like
datasets actually land on the published node/edge/skill counts, and to
report the workload characteristics in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.graph.network import CollaborationNetwork


@dataclass(frozen=True)
class NetworkStats:
    """Summary statistics of one collaboration network."""

    n_nodes: int
    n_edges: int
    n_skills: int
    mean_skills_per_person: float
    median_skills_per_person: float
    mean_degree: float
    max_degree: int
    n_isolated: int
    n_components: int
    largest_component: int

    def as_table_row(self, label: str) -> str:
        """One row in the style of the paper's Table 6."""
        return (
            f"{label:<10} {self.n_nodes:>8} {self.n_edges:>9} {self.n_skills:>8} "
            f"{self.mean_skills_per_person:>12.1f}"
        )


def _component_sizes(network: CollaborationNetwork) -> List[int]:
    seen = [False] * network.n_people
    sizes: List[int] = []
    for start in network.people():
        if seen[start]:
            continue
        seen[start] = True
        size = 1
        stack = [start]
        while stack:
            u = stack.pop()
            for v in network.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    size += 1
                    stack.append(v)
        sizes.append(size)
    return sizes


def compute_stats(network: CollaborationNetwork) -> NetworkStats:
    """Compute :class:`NetworkStats` for ``network``."""
    n = network.n_people
    skill_counts = np.array([len(network.skills(p)) for p in network.people()])
    degrees = np.array([network.degree(p) for p in network.people()])
    components = _component_sizes(network)
    return NetworkStats(
        n_nodes=n,
        n_edges=network.n_edges,
        n_skills=len(network.skill_universe()),
        mean_skills_per_person=float(skill_counts.mean()) if n else 0.0,
        median_skills_per_person=float(np.median(skill_counts)) if n else 0.0,
        mean_degree=float(degrees.mean()) if n else 0.0,
        max_degree=int(degrees.max()) if n else 0,
        n_isolated=int((degrees == 0).sum()),
        n_components=len(components),
        largest_component=max(components) if components else 0,
    )


def degree_histogram(network: CollaborationNetwork) -> Dict[int, int]:
    """Map degree -> number of nodes with that degree."""
    hist: Dict[int, int] = {}
    for p in network.people():
        d = network.degree(p)
        hist[d] = hist.get(d, 0) + 1
    return hist


def skill_frequency(network: CollaborationNetwork) -> Dict[str, int]:
    """Map skill -> number of people holding it."""
    freq: Dict[str, int] = {}
    for p in network.people():
        for s in network.skills(p):
            freq[s] = freq.get(s, 0) + 1
    return freq
