"""Collaboration-network substrate.

This package provides the node-labeled collaboration network that every
other subsystem (expert search, team formation, link prediction, and the
ExES explainers) operates on, plus synthetic generators that reproduce the
shape of the DBLP and GitHub datasets used in the paper.
"""

from repro.graph.network import BaseDelta, CollaborationNetwork
from repro.graph.overlay import NetworkOverlay
from repro.graph.perturbations import (
    AddEdge,
    AddQueryTerm,
    AddSkill,
    Perturbation,
    RemoveEdge,
    RemoveQueryTerm,
    RemoveSkill,
    apply_perturbations,
)
from repro.graph.generators import NetworkRecipe, synthesize_network
from repro.graph.io import (
    load_network_json,
    network_from_dict,
    network_to_dict,
    save_network_json,
)
from repro.graph.stats import NetworkStats, compute_stats

__all__ = [
    "AddEdge",
    "AddQueryTerm",
    "AddSkill",
    "BaseDelta",
    "CollaborationNetwork",
    "NetworkOverlay",
    "NetworkRecipe",
    "NetworkStats",
    "Perturbation",
    "RemoveEdge",
    "RemoveQueryTerm",
    "RemoveSkill",
    "apply_perturbations",
    "compute_stats",
    "load_network_json",
    "network_from_dict",
    "network_to_dict",
    "save_network_json",
    "synthesize_network",
]
