"""Serialization for collaboration networks (JSON and dict round-trips).

Networks serialize to a stable, human-inspectable JSON document so that
generated datasets, case-study fixtures, and experiment inputs can be
checked in or shipped between machines.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.graph.network import CollaborationNetwork

_FORMAT_VERSION = 1


def network_to_dict(network: CollaborationNetwork) -> Dict[str, Any]:
    """Convert a network to a JSON-safe dict (skills sorted for stability)."""
    return {
        "format_version": _FORMAT_VERSION,
        "people": [
            {
                "id": pid,
                "name": network.name(pid),
                "skills": sorted(network.skills(pid)),
            }
            for pid in network.people()
        ],
        "edges": sorted(network.edges()),
    }


def network_from_dict(payload: Dict[str, Any]) -> CollaborationNetwork:
    """Rebuild a network from :func:`network_to_dict` output.

    People must be listed with contiguous ids starting at 0 (the generator
    and serializer guarantee this; hand-written files are validated).
    """
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported network format version: {version!r}")
    people = payload["people"]
    net = CollaborationNetwork()
    for expected_id, person in enumerate(people):
        if person["id"] != expected_id:
            raise ValueError(
                f"person ids must be contiguous from 0; saw {person['id']} at "
                f"position {expected_id}"
            )
        net.add_person(person["name"], person.get("skills", ()))
    for u, v in payload.get("edges", ()):
        net.add_edge(int(u), int(v))
    net.validate()
    return net


def save_network_json(network: CollaborationNetwork, path: Union[str, Path]) -> None:
    """Write the network to ``path`` as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as f:
        json.dump(network_to_dict(network), f, indent=1, sort_keys=True)


def load_network_json(path: Union[str, Path]) -> CollaborationNetwork:
    """Read a network previously written by :func:`save_network_json`."""
    with Path(path).open("r", encoding="utf-8") as f:
        return network_from_dict(json.load(f))
