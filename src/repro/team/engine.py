"""The team-formation delta layer: membership probes without re-formation.

ExES's team-formation targets (``M_pi(q, G) = [p_i in F(q, G)]``, paper
§3.5) are the most expensive decisions to probe: the seed implementation
re-ran greedy formation from scratch — on a fully materialized network,
behind a full ranker rebuild — for every single perturbed probe.  PR 1–2
made the *scoring* half incremental for all four rankers; this module makes
the *formation* half incremental too.

:class:`TeamDeltaSession` is the per-(former, frozen base network)
protocol, the team-side sibling of
:class:`~repro.search.engine.DeltaSession`.  Formers open sessions through
:meth:`~repro.team.base.TeamFormationSystem.delta_session`; dispatch
happens inside ``form`` so overlays are delta-formed wherever they appear —
``MembershipTarget`` probes, SHAP value functions, beam search, and
anything routed through ``ExES.probe_engine(team=True)``.

:class:`CoverTeamDeltaSession` serves :class:`~repro.team.greedy
.CoverTeamFormer` probes in two tiers:

* **cached-team fast path** — the base run is traced once per (query,
  seed) with its *witness set*: the seed, every frontier examined, and all
  members — exactly the people whose skills, edges, or scores the greedy
  consulted.  A probe whose flips provably miss that support (no
  query-term skill flip on a witness, no edge flip incident to a member,
  witness scores bit-identical, and the auto-selected seed re-deriving
  unchanged) is answered with the cached base team in O(Δ + |witness|),
  with zero formation work;
* **delta re-formation** — any other probe re-runs the same greedy core
  (:meth:`CoverTeamFormer._form_impl`) directly on the overlay with
  delta-session ranker scores: still no ``materialize()``, just the O(team)
  greedy loop.

How often tier 1 fires depends on the ranker.  The witness-score check is
*bit-exact* (anything looser could fast-path past a tie the re-formed run
would break differently), so rankers whose scores only move with
query-term coverage (coverage, TF-IDF) fast-path every structurally-far
flip, while the GCN — whose scores shift for everyone within two hops of
any flip — almost always re-forms (the benchmark's team row records the
split as ``cached_run_fast_hits`` / ``overlay_reforms``).  The headline
team speedup therefore comes from tier 2: delta scoring plus
materialization-free re-formation.

Contract: the session's team equals from-scratch formation on the
materialized overlay *member for member* (not merely score-parity) — the
fuzz suite (``tests/search/test_parity_fuzz.py``) pins it across randomized
perturbation chains, and ``tests/team/test_team_engine.py`` pins the
deterministic tie-break order that makes the equality exact.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import FrozenSet, Optional

import numpy as np

from repro.graph.network import CollaborationNetwork
from repro.graph.overlay import NetworkOverlay
from repro.graph.perturbations import Query
from repro.runtime import check_budget, fault_point
from repro.search.engine import _MAX_QUERY_CACHE, _LruCache
from repro.team.base import Team


class TeamDeltaSession(abc.ABC):
    """Per-(former, frozen base network) delta-formation cache.

    Opened once per base-network version through the former's
    :meth:`~repro.team.base.TeamFormationSystem.delta_session` factory,
    then serves every overlay over that base.  ``form(query, overlay)``
    must return the same team as the former's plain path on the
    materialized overlay — the exact-team parity contract.
    """

    #: Cache attributes :meth:`warm_state` snapshots for spill/restore.
    _SPILL_CACHES = ()

    def __init__(self, former, base: CollaborationNetwork) -> None:
        self.former = former
        self.base = base
        self.base_version = base.version

    def valid_for(self, base: CollaborationNetwork) -> bool:
        """Is this session still usable for ``base``?  False once the base
        mutates (version drift)."""
        return base is self.base and base.version == self.base_version

    def rebase(self, delta) -> bool:
        """Carry this session across a committed base edit, re-tracing
        only invalidated runs.  Returns False to decline (→ the caller
        drops the session); the default declines."""
        return False

    def warm_state(self):
        """``{attr: [(key, value), ...]}`` snapshot of the caches named in
        ``_SPILL_CACHES`` — the registry spill payload."""
        return {
            name: getattr(self, name).items() for name in self._SPILL_CACHES
        }

    def load_warm_state(self, state) -> None:
        for name in self._SPILL_CACHES:
            cache = getattr(self, name)
            for key, value in state.get(name, []):
                cache.put(key, value)

    @abc.abstractmethod
    def form(
        self,
        query: Query,
        overlay: NetworkOverlay,
        seed_member: Optional[int] = None,
        scores: Optional[np.ndarray] = None,
    ) -> Team:
        """The team for the overlaid network — never through
        ``overlay.materialize()``."""


@dataclass(frozen=True)
class _BaseRun:
    """One traced base-network formation run."""

    team: Team
    witness: FrozenSet[int]  # everyone whose skills/scores the run consulted
    witness_idx: np.ndarray  # the same ids as a sorted index array
    base_scores: np.ndarray  # the ranker scores the run was fed


class CoverTeamDeltaSession(TeamDeltaSession):
    """O(Δ) membership probes for :class:`~repro.team.greedy.CoverTeamFormer`.

    ``fast_hits`` / ``reforms`` count how many probes were answered from
    the cached base team vs. re-formed on the overlay (observability for
    tests and the benchmark).
    """

    def __init__(self, former, base: CollaborationNetwork) -> None:
        super().__init__(former, base)
        # (query, seed_member) -> _BaseRun
        self._run_cache = _LruCache(_MAX_QUERY_CACHE)
        self.fast_hits = 0
        self.reforms = 0

    _SPILL_CACHES = ("_run_cache",)

    # ------------------------------------------------------------------
    # base-commit rebasing
    # ------------------------------------------------------------------
    def rebase(self, delta) -> bool:
        """Keep every traced run whose witness set provably misses the
        committed edit; invalidated runs are simply dropped and re-traced
        on their next probe.

        A run survives when (a) the ranker's delta session certifies the
        committed flips cannot move any score for the run's query
        (:meth:`~repro.search.engine.DeltaSession.memo_survives` — which
        also pins the auto-seed choice, since it reads only scores), (b)
        no committed query-term skill flip lands on a witness, and (c) no
        committed edge flip is incident to a member — exactly the reads
        :meth:`_run_unaffected` enumerates, applied to the commit instead
        of a probe overlay."""
        if (
            self.base.version != delta.new_version
            or self.base_version != delta.old_version
        ):
            return False
        if delta.is_empty:
            self.base_version = delta.new_version
            return True
        try:
            rsession = self.former.ranker._session_for(self.base)
        except AttributeError:
            rsession = None
        for key in self._run_cache.keys():
            query, _seed = key
            run = self._run_cache.get(key)
            if run is None:
                continue
            if (
                rsession is None
                or rsession.base_version != delta.new_version
                or not rsession.memo_survives(delta, query)
            ):
                self._run_cache.pop(key)
                continue
            survives = True
            for p, s, _added in delta.skill_flips:
                if s in query and p in run.witness:
                    survives = False
                    break
            if survives:
                members = run.team.members
                for u, v, _added in delta.edge_flips:
                    if u in members or v in members:
                        survives = False
                        break
            if not survives:
                self._run_cache.pop(key)
        self.base_version = delta.new_version
        return True

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------
    def form(
        self,
        query: Query,
        overlay: NetworkOverlay,
        seed_member: Optional[int] = None,
        scores: Optional[np.ndarray] = None,
    ) -> Team:
        check_budget()
        fault_point(
            "team.form",
            key=(tuple(sorted(query)), seed_member),
            engine=self,
        )
        if scores is None:
            # Delta-scored through the ranker's own session (overlay input).
            scores = self.former.ranker.scores(query, overlay)
        scores = np.asarray(scores, dtype=np.float64)
        run = self._base_run(query, seed_member)
        if self._run_unaffected(run, query, overlay, scores, seed_member):
            self.fast_hits += 1
            return run.team
        self.reforms += 1
        return self.former._form_impl(
            query, overlay, seed_member=seed_member, scores=scores
        )

    def warm(self, query: Query, seed_member: Optional[int] = None) -> Team:
        """Trace (or revisit) the base run for ``(query, seed_member)`` and
        return its team.  The explanation service warms membership shards
        through this before probing, and — because the session itself lives
        in the ``EngineRegistry`` — the traced run stays warm for every
        facade and request that shares the former, not just the engine that
        first probed it."""
        return self._base_run(query, seed_member).team

    def _base_run(self, query: Query, seed_member: Optional[int]) -> _BaseRun:
        key = (query, seed_member)
        run = self._run_cache.get(key)
        if run is None:
            base_scores = np.asarray(
                self.former.ranker.scores(query, self.base), dtype=np.float64
            )
            witness: set = set()
            team = self.former._form_impl(
                query,
                self.base,
                seed_member=seed_member,
                scores=base_scores,
                witness=witness,
            )
            run = _BaseRun(
                team=team,
                witness=frozenset(witness),
                witness_idx=np.fromiter(sorted(witness), dtype=np.int64),
                base_scores=base_scores,
            )
            self._run_cache.put(key, run)
        return run

    def _run_unaffected(
        self,
        run: _BaseRun,
        query: Query,
        overlay: NetworkOverlay,
        scores: np.ndarray,
        seed_member: Optional[int],
    ) -> bool:
        """Can no flip in ``overlay`` change any comparison the base run
        made?  Every check is conservative: a False answer merely re-forms.

        The greedy reads exactly (a) ``skills(p) ∩ query`` for the seed,
        every frontier person, and the final members, (b) ``neighbors(m)``
        for members, and (c) ``scores[p]`` for the seed choice and every
        frontier person.  So the cached team is reusable iff:
        """
        # (a) no query-term skill flip on a witness (non-query skills are
        #     never read by the greedy; their score effect is check (c)).
        for (p, s), _added in overlay.skill_flips().items():
            if s in query and p in run.witness:
                return False
        # (b) no edge flip incident to a member (only members' neighbor
        #     sets are read, when frontiers are built).
        members = run.team.members
        for (u, v), _added in overlay.edge_flips().items():
            if u in members or v in members:
                return False
        # (c) every consulted score bit-identical — exact equality, so the
        #     fast path can never flip a tie the re-formed run would break
        #     differently.
        if run.witness_idx.size and not np.array_equal(
            scores[run.witness_idx], run.base_scores[run.witness_idx]
        ):
            return False
        # (d) an auto-selected seed must re-derive to the same person under
        #     the probe's scores (seed choice reads *all* scores).
        if seed_member is None and self.former._seed_choice(scores) != run.team.seed:
            return False
        return True
