"""Graph-optimization team formation baseline (Lappas et al. [32] style).

Rarest-first greedy cover: for each query term (processed from the rarest
skill to the most common) pick the holder closest to the team built so far;
then connect the chosen experts through shortest paths so the team is a
connected subgraph (the path nodes are the "communication cost" the
original paper minimizes with its Steiner/MST approximations).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.graph.network import CollaborationNetwork
from repro.graph.perturbations import as_query
from repro.team.base import Team, TeamFormationSystem, coverage_split


class MstTeamFormer(TeamFormationSystem):
    """Rarest-first cover + shortest-path connection."""

    def __init__(self, max_size: int = 12) -> None:
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.max_size = max_size

    def form(
        self,
        query: Iterable[str],
        network: CollaborationNetwork,
        seed_member: Optional[int] = None,
        scores=None,  # ranker-free former: precomputed scores are irrelevant
    ) -> Team:
        query = as_query(query)
        members: Set[int] = set()
        build_order: List[int] = []
        if seed_member is not None:
            members.add(seed_member)
            build_order.append(seed_member)

        holders: Dict[str, List[int]] = {
            term: sorted(network.people_with_skill(term)) for term in query
        }
        # Rarest skill first — the hardest constraint anchors the team.
        terms = sorted(
            (t for t in query if holders[t]), key=lambda t: (len(holders[t]), t)
        )
        for term in terms:
            if len(members) >= self.max_size:
                break
            if any(term in network.skills(m) for m in members):
                continue
            chosen = self._closest_holder(holders[term], members, network)
            members.add(chosen)
            build_order.append(chosen)

        connected = self._connect(members, network)
        covered, uncovered = coverage_split(query, connected, network)
        seed = seed_member if seed_member is not None else (min(connected) if connected else None)
        return Team(
            members=frozenset(connected),
            seed=seed,
            covered_terms=covered,
            uncovered_terms=uncovered,
            build_order=tuple(sorted(connected)),
        )

    @staticmethod
    def _closest_holder(
        candidates: List[int], members: Set[int], network: CollaborationNetwork
    ) -> int:
        """The skill holder nearest (BFS) to the current team; id tie-break."""
        if not members:
            return candidates[0]
        best = candidates[0]
        best_dist = float("inf")
        for c in candidates:
            dist = min(
                (
                    d
                    for m in members
                    if (d := network.shortest_path_length(c, m)) is not None
                ),
                default=float("inf"),
            )
            if dist < best_dist:
                best = c
                best_dist = dist
        return best

    def _connect(
        self, members: Set[int], network: CollaborationNetwork
    ) -> Set[int]:
        """Add shortest-path nodes so the member set forms one component."""
        if len(members) <= 1:
            return set(members)
        ordered = sorted(members)
        connected: Set[int] = {ordered[0]}
        for target in ordered[1:]:
            if target in connected:
                continue
            path = self._bfs_path(connected, target, network)
            if path is None:
                connected.add(target)  # unreachable — keep as an island
            else:
                connected.update(path)
            if len(connected) >= self.max_size * 2:
                break
        return connected

    @staticmethod
    def _bfs_path(
        sources: Set[int], target: int, network: CollaborationNetwork
    ) -> Optional[List[int]]:
        """Shortest path from any source to ``target`` (inclusive), or None."""
        parents: Dict[int, Optional[int]] = {s: None for s in sources}
        frontier = sorted(sources)
        while frontier:
            nxt: List[int] = []
            for u in frontier:
                for v in sorted(network.neighbors(u)):
                    if v in parents:
                        continue
                    parents[v] = u
                    if v == target:
                        path = [v]
                        while parents[path[-1]] is not None:
                            path.append(parents[path[-1]])
                        return path
                    nxt.append(v)
            frontier = nxt
        return None
