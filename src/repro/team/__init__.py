"""Team formation systems F(q, G).

The paper's team-formation experiments (§4.3) use the method of Hao et
al. [23]: the user supplies a main member and the system grows a team
around them until every query term is covered.  :class:`CoverTeamFormer`
implements that contract; :class:`MstTeamFormer` is the classic
Lappas-et-al.-style graph-optimization baseline [32] (rarest-first cover
connected through shortest paths).
"""

from repro.team.base import Team, TeamFormationSystem
from repro.team.engine import CoverTeamDeltaSession, TeamDeltaSession
from repro.team.greedy import CoverTeamFormer
from repro.team.mst import MstTeamFormer

__all__ = [
    "CoverTeamDeltaSession",
    "CoverTeamFormer",
    "MstTeamFormer",
    "Team",
    "TeamDeltaSession",
    "TeamFormationSystem",
]
