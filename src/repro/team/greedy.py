"""Build-around-the-main-member team formation (Hao et al. [23] style).

The method the paper explains in §4.3: "requires the user to input an
expert as the main team member, and constructs a team around the main
member until all the query terms are covered."

Growth is greedy over the frontier of the current team (collaborators of
current members, so the team stays connected):  each step admits the
frontier candidate covering the most still-uncovered query terms, breaking
ties by the associated ranker's score for the query, then by id.  If no
frontier candidate covers anything new, the frontier is widened by the best
connector (highest ranker score adjacent to the team) — this models teams
that must recruit a broker to reach the missing skill — up to ``max_size``.

Every choice the greedy makes is pinned deterministic — seed selection by
(score desc, id asc), cover selection by (cover count desc, score desc,
id asc), connector selection by (score desc, id asc) — so two runs fed the
same scores produce the same team member-for-member.  That determinism is
what lets :class:`~repro.team.engine.CoverTeamDeltaSession` answer
membership probes from the cached base run whenever a perturbation provably
cannot change any of those comparisons.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.graph.network import CollaborationNetwork
from repro.graph.perturbations import as_query
from repro.search.base import ExpertSearchSystem
from repro.team.base import Team, TeamFormationSystem, coverage_split


class CoverTeamFormer(TeamFormationSystem):
    """Greedy connected set-cover around a seed expert."""

    def __init__(
        self,
        ranker: ExpertSearchSystem,
        max_size: int = 8,
        max_connectors: int = 2,
    ) -> None:
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.ranker = ranker
        self.max_size = max_size
        self.max_connectors = max_connectors

    def delta_session(self, base: CollaborationNetwork):
        """The team delta-formation session (see ``repro.team.engine``)."""
        from repro.team.engine import CoverTeamDeltaSession

        return CoverTeamDeltaSession(self, base)

    def form(
        self,
        query: Iterable[str],
        network: CollaborationNetwork,
        seed_member: Optional[int] = None,
        scores: Optional[np.ndarray] = None,
    ) -> Team:
        query = as_query(query)
        if network.n_people == 0:
            return Team(frozenset(), None, frozenset(), frozenset(query))
        delta = self._try_delta_form(
            query, network, seed_member=seed_member, scores=scores
        )
        if delta is not None:
            return delta
        return self._form_impl(query, network, seed_member=seed_member, scores=scores)

    def _form_impl(
        self,
        query,
        network: CollaborationNetwork,
        seed_member: Optional[int] = None,
        scores: Optional[np.ndarray] = None,
        witness: Optional[Set[int]] = None,
    ) -> Team:
        """The greedy run itself — shared verbatim by the plain path and
        the delta session's base/re-formation runs, so the two can never
        drift apart.

        ``witness``, when given, collects every person whose skills or
        score the run consulted (the seed, every frontier examined, and
        thus every member): the exact support set a perturbation must miss
        for the cached base team to stay valid.
        """
        if scores is None:
            scores = self.ranker.scores(query, network)
        scores = np.asarray(scores, dtype=np.float64)
        if seed_member is None:
            seed_member = self._seed_choice(scores)

        members: Set[int] = {seed_member}
        build_order: List[int] = [seed_member]
        uncovered: Set[str] = set(query - network.skills(seed_member))
        connectors_used = 0
        if witness is not None:
            witness.add(seed_member)

        while uncovered and len(members) < self.max_size:
            frontier = self._frontier(network, members)
            if witness is not None:
                witness |= frontier
            if not frontier:
                break
            best = self._best_cover(frontier, uncovered, scores, network)
            if best is not None:
                person, newly_covered = best
                members.add(person)
                build_order.append(person)
                uncovered -= newly_covered
                continue
            # Nobody adjacent covers anything: recruit the best connector to
            # open a new part of the graph (bounded, to avoid flooding).
            if connectors_used >= self.max_connectors:
                break
            connector = max(frontier, key=lambda p: (scores[p], -p))
            members.add(connector)
            build_order.append(connector)
            connectors_used += 1

        covered, uncovered_final = coverage_split(query, members, network)
        return Team(
            members=frozenset(members),
            seed=seed_member,
            covered_terms=covered,
            uncovered_terms=uncovered_final,
            build_order=tuple(build_order),
        )

    @staticmethod
    def _seed_choice(scores: np.ndarray) -> int:
        """The auto-selected main member: score descending, id ascending —
        one rule shared by the greedy run and the delta session's seed
        re-derivation check, so the two can never drift."""
        return int(np.lexsort((np.arange(len(scores)), -scores))[0])

    @staticmethod
    def _frontier(network: CollaborationNetwork, members: Set[int]) -> Set[int]:
        frontier: Set[int] = set()
        for m in members:
            frontier |= network.neighbors(m)
        return frontier - members

    @staticmethod
    def _best_cover(
        frontier: Set[int],
        uncovered: Set[str],
        scores: np.ndarray,
        network: CollaborationNetwork,
    ) -> Optional[Tuple[int, Set[str]]]:
        """The frontier node covering the most uncovered terms, or None.

        The key (cover count, score, -id) is unique per person, so the
        winner is independent of frontier iteration order.
        """
        best_person: Optional[int] = None
        best_cover: Set[str] = set()
        best_key: Tuple[int, float, int] = (0, -np.inf, 0)
        for person in frontier:
            cover = network.skills(person) & uncovered
            if not cover:
                continue
            key = (len(cover), float(scores[person]), -person)
            if key > best_key:
                best_key = key
                best_person = person
                best_cover = set(cover)
        if best_person is None:
            return None
        return best_person, best_cover
