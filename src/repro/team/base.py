"""The team-formation interface ExES probes.

``F(q, G)`` returns a team; the binary label ExES explains is membership
``M_pi(q, G) = [p_i ∈ F(q, G)]`` (paper §3.5).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Set, Tuple

from repro.graph.network import CollaborationNetwork
from repro.graph.perturbations import Query, as_query


@dataclass(frozen=True)
class Team:
    """A formed team: members, the seed it grew from, and coverage info."""

    members: FrozenSet[int]
    seed: Optional[int]
    covered_terms: FrozenSet[str]
    uncovered_terms: FrozenSet[str]
    build_order: Tuple[int, ...] = field(default=())

    def __contains__(self, person: int) -> bool:
        return person in self.members

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def covers_query(self) -> bool:
        return not self.uncovered_terms


class TeamFormationSystem(abc.ABC):
    """Base class for team formers."""

    @abc.abstractmethod
    def form(
        self,
        query: Iterable[str],
        network: CollaborationNetwork,
        seed_member: Optional[int] = None,
        scores=None,
    ) -> Team:
        """Form a team for ``query``; ``seed_member`` pins the main member.

        ``scores`` optionally carries a precomputed per-person relevance
        array from the former's associated ranker, so callers that already
        ranked the query (e.g. ``MembershipTarget.decide_with_order``) don't
        pay a second scoring pass.  Formers without a ranker ignore it.
        """

    @property
    def name(self) -> str:
        return type(self).__name__

    def membership(
        self,
        person: int,
        query: Iterable[str],
        network: CollaborationNetwork,
        seed_member: Optional[int] = None,
    ) -> bool:
        """M_pi(q, G): is ``person`` on the formed team?"""
        return person in self.form(query, network, seed_member=seed_member)


def coverage_split(query: Query, members: Set[int], network: CollaborationNetwork):
    """(covered, uncovered) query terms for a member set."""
    query = as_query(query)
    covered: Set[str] = set()
    for m in members:
        covered |= network.skills(m) & query
    return frozenset(covered), frozenset(query - covered)
