"""The team-formation interface ExES probes.

``F(q, G)`` returns a team; the binary label ExES explains is membership
``M_pi(q, G) = [p_i ∈ F(q, G)]`` (paper §3.5).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Set, Tuple

from repro.graph.network import CollaborationNetwork
from repro.graph.overlay import NetworkOverlay
from repro.graph.perturbations import Query, as_query
from repro.runtime import delta_bypassed


@dataclass(frozen=True)
class Team:
    """A formed team: members, the seed it grew from, and coverage info."""

    members: FrozenSet[int]
    seed: Optional[int]
    covered_terms: FrozenSet[str]
    uncovered_terms: FrozenSet[str]
    build_order: Tuple[int, ...] = field(default=())

    def __contains__(self, person: int) -> bool:
        return person in self.members

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def covers_query(self) -> bool:
        return not self.uncovered_terms


class TeamFormationSystem(abc.ABC):
    """Base class for team formers.

    Formers with a delta path additionally override :meth:`delta_session`;
    :meth:`_try_delta_form` then routes :class:`NetworkOverlay` inputs
    through the cached :class:`~repro.team.engine.TeamDeltaSession` —
    mirroring how :class:`~repro.search.base.ExpertSearchSystem` dispatches
    overlay scoring through its ``DeltaSession`` — so membership probes
    never pay ``materialize()`` on the hot path.  ``full_rebuild = True``
    is the escape hatch: overlays then take the plain formation path (the
    parity reference and the engine-off benchmark mode).
    """

    # Escape hatch: True skips the delta session even for overlay inputs.
    full_rebuild: bool = False

    # Optional registry hook (see ``repro.service.registry``): when an
    # EngineRegistry is installed here, it owns the former's delta
    # sessions, so one ``TeamDeltaSession`` — with its traced base runs —
    # is shared across probe engines and facade instances.
    _session_store = None

    def delta_session(self, base: CollaborationNetwork):
        """Factory for this former's delta-formation session over a frozen
        ``base`` network; None when the former has no delta path."""
        return None

    def _session_for(self, base: CollaborationNetwork):
        """The cached delta session for ``base``, rebuilt on version drift.

        With a registry installed, the lookup is delegated there: traced
        base formation runs live in the registry-owned session and are
        warm for every facade that shares the former."""
        store = self._session_store
        if store is not None:
            return store.team_session(self, base)
        session = getattr(self, "_session", None)
        if session is None or not session.valid_for(base):
            session = self.delta_session(base)
            self._session = session
        return session

    def _try_delta_form(
        self,
        query: Query,
        network: CollaborationNetwork,
        seed_member: Optional[int] = None,
        scores=None,
    ) -> Optional["Team"]:
        """Delta-formed overlay result, or None when the plain path must
        run (non-overlay input, ``full_rebuild`` set, the current thread's
        :func:`~repro.runtime.delta_bypass` scope, or no delta path)."""
        if (
            self.full_rebuild
            or delta_bypassed()
            or not isinstance(network, NetworkOverlay)
        ):
            return None
        session = self._session_for(network.base)
        if session is None:
            return None
        return session.form(query, network, seed_member=seed_member, scores=scores)

    @abc.abstractmethod
    def form(
        self,
        query: Iterable[str],
        network: CollaborationNetwork,
        seed_member: Optional[int] = None,
        scores=None,
    ) -> Team:
        """Form a team for ``query``; ``seed_member`` pins the main member.

        ``scores`` optionally carries a precomputed per-person relevance
        array from the former's associated ranker, so callers that already
        ranked the query (e.g. ``MembershipTarget.decide_with_order``) don't
        pay a second scoring pass.  Formers without a ranker ignore it.
        """

    @property
    def name(self) -> str:
        return type(self).__name__

    def membership(
        self,
        person: int,
        query: Iterable[str],
        network: CollaborationNetwork,
        seed_member: Optional[int] = None,
    ) -> bool:
        """M_pi(q, G): is ``person`` on the formed team?"""
        return person in self.form(query, network, seed_member=seed_member)


def coverage_split(query: Query, members: Set[int], network: CollaborationNetwork):
    """(covered, uncovered) query terms for a member set."""
    query = as_query(query)
    covered: Set[str] = set()
    for m in members:
        covered |= network.skills(m) & query
    return frozenset(covered), frozenset(query - covered)
