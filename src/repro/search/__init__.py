"""Expert search systems R(q, G).

ExES is model-agnostic: it only probes a ranker with perturbed inputs.  To
demonstrate that (and to reproduce Section 4.2, which evaluates a GCN-based
ranker "combining ideas from several state-of-the-art solutions"), this
package ships four interchangeable systems behind one interface:

* :class:`GcnExpertRanker` — a trained graph-convolutional ranker over skill
  embeddings (the paper's system under explanation);
* :class:`PageRankExpertRanker` — personalized PageRank from query-matching
  nodes [8];
* :class:`DocumentExpertRanker` — profile-centric TF-IDF retrieval [3];
* :class:`HitsExpertRanker` — HITS authority scores on the query-induced
  subgraph [31].

All four carry a :class:`DeltaSession` (``repro.search.engine``), so
explanation search probes perturbed overlays in O(Δ) without rebuilding
the network's derived artifacts; :class:`ProbeEngine` adds cross-explainer
probe memoization on top.
"""

from repro.search.base import ExpertSearchSystem, RankedResults, RelevanceJudge
from repro.search.coverage import CoverageExpertRanker
from repro.search.engine import (
    DeltaSession,
    GcnDeltaSession,
    HitsDeltaSession,
    PageRankDeltaSession,
    ProbeEngine,
    ProbeSession,
    SharedProbeContext,
    TfidfDeltaSession,
)
from repro.search.gcn import GcnExpertRanker, GcnRankerConfig
from repro.search.pagerank import PageRankExpertRanker
from repro.search.docrank import DocumentExpertRanker
from repro.search.hits import HitsExpertRanker

__all__ = [
    "CoverageExpertRanker",
    "DeltaSession",
    "DocumentExpertRanker",
    "ExpertSearchSystem",
    "GcnDeltaSession",
    "GcnExpertRanker",
    "GcnRankerConfig",
    "HitsDeltaSession",
    "HitsExpertRanker",
    "PageRankDeltaSession",
    "PageRankExpertRanker",
    "ProbeEngine",
    "ProbeSession",
    "RankedResults",
    "RelevanceJudge",
    "SharedProbeContext",
    "TfidfDeltaSession",
]
