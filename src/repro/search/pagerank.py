"""Personalized-PageRank expert search baseline [8].

The restart distribution concentrates on individuals whose own skills match
the query; the random walk then spreads relevance along collaboration
edges, so well-connected collaborators of matching experts also rank.

Overlay probes are delta-scored through
:class:`~repro.search.engine.PageRankDeltaSession` (cached transition
operator, O(Δ) restart/degree patches, warm-started power iteration);
``full_rebuild = True`` forces the from-scratch path below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.backend import get_backend
from repro.graph.network import CollaborationNetwork
from repro.graph.perturbations import as_query
from repro.search.base import ExpertSearchSystem, query_match_vector
from repro.search.engine import PageRankDeltaSession


@dataclass
class PageRankExpertRanker(ExpertSearchSystem):
    """Power-iteration personalized PageRank (no training required).

    The damping factor defaults to 0.5 rather than the web-graph 0.85:
    expert search wants relevance anchored near the restart (query-matching)
    nodes — with 0.85 a well-connected broker can outrank the person who
    actually holds the skills.
    """

    damping: float = 0.5
    max_iterations: int = 50
    tolerance: float = 1e-10

    def __post_init__(self) -> None:
        if not (0.0 < self.damping < 1.0):
            raise ValueError(f"damping must be in (0, 1), got {self.damping}")

    def delta_session(self, base: CollaborationNetwork) -> PageRankDeltaSession:
        return PageRankDeltaSession(self, base)

    def scores(self, query: Iterable[str], network: CollaborationNetwork) -> np.ndarray:
        query = as_query(query)
        delta = self._try_delta_scores(query, network)
        if delta is not None:
            return delta
        n = network.n_people
        if n == 0:
            return np.zeros(0)
        restart = query_match_vector(query, network)
        total = restart.sum()
        if total == 0:
            return np.zeros(n)  # no one matches any query term
        restart = restart / total

        adj = network.adjacency_csr()
        out_degree = np.asarray(adj.sum(axis=1)).ravel()
        return self._power_iteration(restart, adj, out_degree)[0]

    def _power_iteration(
        self,
        restart: np.ndarray,
        adj,
        out_degree: np.ndarray,
        warm_start: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, bool]:
        """(solution, converged) of the personalized walk.  A delta session
        warm-starts from the base solution; the plain path starts from the
        restart distribution.  The kernel itself lives on the active
        :class:`~repro.backend.base.NumericBackend`."""
        return get_backend().power_iteration(
            restart,
            adj,
            out_degree,
            damping=self.damping,
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
            warm_start=warm_start,
        )

    def _power_iteration_multi(
        self,
        restarts: np.ndarray,
        adj,
        out_degree: np.ndarray,
        starts: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked power iterations: ``k`` independent personalized walks
        over one shared transition operator, advanced together through
        the backend's ``(n, k)`` stacked kernel (each column performs the
        exact per-iteration arithmetic of :meth:`_power_iteration` and
        freezes where its sequential loop would break).  Returns
        ``(solutions (n, k), converged (k,))``."""
        return get_backend().power_iteration_stacked(
            restarts,
            adj,
            out_degree,
            damping=self.damping,
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
            starts=starts,
        )
