"""Personalized-PageRank expert search baseline [8].

The restart distribution concentrates on individuals whose own skills match
the query; the random walk then spreads relevance along collaboration
edges, so well-connected collaborators of matching experts also rank.

Overlay probes are delta-scored through
:class:`~repro.search.engine.PageRankDeltaSession` (cached transition
operator, O(Δ) restart/degree patches, warm-started power iteration);
``full_rebuild = True`` forces the from-scratch path below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.graph.network import CollaborationNetwork
from repro.graph.perturbations import as_query
from repro.search.base import ExpertSearchSystem, query_match_vector
from repro.search.engine import PageRankDeltaSession


@dataclass
class PageRankExpertRanker(ExpertSearchSystem):
    """Power-iteration personalized PageRank (no training required).

    The damping factor defaults to 0.5 rather than the web-graph 0.85:
    expert search wants relevance anchored near the restart (query-matching)
    nodes — with 0.85 a well-connected broker can outrank the person who
    actually holds the skills.
    """

    damping: float = 0.5
    max_iterations: int = 50
    tolerance: float = 1e-10

    def __post_init__(self) -> None:
        if not (0.0 < self.damping < 1.0):
            raise ValueError(f"damping must be in (0, 1), got {self.damping}")

    def delta_session(self, base: CollaborationNetwork) -> PageRankDeltaSession:
        return PageRankDeltaSession(self, base)

    def scores(self, query: Iterable[str], network: CollaborationNetwork) -> np.ndarray:
        query = as_query(query)
        delta = self._try_delta_scores(query, network)
        if delta is not None:
            return delta
        n = network.n_people
        if n == 0:
            return np.zeros(0)
        restart = query_match_vector(query, network)
        total = restart.sum()
        if total == 0:
            return np.zeros(n)  # no one matches any query term
        restart = restart / total

        adj = network.adjacency_csr()
        out_degree = np.asarray(adj.sum(axis=1)).ravel()
        return self._power_iteration(restart, adj, out_degree)[0]

    def _power_iteration(
        self,
        restart: np.ndarray,
        adj,
        out_degree: np.ndarray,
        warm_start: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, bool]:
        """(solution, converged) of the personalized walk.  A delta session
        warm-starts from the base solution; the plain path starts from the
        restart distribution."""
        # Column-stochastic transition; dangling nodes teleport.
        inv_deg = np.divide(
            1.0, out_degree, out=np.zeros_like(out_degree), where=out_degree > 0
        )
        scores = (restart if warm_start is None else warm_start).copy()
        converged = False
        for _ in range(self.max_iterations):
            spread = adj.T @ (scores * inv_deg)
            dangling = scores[out_degree == 0].sum()
            new = (1 - self.damping) * restart + self.damping * (
                spread + dangling * restart
            )
            if np.abs(new - scores).sum() < self.tolerance:
                scores = new
                converged = True
                break
            scores = new
        return scores, converged

    def _power_iteration_multi(
        self,
        restarts: np.ndarray,
        adj,
        out_degree: np.ndarray,
        starts: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked power iterations: ``k`` independent personalized walks
        over one shared transition operator, advanced together through
        ``(n, k)`` spmm kernels.

        Columns are fully independent, so each one performs the exact
        per-iteration arithmetic of :meth:`_power_iteration`; a column
        that meets the tolerance *freezes* at that iterate — precisely
        where its sequential loop would break — while the rest keep
        iterating.  Returns ``(solutions (n, k), converged (k,))``.
        """
        n, k = restarts.shape
        inv_deg = np.divide(
            1.0, out_degree, out=np.zeros_like(out_degree), where=out_degree > 0
        )
        dangling_mask = out_degree == 0
        scores = (restarts if starts is None else starts).copy()
        solutions = np.empty((n, k))
        converged = np.zeros(k, dtype=bool)
        active = np.arange(k)
        active_restarts = restarts.copy()
        for _ in range(self.max_iterations):
            spread = adj.T @ (scores * inv_deg[:, None])
            dangling = scores[dangling_mask].sum(axis=0)
            new = (1 - self.damping) * active_restarts + self.damping * (
                spread + dangling[None, :] * active_restarts
            )
            done = np.abs(new - scores).sum(axis=0) < self.tolerance
            if done.any():
                solutions[:, active[done]] = new[:, done]
                converged[active[done]] = True
                keep = ~done
                active = active[keep]
                active_restarts = active_restarts[:, keep]
                new = new[:, keep]
                if active.size == 0:
                    return solutions, converged
            scores = new
        solutions[:, active] = scores
        return solutions, converged
