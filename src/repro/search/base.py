"""The expert-search interface ExES probes.

A system assigns every individual a relevance score for a query; ranking is
score-descending with deterministic id tie-breaking.  ExES only ever needs
three operations (paper §3.1):

* ``R_pi(q, G)`` — the rank of one individual (:meth:`ExpertSearchSystem.rank_of`),
* ``C_pi(q, G) = [R_pi(q, G) <= k]`` — the binary relevance status
  (:class:`RelevanceJudge`),
* the top-k list itself, for display and team seeding.

:class:`RankedResults` bundles one query evaluation so callers that need
both the rank and the relevance bit (Algorithm 1, lines 11–12) pay for a
single scoring pass.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.graph.network import CollaborationNetwork
from repro.graph.overlay import NetworkOverlay
from repro.graph.perturbations import Query, as_query
from repro.runtime import delta_bypassed


@dataclass
class RankedResults:
    """The outcome of scoring one query against one network."""

    scores: np.ndarray  # score per person id
    order: np.ndarray  # person ids, best first
    ranks: np.ndarray = field(init=False)  # 1-based rank per person id

    def __post_init__(self) -> None:
        ranks = np.empty(len(self.order), dtype=np.int64)
        ranks[self.order] = np.arange(1, len(self.order) + 1)
        self.ranks = ranks

    @classmethod
    def from_scores(cls, scores: np.ndarray) -> "RankedResults":
        """Rank a precomputed score vector with the canonical deterministic
        ordering (score descending, then id ascending) — the single source
        of truth shared by :meth:`ExpertSearchSystem.evaluate` and the
        batched probe path, so both rank identically."""
        raw = np.asarray(scores, dtype=np.float64)
        order = np.lexsort((np.arange(len(raw)), -raw))
        return cls(scores=raw, order=order)

    def rank_of(self, person: int) -> int:
        """1-based rank of ``person`` (1 = best)."""
        return int(self.ranks[person])

    def top_k(self, k: int) -> List[int]:
        """The top-k person ids, best first."""
        return [int(p) for p in self.order[:k]]

    def is_relevant(self, person: int, k: int) -> bool:
        """C_pi: whether ``person`` ranks inside the top-k."""
        return self.rank_of(person) <= k


class ExpertSearchSystem(abc.ABC):
    """Base class for rankers; subclasses implement :meth:`scores`.

    Systems with a delta-scoring path additionally override
    :meth:`delta_session`; :meth:`_try_delta_scores` then routes
    :class:`~repro.graph.overlay.NetworkOverlay` inputs through the cached
    :class:`~repro.search.engine.DeltaSession` instead of the from-scratch
    path, so explanation search probes overlays in O(Δ).  Setting
    ``full_rebuild = True`` on an instance forces the from-scratch path
    even for overlays — the parity-testing reference and the engine-off
    benchmark mode.
    """

    # Escape hatch: True forces the from-scratch scoring path even for
    # NetworkOverlay inputs (parity reference, engine-off benchmarks).
    full_rebuild: bool = False

    # Optional registry hook: an EngineRegistry installed here (see
    # ``repro.service.registry``) takes over session ownership, so one
    # session per (ranker, base version) is shared across probe engines,
    # explainers, and facade instances — instead of the single ``_session``
    # slot below, which thrashes when two bases alternate.
    _session_store = None

    @abc.abstractmethod
    def scores(self, query: Iterable[str], network: CollaborationNetwork) -> np.ndarray:
        """Relevance score per person id (higher = more relevant)."""

    def delta_session(self, base: CollaborationNetwork):
        """Factory for this system's delta-scoring session over a frozen
        ``base`` network; None when the system has no delta path (overlays
        then score through the plain path, which may materialize)."""
        return None

    def _session_for(self, base: CollaborationNetwork):
        """The cached delta session for ``base``, rebuilt on version drift.

        With a registry installed (``_session_store``), the lookup is
        delegated there: the registry keeps a bounded LRU of sessions per
        (system, base version), so sessions — and every patch/solution
        cache inside them — are reused across engines and facades."""
        store = self._session_store
        if store is not None:
            return store.search_session(self, base)
        session = getattr(self, "_session", None)
        if session is None or not session.valid_for(base):
            session = self.delta_session(base)
            self._session = session
        return session

    def _try_delta_scores(
        self, query: Query, network: CollaborationNetwork
    ) -> Optional[np.ndarray]:
        """Delta-scored overlay result, or None when the plain path must
        run (non-overlay input, ``full_rebuild`` set, the current thread's
        :func:`~repro.runtime.delta_bypass` scope, or no delta path)."""
        if (
            self.full_rebuild
            or delta_bypassed()
            or not isinstance(network, NetworkOverlay)
        ):
            return None
        session = self._session_for(network.base)
        if session is None:
            return None
        return session.scores(query, network)

    @property
    def name(self) -> str:
        return type(self).__name__

    def evaluate(
        self, query: Iterable[str], network: CollaborationNetwork
    ) -> RankedResults:
        """Score the query and materialize the full ranking."""
        query = as_query(query)
        raw = np.asarray(self.scores(query, network), dtype=np.float64)
        if raw.shape != (network.n_people,):
            raise ValueError(
                f"{self.name}.scores returned shape {raw.shape}, expected "
                f"({network.n_people},)"
            )
        return RankedResults.from_scores(raw)

    def rank(self, query: Iterable[str], network: CollaborationNetwork) -> List[int]:
        """Full ranking of person ids, best first."""
        return [int(p) for p in self.evaluate(query, network).order]

    def rank_of(
        self, person: int, query: Iterable[str], network: CollaborationNetwork
    ) -> int:
        """R_pi(q, G): the 1-based rank of one individual."""
        return self.evaluate(query, network).rank_of(person)

    def top_k(
        self, query: Iterable[str], network: CollaborationNetwork, k: int
    ) -> List[int]:
        return self.evaluate(query, network).top_k(k)


@dataclass(frozen=True)
class RelevanceJudge:
    """C_pi(q, G): the binary classification view of a ranker (paper §3.1)."""

    system: ExpertSearchSystem
    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be positive, got {self.k}")

    def __call__(
        self, person: int, query: Iterable[str], network: CollaborationNetwork
    ) -> bool:
        return self.system.evaluate(query, network).is_relevant(person, self.k)

    def with_rank(
        self, person: int, query: Iterable[str], network: CollaborationNetwork
    ) -> tuple:
        """(relevance, rank) from a single scoring pass."""
        results = self.system.evaluate(query, network)
        rank = results.rank_of(person)
        return (rank <= self.k, rank)


def query_match_vector(
    query: Query, network: CollaborationNetwork
) -> np.ndarray:
    """Fraction of query terms each person holds — a shared building block
    for the lexical rankers (and the personalization vector for PageRank).

    Real networks answer through the cached skill-incidence matrix
    (``match_counts`` — O(nnz of the query's columns) instead of a Python
    loop over every holder); overlays keep the per-term loop, which sees
    their flips without materializing.  The ``isinstance`` check matters:
    probing an overlay for a ``match_counts`` attribute would trigger its
    ``__getattr__`` materialize fallback and densify the whole base."""
    if not query:
        return np.zeros(network.n_people)
    if isinstance(network, CollaborationNetwork):
        return network.match_counts(query) / len(query)
    out = np.zeros(network.n_people)
    for term in query:
        for p in network.people_with_skill(term):
            out[p] += 1.0
    return out / len(query)
